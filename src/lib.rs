//! # cgraph — a concurrent graph reachability query framework
//!
//! A from-scratch Rust reproduction of *C-Graph: A Highly Efficient
//! Concurrent Graph Reachability Query Framework* (Zhou, Chen, Xia,
//! Teodorescu — ICPP 2018): an edge-set based, range-partitioned,
//! distributed graph engine that answers **hundreds of concurrent
//! k-hop reachability queries** by sharing traversal work across
//! queries through MS-BFS-style bit lanes.
//!
//! ## Quickstart
//!
//! ```
//! use cgraph::prelude::*;
//!
//! // A small social-style graph (Graph 500 Kronecker, cleaned).
//! let raw = cgraph::gen::graph500(10, 8, 42);
//! let mut b = GraphBuilder::new();
//! b.add_edge_list(&raw);
//! let edges = b.build().edges;
//!
//! // A 2-machine simulated cluster.
//! let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
//!
//! // 100 concurrent 3-hop queries, batched 64 per bit-frontier pass.
//! let queries: Vec<KhopQuery> =
//!     (0..100).map(|i| KhopQuery::single(i, (i as u64 * 7) % 1024, 3)).collect();
//! let results = QueryScheduler::new(&engine, SchedulerConfig::default())
//!     .execute(&queries);
//! assert_eq!(results.len(), 100);
//! assert!(results.iter().all(|r| r.visited >= 1));
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | cgraph-graph | CSR/CSC, edge-set tiles, bitmaps, properties, 2-hop labels |
//! | [`gen`] | cgraph-gen | Graph 500/RMAT, ER, small-world, BA, scaling, I/O |
//! | [`comm`] | cgraph-comm | simulated cluster, barriers, termination, net model |
//! | [`core`] | cgraph-core | partitioning, shards, PCM, bit frontiers, engine, scheduler |
//! | [`index`] | cgraph-index | boundary reachability index: distance sketches, prune masks, landmark labels |
//! | [`obs`] | cgraph-obs | metrics registry, structured tracing, text exposition |
//! | [`baselines`] | cgraph-baselines | Titan-like graph DB, Gemini-like serialized engine |
//! | [`analytics`] | cgraph-analytics | BFS, k-hop, SSSP, PageRank, WCC, triangles, k-core, closeness, hop plot |
//! | [`ql`] | cgraph-ql | query language + concurrent-wave session (see `examples/query_shell.rs`) |
//!
//! (cgraph-cache — the deterministic CLOCK result cache — is consumed
//! through [`core`]'s query plane rather than re-exported here.)

#![warn(missing_docs)]

pub use cgraph_analytics as analytics;
pub use cgraph_baselines as baselines;
pub use cgraph_comm as comm;
pub use cgraph_core as core;
pub use cgraph_gen as gen;
pub use cgraph_graph as graph;
pub use cgraph_index as index;
pub use cgraph_obs as obs;
pub use cgraph_ql as ql;

/// The names most programs need.
pub mod prelude {
    pub use cgraph_analytics::{
        bfs_count, bfs_levels, closeness_of, count_triangles, hop_plot, kcore_decomposition,
        khop_count, khop_counts_batch, pagerank, sssp, sssp_within, top_closeness,
        weakly_connected_components,
    };
    pub use cgraph_core::gas::{Gas, PageRank};
    pub use cgraph_core::traverse::ValueMode;
    pub use cgraph_core::{
        DistributedEngine, DurabilityConfig, DurabilityError, DurabilityStats, EdgeUpdate,
        EngineConfig, FaultPlan, GroupConfig, IndexAnswer, IndexBuilder, IndexConfig, KhopQuery,
        MutationConfig, PrunePlan, QueryPlaneConfig, QueryResult, QueryScheduler, QueryService,
        ReachIndex, RecoveryConfig, RecoveryOutcome, RecoveryReport, ResponseStats, RouterConfig,
        RouterStats, SchedulerConfig, ServiceConfig, ServiceError, ServiceGroup, ServiceStats,
        UpdateBatch, UpdateMode, VertexProgram,
    };
    pub use cgraph_gen::Dataset;
    pub use cgraph_graph::{
        Adjacency, BuildOptions, Csr, Edge, EdgeList, GraphBuilder, ReindexMode, VertexId,
    };
    pub use cgraph_index::{BoundaryIndexBuilder, IndexTier};
}
