//! Every execution path in the repository must agree on what a k-hop
//! query returns: the bit-frontier batch, the queue-based sync
//! traversal, the asynchronous traversal, the Titan baseline and the
//! Gemini baseline are five independent implementations of the same
//! semantics.

use cgraph::prelude::*;
use cgraph_baselines::{GeminiEngine, TitanDb};
use cgraph_core::traverse::ValueMode;

fn test_graph(seed: u64) -> EdgeList {
    let raw = cgraph::gen::graph500(9, 8, seed);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&raw);
    b.build().edges
}

#[test]
fn five_implementations_agree() {
    let edges = test_graph(31);
    let sync_engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    let async_engine = DistributedEngine::new(&edges, EngineConfig::new(3).asynchronous());
    let titan = TitanDb::load(&edges);
    let gemini = GeminiEngine::new(&edges);

    for src in [0u64, 7, 63, 200] {
        for k in [1u32, 2, 3] {
            let batch = sync_engine.run_traversal_batch(&[src], &[k]).unwrap().per_lane_visited[0];
            let queue = sync_engine.run_single_queue(&[src], k, ValueMode::TwoLevel).visited;
            let asynch = async_engine.run_single_queue(&[src], k, ValueMode::TwoLevel).visited;
            let t = titan.khop(src, k, "knows").visited;
            let g = gemini.khop(src, k);
            assert_eq!(batch, queue, "batch vs queue (src {src}, k {k})");
            assert_eq!(batch, asynch, "batch vs async (src {src}, k {k})");
            assert_eq!(batch, t, "batch vs titan (src {src}, k {k})");
            assert_eq!(batch, g, "batch vs gemini (src {src}, k {k})");
        }
    }
}

#[test]
fn value_modes_agree_on_reachability() {
    let edges = test_graph(32);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
    for src in [3u64, 41] {
        let two = engine.run_single_queue(&[src], 3, ValueMode::TwoLevel);
        let full = engine.run_single_queue(&[src], 3, ValueMode::Full);
        assert_eq!(two.visited, full.visited);
        assert_eq!(two.per_level, full.per_level);
        // ... but the dynamic mode retains far fewer values.
        assert!(two.peak_value_entries <= full.peak_value_entries);
    }
}

#[test]
fn batched_lanes_match_their_isolated_runs() {
    let edges = test_graph(33);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    let sources: Vec<u64> = (0..64u64).map(|i| (i * 5) % edges.num_vertices()).collect();
    let ks: Vec<u32> = (0..64u32).map(|i| 1 + i % 4).collect();
    let batch = engine.run_traversal_batch(&sources, &ks).unwrap();
    for lane in (0..64).step_by(7) {
        let solo = engine.run_traversal_batch(&[sources[lane]], &[ks[lane]]).unwrap();
        assert_eq!(
            batch.per_lane_visited[lane], solo.per_lane_visited[0],
            "lane {lane} (src {}, k {})",
            sources[lane], ks[lane]
        );
    }
}

#[test]
fn pagerank_matches_titan_reference_iteration() {
    // Titan's record-store PageRank and the GAS engine compute the
    // same per-edge-share formula; compare one iteration's direction.
    let edges = test_graph(34);
    let n = edges.num_vertices() as usize;
    let titan = TitanDb::load(&edges);
    let titan_r = titan.pagerank_iteration(&vec![1.0; n], 0.85);

    let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
    let gas_r = pagerank(&engine, 1);
    for v in 0..n {
        assert!(
            (titan_r[v] - gas_r[v]).abs() < 1e-9,
            "vertex {v}: titan {} vs gas {}",
            titan_r[v],
            gas_r[v]
        );
    }
}
