//! Results must be invariant to deployment choices: machine count,
//! edge-set tiling policy, partitioning strategy and update mode are
//! performance knobs, never semantics.

use cgraph::prelude::*;
use cgraph_graph::ConsolidationPolicy;

fn test_graph(seed: u64) -> EdgeList {
    let raw = cgraph::gen::graph500(9, 8, seed);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&raw);
    b.build().edges
}

#[test]
fn machine_count_invariance_khop() {
    let edges = test_graph(41);
    let reference: Vec<u64> = {
        let e = DistributedEngine::new(&edges, EngineConfig::new(1));
        (0..40u64).map(|src| khop_count(&e, src * 7 % edges.num_vertices(), 3)).collect()
    };
    for p in [2usize, 3, 5, 9] {
        let e = DistributedEngine::new(&edges, EngineConfig::new(p));
        for (i, &expect) in reference.iter().enumerate() {
            let src = (i as u64) * 7 % edges.num_vertices();
            assert_eq!(khop_count(&e, src, 3), expect, "p={p}, src={src}");
        }
    }
}

#[test]
fn edge_set_policy_invariance() {
    let edges = test_graph(42);
    let policies = [
        ConsolidationPolicy::default(),
        ConsolidationPolicy::flat(),
        ConsolidationPolicy::grid(1 << 10),
        ConsolidationPolicy {
            target_edges_per_set: 1 << 10,
            min_edges_per_set: 1 << 8,
            horizontal: true,
            vertical: false,
        },
    ];
    let mut reference: Option<Vec<u64>> = None;
    for policy in policies {
        let e = DistributedEngine::new(&edges, EngineConfig::new(3).with_edge_set_policy(policy));
        let counts: Vec<u64> =
            (0..20u64).map(|src| khop_count(&e, src * 11 % edges.num_vertices(), 3)).collect();
        match &reference {
            None => reference = Some(counts),
            Some(r) => assert_eq!(&counts, r, "policy {policy:?}"),
        }
    }
}

#[test]
fn pagerank_invariant_to_machines_and_policy() {
    let edges = test_graph(43);
    let r1 = pagerank(&DistributedEngine::new(&edges, EngineConfig::new(1)), 8);
    let r9 = pagerank(
        &DistributedEngine::new(
            &edges,
            EngineConfig::new(9).with_edge_set_policy(ConsolidationPolicy::flat()),
        ),
        8,
    );
    for (a, b) in r1.iter().zip(&r9) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn sssp_invariant_to_update_mode_semantics() {
    // Sync SSSP via PCM; compare against 1-machine run.
    let edges = test_graph(44);
    let d1 = sssp(&DistributedEngine::new(&edges, EngineConfig::new(1)), 5);
    let d4 = sssp(&DistributedEngine::new(&edges, EngineConfig::new(4)), 5);
    assert_eq!(d1, d4);
}

#[test]
fn wcc_invariant_to_machines() {
    let edges = test_graph(45);
    let l1 = weakly_connected_components(&DistributedEngine::new(&edges, EngineConfig::new(1)));
    let l5 = weakly_connected_components(&DistributedEngine::new(&edges, EngineConfig::new(5)));
    assert_eq!(l1, l5);
}

#[test]
fn hop_plot_invariant_to_machines() {
    let edges = test_graph(46);
    let hp2 = hop_plot(&DistributedEngine::new(&edges, EngineConfig::new(2)), 16, 9);
    let hp4 = hop_plot(&DistributedEngine::new(&edges, EngineConfig::new(4)), 16, 9);
    assert_eq!(hp2.pairs_within, hp4.pairs_within);
}
