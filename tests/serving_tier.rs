//! Serving-tier equivalence: a [`ServiceGroup`] of N replicated
//! front-ends over one shared cluster must be answer-for-answer
//! bit-identical to the single [`QueryService`] (and to the
//! closed-batch [`QueryScheduler`] oracle) on the same stream — for
//! every replica count, machine count, and query-plane setting — while
//! the router stays deterministic across identical-seed runs, epoch
//! commits fence every replica at once, an armed crash fails only the
//! lanes of the batch it hit, and a closed replica never takes the
//! rest of the group down with it.

use cgraph::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic Zipf-like stream over `n_vertices`: log-uniform rank
/// selection (heavy head, long tail) so repeats hammer a handful of
/// hot sources — the regime the cache, coalescer and heat-aware
/// router all exist for.
fn zipf_stream(n_queries: usize, n_vertices: u64, seed: u64) -> Vec<KhopQuery> {
    (0..n_queries)
        .map(|i| {
            let r = splitmix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            let u = (r >> 11) as f64 / (1u64 << 53) as f64;
            let rank = ((n_vertices as f64).powf(u).floor() as u64).min(n_vertices - 1);
            // Map rank to a scattered vertex id so hot sources spread
            // over partitions instead of all living on machine 0.
            let source = rank.wrapping_mul(0x9E37) % n_vertices;
            let k = (splitmix64(r) % 5) as u32 + 1;
            KhopQuery::single(i, source, k)
        })
        .collect()
}

/// Ring backbone plus chords: traversals cross machine boundaries at
/// every hop count.
fn chordal_graph(n: u64) -> EdgeList {
    let mut edges: Vec<(u64, u64)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    for v in (0..n).step_by(3) {
        edges.push((v, (v * 7 + 5) % n));
    }
    edges.into_iter().collect()
}

fn trim(mut per_level: Vec<u64>) -> Vec<u64> {
    while per_level.last() == Some(&0) {
        per_level.pop();
    }
    per_level
}

fn plane_on() -> QueryPlaneConfig {
    QueryPlaneConfig { cache_capacity_bytes: Some(1 << 18), coalesce: true, ..Default::default() }
}

fn check_group_equivalence(replicas: usize, p: usize, plane: QueryPlaneConfig) {
    let n = 96u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(p)));
    let queries = zipf_stream(120, n, 0x5E21);

    let expected: HashMap<usize, (u64, Vec<u64>)> =
        QueryScheduler::new(&engine, SchedulerConfig::default())
            .execute(&queries)
            .into_iter()
            .map(|r| (r.id, (r.visited, trim(r.per_level))))
            .collect();

    let group = ServiceGroup::start(
        Arc::clone(&engine),
        GroupConfig {
            replicas,
            service: ServiceConfig {
                max_batch_delay: Duration::from_micros(300),
                query_plane: plane,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert_eq!(group.replicas(), replicas);

    // Submit the whole stream (router decides the replica per query),
    // then redeem every ticket.
    let tickets: Vec<_> =
        queries.iter().map(|q| group.submit(q.clone()).expect("admission")).collect();
    for (q, t) in queries.iter().zip(tickets) {
        let got = t.wait().unwrap_or_else(|e| panic!("query {} failed: {e}", q.id));
        assert_eq!(
            (got.visited, trim(got.per_level)),
            expected[&q.id].clone(),
            "query {} diverged (replicas={replicas}, p={p})",
            q.id
        );
    }

    let rs = group.router_stats();
    assert_eq!(rs.routed.len(), replicas);
    assert_eq!(rs.routed.iter().sum::<u64>(), queries.len() as u64);
    let stats = group.stats();
    assert_eq!(stats.queries_completed, queries.len() as u64);
    assert_eq!(stats.queries_failed, 0);
    group.shutdown();
}

#[test]
fn replica_groups_match_the_scheduler_oracle_plane_off() {
    for &replicas in &[1usize, 2, 4] {
        for &p in &[1usize, 2, 4] {
            check_group_equivalence(replicas, p, QueryPlaneConfig::default());
        }
    }
}

#[test]
fn replica_groups_match_the_scheduler_oracle_plane_on() {
    for &replicas in &[1usize, 2, 4] {
        for &p in &[1usize, 2, 4] {
            check_group_equivalence(replicas, p, plane_on());
        }
    }
}

#[test]
fn router_is_deterministic_across_identical_seed_runs() {
    let n = 96u64;
    let graph = chordal_graph(n);
    let queries = zipf_stream(200, n, 0xC0FFEE);
    let run = |seed: u64| {
        let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(3)));
        let group = ServiceGroup::start(
            Arc::clone(&engine),
            GroupConfig {
                replicas: 4,
                router: RouterConfig { seed, ..Default::default() },
                service: ServiceConfig { query_plane: plane_on(), ..Default::default() },
            },
        );
        // Sequential submission: each query resolves before the next
        // routes, so heat evolves identically across runs.
        for q in &queries {
            group.query(q.clone()).expect("query");
        }
        let rs = group.router_stats();
        group.shutdown();
        rs
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.routed, b.routed, "same seed, same stream => same routing");
    assert_eq!(a.locality, b.locality);
    assert_eq!(a.heat_steered, b.heat_steered);
    assert_eq!(a.balance, b.balance);
    // A different seed rotates the home mapping: the totals still add
    // up even though the assignment moved.
    let c = run(8);
    assert_eq!(c.routed.iter().sum::<u64>(), queries.len() as u64);
}

#[test]
fn group_commit_fences_every_replica_at_once() {
    // Ring of 48; severing 0->1 collapses source 0's 6-hop reach from
    // 7 vertices to 1. Queries in flight on BOTH replicas while the
    // commit lands must each resolve against exactly the epoch their
    // result is labeled with — never a half-fenced mix.
    let g: EdgeList = (0..48u64).map(|v| (v, (v + 1) % 48)).collect();
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));
    let group = Arc::new(ServiceGroup::start(
        Arc::clone(&engine),
        GroupConfig {
            replicas: 2,
            service: ServiceConfig {
                max_batch_delay: Duration::from_micros(200),
                query_plane: plane_on(),
                ..Default::default()
            },
            ..Default::default()
        },
    ));

    // Pin a few epoch-0 answers first so both sides of the fence are
    // exercised for sure.
    for i in 0..4 {
        let r = group.replica(i % 2).query(KhopQuery::single(i, 0, 6)).unwrap();
        assert_eq!((r.epoch, r.visited), (0, 7));
    }

    // Two submitter threads (one pinned per replica) race a stream of
    // the same query while the main thread commits the severing edit.
    let mut handles = Vec::new();
    for t in 0..2usize {
        let group = Arc::clone(&group);
        handles.push(std::thread::spawn(move || {
            // Stream until the commit's epoch shows up in an answer
            // (bounded so a broken fence can't hang the test).
            let mut out = Vec::new();
            for i in 0..20_000 {
                let q = KhopQuery::single(100 + t * 100_000 + i, 0, 6);
                let r = group.replica(t).query(q).expect("query");
                out.push((r.epoch, r.visited));
                if r.epoch > 0 {
                    break;
                }
            }
            out
        }));
    }
    std::thread::sleep(Duration::from_millis(2));
    group.apply_updates([EdgeUpdate::delete(0, 1)].into_iter().collect()).unwrap();
    assert_eq!(group.commit_epoch().unwrap(), 1);

    let mut by_epoch: HashMap<u64, u64> = HashMap::new();
    for h in handles {
        for (epoch, visited) in h.join().expect("submitter") {
            let want = if epoch == 0 { 7 } else { 1 };
            assert_eq!(visited, want, "epoch {epoch} answer not from that epoch's snapshot");
            *by_epoch.entry(epoch).or_default() += 1;
        }
    }
    // The fence is group-wide: once any replica serves epoch 1, no
    // replica may serve epoch 0 again — and post-commit queries on
    // both replicas see the new snapshot.
    for t in 0..2 {
        let r = group.replica(t).query(KhopQuery::single(5000 + t, 0, 6)).unwrap();
        assert_eq!((r.epoch, r.visited), (1, 1));
    }
    assert!(by_epoch.contains_key(&1), "commit landed inside the stream");
    group.shutdown();
}

#[test]
fn armed_crash_fails_only_the_blamed_replicas_lanes() {
    // A never-healing crash armed for chaos job 0 only. Jobs are
    // numbered in execution order group-wide, so the first batch to
    // execute — replica 0's, serialized by waiting on its ticket
    // before touching replica 1 — dies, and everything after it on
    // either replica is untouched.
    let g: EdgeList = (0..48u64).map(|v| (v, (v + 1) % 48)).collect();
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));
    let plan = FaultPlan::new(29).crash(1, 1).arm_jobs(0..1);
    let group = ServiceGroup::start(
        Arc::clone(&engine),
        GroupConfig {
            replicas: 2,
            service: ServiceConfig {
                max_batch_delay: Duration::from_micros(100),
                fault_plan: Some(plan),
                max_retries: 0,
                retry_backoff: Duration::from_micros(50),
                recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let doomed = group.replica(0).query(KhopQuery::single(0, 0, 6));
    assert!(doomed.is_err(), "job 0 carries the armed crash and no recovery budget");

    // The blame stops at that batch: replica 1 (and replica 0 itself,
    // now past the armed window) keep serving correct answers.
    for t in 0..2 {
        let r = group.replica(t).query(KhopQuery::single(10 + t, 0, 6)).expect("healed");
        assert_eq!(r.visited, 7);
    }
    let stats = group.stats();
    assert_eq!(stats.queries_failed, 1, "exactly the armed batch's lanes fail");
    assert_eq!(stats.queries_completed, 2);
    group.shutdown();
}

#[test]
fn closing_one_replica_leaves_the_group_serving() {
    let n = 96u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let group = ServiceGroup::start(
        Arc::clone(&engine),
        GroupConfig {
            replicas: 3,
            service: ServiceConfig { query_plane: plane_on(), ..Default::default() },
            ..Default::default()
        },
    );

    group.shutdown_replica(1);

    // The router steers around the closed replica; every query still
    // answers, and mutation commits still work group-wide.
    let queries = zipf_stream(60, n, 0xDEAD);
    let expected: HashMap<usize, u64> = QueryScheduler::new(&engine, SchedulerConfig::default())
        .execute(&queries)
        .into_iter()
        .map(|r| (r.id, r.visited))
        .collect();
    for q in &queries {
        let r = group.query(q.clone()).expect("group must keep serving");
        assert_eq!(r.visited, expected[&q.id]);
    }
    let rs = group.router_stats();
    assert_eq!(rs.routed[1], 0, "no query may route to a closed replica");
    group.apply_updates([EdgeUpdate::insert(0, 50)].into_iter().collect()).unwrap();
    assert_eq!(group.commit_epoch().unwrap(), 1);

    group.shutdown();
    // Fully closed: admission and commits refuse, idempotently.
    assert!(matches!(group.query(KhopQuery::single(9, 0, 2)), Err(ServiceError::ShutDown)));
    assert!(matches!(group.commit_epoch(), Err(ServiceError::ShutDown)));
    group.shutdown();
}
