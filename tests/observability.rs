//! Observability plane: determinism of the trace log, soundness of the
//! metrics exposition, layer coverage of the registry, and the
//! OBSERVABILITY.md catalogue contract.
//!
//! The tests drive real chaos workloads through a live [`QueryService`]
//! — the same wiring `cgraph serve --metrics --trace-out` uses — and
//! check the promises the operator surface makes: identical seeds give
//! byte-identical trace logs, `render_text` output parses back
//! losslessly, counters are monotone across snapshots, registry
//! recovery counts equal the `ServiceStats` line, and every registered
//! metric family is documented.

use cgraph::obs::{parse_text, Obs, Snapshot, TraceSink};
use cgraph::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Ring + chords: multi-hop traversals that cross machine boundaries.
fn test_graph(n: u64) -> EdgeList {
    let mut edges: Vec<(u64, u64)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    for v in (0..n).step_by(5) {
        edges.push((v, (v * 3 + 7) % n));
    }
    edges.into_iter().collect()
}

/// Runs a fixed chaos workload (a scripted crash on the first batch,
/// healing after one failed attempt) through a fresh service and
/// returns the service handle's final stats plus the shared bundle.
/// Queries are submitted strictly sequentially — one multi-source
/// query per batch — so batch packing, and therefore the trace, is
/// deterministic.
fn run_chaos_workload(obs: &Arc<Obs>) -> ServiceStats {
    let g = test_graph(60);
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(3)));
    let plan = FaultPlan::new(7).crash(1, 1).heal_after(1).arm_jobs(0..1);
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            fault_plan: Some(plan),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 3 },
            obs: Some(Arc::clone(obs)),
            ..Default::default()
        },
    );
    for i in 0..4u64 {
        let q = KhopQuery::multi(i as usize, vec![i, (i + 30) % 60, (i * 7 + 3) % 60], 4);
        service.query(q).expect("chaos heals; every query must succeed");
    }
    let stats = service.stats();
    service.shutdown();
    stats
}

#[test]
fn identical_seeds_give_byte_identical_trace_logs() {
    let run = || {
        let obs = Obs::shared();
        run_chaos_workload(&obs);
        TraceSink::render(&obs.trace.drain())
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "chaos workload must leave a trace");
    assert_eq!(a, b, "identical seeds must render identical trace logs");
    // The log tells the recovery story: the scripted crash, the
    // recovery action it forced, and the batch completing afterwards.
    assert!(a.contains(" instant crash "), "missing crash event:\n{a}");
    assert!(
        a.contains("replay_partition") || a.contains("full_rollback"),
        "missing recovery event:\n{a}"
    );
    assert!(a.contains(" enter superstep "), "missing superstep spans:\n{a}");
    assert!(a.contains(" instant batch_done "), "missing batch completion:\n{a}");
}

#[test]
fn metrics_exposition_parses_back_and_counters_are_monotone() {
    let obs = Obs::shared();
    run_chaos_workload(&obs);
    let first = parse_text(&obs.metrics.render_text()).expect("snapshot must parse");
    run_chaos_workload(&obs); // same registry, second pass
    let second = parse_text(&obs.metrics.render_text()).expect("snapshot must parse");

    assert!(!first.counters.is_empty() && !first.histograms.is_empty());
    for (series, v1) in &first.counters {
        let v2 = second.counters.get(series).expect("counter series must persist");
        assert!(v2 >= v1, "counter {series} went backwards: {v1} -> {v2}");
    }
    for snap in [&first, &second] {
        for (name, h) in &snap.histograms {
            // Cumulative buckets end at the +Inf bucket == _count, and
            // never decrease along the edge sequence.
            assert!(h.buckets.windows(2).all(|w| w[0].1 <= w[1].1), "{name} not cumulative");
            let (last_edge, last_cum) = *h.buckets.last().expect("histogram has buckets");
            assert_eq!(last_edge, f64::INFINITY, "{name} missing +Inf bucket");
            assert_eq!(last_cum, h.count, "{name}: +Inf bucket must equal _count");
        }
    }
}

/// Recovery counters in the registry and the recovery fields of
/// [`ServiceStats`] are folded from the same [`RecoveryReport`]s, so
/// they must agree exactly.
fn assert_registry_matches_stats(snap: &Snapshot, stats: &ServiceStats) {
    let c = |name: &str| snap.counter_family(name);
    assert_eq!(c("cgraph_service_queries_completed_total"), stats.queries_completed);
    assert_eq!(c("cgraph_service_queries_failed_total"), stats.queries_failed);
    assert_eq!(c("cgraph_service_batches_dispatched_total"), stats.batches_dispatched);
    assert_eq!(c("cgraph_service_retries_total"), stats.retries);
    assert_eq!(c("cgraph_recovery_recoveries_total"), stats.recoveries);
    assert_eq!(c("cgraph_recovery_checkpoints_taken_total"), stats.checkpoints_taken);
    assert_eq!(c("cgraph_recovery_checkpoints_restored_total"), stats.checkpoints_restored);
    assert_eq!(c("cgraph_recovery_partitions_replayed_total"), stats.partitions_replayed);
    assert_eq!(c("cgraph_recovery_full_rollbacks_total"), stats.full_rollbacks);
    assert_eq!(c("cgraph_service_degraded_generations_total"), stats.degraded_generations);
    assert_eq!(c("cgraph_index_builds_total"), stats.index_builds);
    assert_eq!(c("cgraph_index_only_answers_total"), stats.index_only_answers);
    assert_eq!(c("cgraph_index_pruned_sends_total"), stats.index_pruned_sends);
    assert_eq!(c("cgraph_index_pruned_partitions_total"), stats.index_pruned_partitions);
    assert_eq!(snap.gauges["cgraph_index_sources"], stats.index_sources as i64);
    assert_eq!(snap.gauges["cgraph_index_bytes"], stats.index_bytes as i64);
    assert_eq!(c("cgraph_cache_hits_total"), stats.cache_hits);
    assert_eq!(c("cgraph_cache_misses_total"), stats.cache_misses);
    assert_eq!(c("cgraph_cache_insertions_total"), stats.cache_insertions);
    assert_eq!(c("cgraph_cache_evictions_total"), stats.cache_evictions);
    assert_eq!(c("cgraph_cache_coalesced_total"), stats.coalesced_traversals);
    assert_eq!(snap.gauges["cgraph_cache_entries"], stats.cache_entries as i64);
    assert_eq!(snap.gauges["cgraph_cache_bytes"], stats.cache_bytes as i64);
    assert_eq!(c("cgraph_mutation_updates_applied_total"), stats.updates_applied);
    assert_eq!(c("cgraph_mutation_edges_inserted_total"), stats.updates_inserted);
    assert_eq!(c("cgraph_mutation_edges_deleted_total"), stats.updates_deleted);
    assert_eq!(c("cgraph_mutation_commits_total"), stats.epoch_commits);
    assert_eq!(c("cgraph_mutation_folds_total"), stats.epoch_folds);
    assert_eq!(snap.gauges["cgraph_mutation_pending_updates"], stats.pending_updates as i64);
    assert_eq!(snap.gauges["cgraph_mutation_delta_entries"], stats.delta_entries as i64);
    assert_eq!(snap.gauges["cgraph_mutation_delta_bytes"], stats.delta_bytes as i64);
    assert_eq!(c("cgraph_durability_wal_records_total"), stats.wal_records);
    assert_eq!(c("cgraph_durability_wal_bytes_total"), stats.wal_bytes);
    assert_eq!(c("cgraph_durability_snapshots_total"), stats.snapshots_written);
    assert_eq!(c("cgraph_durability_snapshot_bytes_total"), stats.snapshot_bytes);
    assert_eq!(c("cgraph_durability_wal_replayed_total"), stats.wal_replayed);
    assert_eq!(c("cgraph_durability_snapshots_corrupt_total"), stats.snapshots_corrupt);
    assert_eq!(c("cgraph_durability_recoveries_total"), stats.durable_recoveries);
    assert_eq!(
        snap.gauges["cgraph_durability_last_snapshot_epoch"],
        stats.last_snapshot_epoch as i64
    );
}

#[test]
fn chaos_stream_covers_every_layer_and_matches_service_stats() {
    let obs = Obs::shared();
    let stats = run_chaos_workload(&obs);
    assert!(stats.recoveries > 0, "the scripted crash must force a recovery");

    let names = obs.metrics.names();
    assert!(names.len() >= 12, "expected a broad catalogue, got {names:?}");
    for layer in [
        "cgraph_service_",
        "cgraph_engine_",
        "cgraph_comm_",
        "cgraph_recovery_",
        "cgraph_cache_",
        "cgraph_index_",
        "cgraph_mutation_",
        "cgraph_durability_",
        "cgraph_router_",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(layer)),
            "no {layer}* metric registered; got {names:?}"
        );
    }

    let snap = parse_text(&obs.metrics.render_text()).expect("snapshot must parse");
    assert_registry_matches_stats(&snap, &stats);
    assert_eq!(snap.counters["cgraph_comm_machine_crashes_total"], 1);
    assert_eq!(snap.counters["cgraph_service_queries_submitted_total"], stats.queries_completed);
}

#[test]
fn fault_free_stream_still_matches_service_stats() {
    // The equality contract is not a chaos artifact: a clean stream
    // (zero recoveries everywhere) must agree just as exactly.
    let g = test_graph(40);
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));
    let obs = Obs::shared();
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(200),
            obs: Some(Arc::clone(&obs)),
            ..Default::default()
        },
    );
    let tickets: Vec<_> =
        (0..20).map(|i| service.submit(KhopQuery::single(i, i as u64 % 40, 3)).unwrap()).collect();
    for t in tickets {
        t.wait().expect("fault-free stream");
    }
    let stats = service.stats();
    service.shutdown();
    let snap = parse_text(&obs.metrics.render_text()).expect("snapshot must parse");
    assert_registry_matches_stats(&snap, &stats);
    assert_eq!(stats.recoveries, 0);
    assert_eq!(snap.counters["cgraph_comm_machine_crashes_total"], 0);
}

#[test]
fn cache_enabled_stream_matches_stats_and_traces() {
    // With the query plane on, the cgraph_cache_* families must carry
    // real (nonzero) traffic and still equal the ServiceStats line,
    // and the dispatcher must narrate the cache's life in the trace.
    let g = test_graph(40);
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));
    let obs = Obs::shared();
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            obs: Some(Arc::clone(&obs)),
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                coalesce: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Three passes over the same four sources: pass one executes and
    // commits, the rest are served from the cache.
    for round in 0..3u64 {
        for i in 0..4u64 {
            let id = (round * 4 + i) as usize;
            service.query(KhopQuery::single(id, (i * 9) % 40, 3)).unwrap();
        }
    }
    let stats = service.stats();
    service.shutdown();
    assert!(stats.cache_hits >= 8, "repeat passes must hit: {stats:?}");
    assert_eq!(stats.cache_misses, 4);
    assert_eq!(stats.cache_insertions, 4);

    let snap = parse_text(&obs.metrics.render_text()).expect("snapshot must parse");
    assert_registry_matches_stats(&snap, &stats);

    let log = TraceSink::render(&obs.trace.drain());
    assert!(log.contains(" instant cache_miss "), "missing cache_miss event:\n{log}");
    assert!(log.contains(" instant cache_insert "), "missing cache_insert event:\n{log}");
}

#[test]
fn mutating_stream_matches_stats_and_traces_epoch_commits() {
    // A stream of update batches and commits must carry real traffic in
    // the cgraph_mutation_* families, still equal the ServiceStats line
    // exactly, and narrate every epoch commit in the trace (the
    // `epoch_commit` instant's value is the new epoch — wall-clock
    // free, so identical runs trace identically).
    let g = test_graph(40);
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));
    let obs = Obs::shared();
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            obs: Some(Arc::clone(&obs)),
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    for round in 0..2u64 {
        service.query(KhopQuery::single(round as usize, 0, 3)).unwrap();
        let batch: UpdateBatch =
            [EdgeUpdate::insert(0, 20 + round), EdgeUpdate::delete(0, 1)].into_iter().collect();
        service.apply_updates(batch).unwrap();
        assert_eq!(service.commit_epoch().unwrap(), round + 1);
    }
    service.query(KhopQuery::single(10, 0, 3)).unwrap();
    let stats = service.stats();
    service.shutdown();
    assert_eq!(stats.updates_applied, 4);
    assert_eq!(stats.epoch_commits, 2);

    let snap = parse_text(&obs.metrics.render_text()).expect("snapshot must parse");
    assert_registry_matches_stats(&snap, &stats);

    let log = TraceSink::render(&obs.trace.drain());
    assert!(log.contains(" instant epoch_commit "), "missing epoch_commit event:\n{log}");
    assert_eq!(
        log.matches(" instant epoch_commit ").count(),
        2,
        "one epoch_commit instant per commit:\n{log}"
    );
}

#[test]
fn observability_doc_catalogues_every_registered_metric() {
    // OBSERVABILITY.md promises a complete catalogue. Diff the doc's
    // backtick-quoted metric names against a live registry populated by
    // a full chaos workload (which registers every family: service
    // handles eagerly, comm at set_obs, engine + recovery at the first
    // batch).
    let obs = Obs::shared();
    run_chaos_workload(&obs);
    // The `cgraph_index_*` families are catalogued by INDEXING.md (and
    // diffed against the registry by `tests/index_tier.rs`), so this
    // test scopes both sides of the diff to the prefixes
    // OBSERVABILITY.md owns.
    let prefixes = [
        "cgraph_service_",
        "cgraph_engine_",
        "cgraph_comm_",
        "cgraph_recovery_",
        "cgraph_cache_",
        "cgraph_mutation_",
        "cgraph_durability_",
        "cgraph_router_",
    ];
    let registered: std::collections::BTreeSet<String> = obs
        .metrics
        .names()
        .into_iter()
        .filter(|n| prefixes.iter().any(|p| n.starts_with(p)))
        .collect();

    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/OBSERVABILITY.md"))
        .expect("OBSERVABILITY.md must exist at the repo root");
    let documented: std::collections::BTreeSet<String> = doc
        .split('`')
        .skip(1)
        .step_by(2) // every other fragment is inside backticks
        .filter(|tok| {
            prefixes.iter().any(|p| tok.starts_with(p))
                && tok.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
        .map(str::to_string)
        .collect();

    let missing: Vec<_> = registered.difference(&documented).collect();
    assert!(missing.is_empty(), "metrics registered but not in OBSERVABILITY.md: {missing:?}");
    let stale: Vec<_> = documented.difference(&registered).collect();
    assert!(stale.is_empty(), "metrics documented but never registered: {stale:?}");
}
