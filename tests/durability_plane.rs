//! Crash-restart oracle for the durability plane: a durable
//! [`QueryService`] must come back from **any** crash point —
//! `kill -9` between commits, a torn WAL tail, a corrupt or lost
//! snapshot — to a committed epoch whose answers are **bit-identical**
//! to the same query asked of a graph rebuilt from scratch at that
//! epoch, and recovery must never read past a failed checksum.
//!
//! The model is the same one `tests/mutation_plane.rs` uses: a plain
//! `BTreeSet<(src, dst)>` per committed epoch, a reference BFS for
//! `(visited, per_level)`. Crashes are simulated by (a) cutting the
//! WAL at every byte offset, (b) flipping / truncating snapshot files,
//! and (c) running the whole open → mutate → kill → reopen loop under
//! a disk-fault [`FaultPlan`] (torn writes, bit flips, lost renames).

use cgraph::prelude::*;
use proptest::prelude::*;
use std::collections::{BTreeSet, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic xorshift stream so every run replays identically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A deterministic sparse digraph on `n` vertices (no self-loops).
fn seed_edges(n: u64, m: usize, seed: u64) -> BTreeSet<(u64, u64)> {
    let mut rng = Rng(seed | 1);
    let mut set = BTreeSet::new();
    while set.len() < m {
        let s = rng.below(n);
        let t = rng.below(n);
        if s != t {
            set.insert((s, t));
        }
    }
    set
}

fn edge_list(n: u64, edges: &BTreeSet<(u64, u64)>) -> EdgeList {
    let mut l = EdgeList::with_num_vertices(n);
    for &(s, t) in edges {
        l.push_pair(s, t);
    }
    l.set_num_vertices(n);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&l);
    b.build().edges
}

/// Applies a batch to the model edge set (last update wins per pair).
fn model_apply(set: &mut BTreeSet<(u64, u64)>, updates: &[EdgeUpdate]) {
    for u in updates {
        if u.is_insert() {
            set.insert((u.src(), u.dst()));
        } else {
            set.remove(&(u.src(), u.dst()));
        }
    }
}

/// Reference `(visited, per_level)` by BFS over the model edge set,
/// trailing zeros trimmed — matches [`QueryResult`]'s convention.
fn reference(n: u64, edges: &BTreeSet<(u64, u64)>, src: u64, k: u32) -> (u64, Vec<u64>) {
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
    for &(s, t) in edges {
        adj[s as usize].push(t);
    }
    let mut seen = vec![false; n as usize];
    let mut levels = vec![0u64; 1];
    let mut q = VecDeque::new();
    seen[src as usize] = true;
    levels[0] = 1;
    q.push_back((src, 0u32));
    let mut visited = 1u64;
    while let Some((v, d)) = q.pop_front() {
        if d >= k {
            continue;
        }
        for &t in &adj[v as usize] {
            if !seen[t as usize] {
                seen[t as usize] = true;
                visited += 1;
                if levels.len() <= (d + 1) as usize {
                    levels.resize((d + 2) as usize, 0);
                }
                levels[(d + 1) as usize] += 1;
                q.push_back((t, d + 1));
            }
        }
    }
    while levels.last() == Some(&0) {
        levels.pop();
    }
    (visited, levels)
}

/// A random update batch against the *current* model: deletes drawn
/// from live edges, inserts anywhere (no self-loops).
fn random_batch(
    n: u64,
    current: &BTreeSet<(u64, u64)>,
    rng: &mut Rng,
    len: usize,
) -> Vec<EdgeUpdate> {
    let live: Vec<(u64, u64)> = current.iter().copied().collect();
    (0..len)
        .map(|_| {
            if !live.is_empty() && rng.below(3) == 0 {
                let (s, t) = live[rng.below(live.len() as u64) as usize];
                EdgeUpdate::delete(s, t)
            } else {
                loop {
                    let s = rng.below(n);
                    let t = rng.below(n);
                    if s != t {
                        break EdgeUpdate::insert(s, t);
                    }
                }
            }
        })
        .collect()
}

/// Asserts one service answer against the model snapshot at the
/// answer's own epoch.
fn check(history: &[BTreeSet<(u64, u64)>], n: u64, src: u64, k: u32, r: &QueryResult) {
    assert!(
        (r.epoch as usize) < history.len(),
        "answer labelled epoch {} but only {} epochs exist",
        r.epoch,
        history.len()
    );
    let (visited, per_level) = reference(n, &history[r.epoch as usize], src, k);
    assert_eq!(
        r.visited, visited,
        "visited diverges from scratch rebuild at epoch {} (src {src}, k {k})",
        r.epoch
    );
    assert_eq!(
        r.per_level, per_level,
        "per_level diverges from scratch rebuild at epoch {} (src {src}, k {k})",
        r.epoch
    );
}

/// A self-cleaning data directory, unique across the concurrently
/// running tests of this binary.
struct TempDir(PathBuf);

static TEMP_SEQ: AtomicUsize = AtomicUsize::new(0);

impl TempDir {
    fn new(tag: &str) -> Self {
        let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir()
            .join(format!("cgraph-durplane-{tag}-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        Self(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn durable_config(dir: &Path, snapshot_every: u64) -> ServiceConfig {
    ServiceConfig {
        max_batch_delay: Duration::from_micros(50),
        durability: Some(DurabilityConfig::new(dir).snapshot_every(snapshot_every)),
        ..Default::default()
    }
}

/// Runs `rounds` of (batch, commit, spot-check query) against a live
/// durable service, extending the epoch history and returning the
/// batches in commit order.
fn run_rounds(
    svc: &QueryService,
    n: u64,
    model: &mut BTreeSet<(u64, u64)>,
    history: &mut Vec<BTreeSet<(u64, u64)>>,
    rng: &mut Rng,
    rounds: usize,
    batch_len: usize,
) -> Vec<Vec<EdgeUpdate>> {
    let mut batches = Vec::new();
    for _ in 0..rounds {
        let batch = random_batch(n, model, rng, batch_len);
        model_apply(model, &batch);
        svc.apply_updates(batch.iter().cloned().collect()).unwrap();
        batches.push(batch);
        let ep = svc.commit_epoch().unwrap();
        history.push(model.clone());
        assert_eq!(ep as usize, history.len() - 1, "epochs advance by one per commit");
        let src = rng.below(n);
        let r = svc.query(KhopQuery::single(history.len(), src, 2)).unwrap();
        check(history, n, src, 2, &r);
    }
    batches
}

/// Sorted final-name snapshot files inside a data directory.
fn snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "cgs"))
        .collect();
    v.sort();
    v
}

/// Copies a data directory, truncating `wal.log` to `wal_len` bytes.
fn copy_dir_with_wal_prefix(src: &Path, dst: &Path, wal_len: usize) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let p = entry.unwrap().path();
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        if name == "wal.log" {
            let bytes = fs::read(&p).unwrap();
            fs::write(dst.join(&name), &bytes[..wal_len.min(bytes.len())]).unwrap();
        } else {
            fs::copy(&p, dst.join(&name)).unwrap();
        }
    }
}

/// Flips one byte in the middle of a file.
fn flip_byte(path: &Path) {
    let mut bytes = fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(path, bytes).unwrap();
}

/// Cold start, four committed epochs, graceful stop, reopen: the
/// service must resume at the last committed epoch with every answer
/// bit-identical to the scratch rebuild, and stay writable.
#[test]
fn restart_resumes_last_committed_epoch() {
    const N: u64 = 32;
    let tmp = TempDir::new("restart");
    let base = seed_edges(N, 60, 0xD00D);
    let edges = edge_list(N, &base);
    let mut history = vec![base.clone()];
    let mut model = base;
    let mut rng = Rng(0xFEED);

    let (svc, out) =
        QueryService::open_or_recover(&edges, EngineConfig::new(2), durable_config(tmp.path(), 2))
            .unwrap();
    assert!(!out.recovered, "an empty data dir is a fresh start");
    assert_eq!(out.epoch, 0);
    run_rounds(&svc, N, &mut model, &mut history, &mut rng, 4, 10);
    let stats = svc.stats();
    assert!(stats.wal_records >= 8, "4 update records + 4 commit fences");
    assert!(stats.snapshots_written >= 1);
    svc.shutdown();
    drop(svc);

    let (svc, out) =
        QueryService::open_or_recover(&edges, EngineConfig::new(2), durable_config(tmp.path(), 2))
            .unwrap();
    assert!(out.recovered);
    assert_eq!(out.epoch, 4, "recovery lands on the last committed epoch");
    assert_eq!(out.pending_restored, 0, "everything was committed before the stop");
    for q in 0..8 {
        let src = rng.below(N);
        let k = 1 + rng.below(3) as u32;
        let r = svc.query(KhopQuery::single(q, src, k)).unwrap();
        assert_eq!(r.epoch, 4, "answers come from the recovered epoch");
        check(&history, N, src, k, &r);
    }
    // The recovered service keeps committing where the old one left off.
    run_rounds(&svc, N, &mut model, &mut history, &mut rng, 2, 8);
    assert_eq!(svc.stats().durable_recoveries, 1);
    svc.shutdown();
}

/// Cuts the WAL at **every byte offset** and recovers each prefix:
/// the recovered epoch must always be a committed one, answers must
/// match the scratch rebuild at that epoch, and a restored pending
/// tail must be exactly the one logged-but-unfenced batch. This is the
/// "never read past a failed checksum" guarantee made exhaustive.
#[test]
fn every_wal_prefix_recovers_to_a_committed_epoch() {
    const N: u64 = 24;
    const ROUNDS: usize = 3;
    const BATCH: usize = 5;
    let tmp = TempDir::new("walcut");
    let base = seed_edges(N, 40, 0x7A11);
    let edges = edge_list(N, &base);
    let mut history = vec![base.clone()];
    let mut model = base;
    let mut rng = Rng(0x5EED);

    // Huge cadence: only the base snapshot exists, the WAL carries all
    // three epochs — every cut hits replayed state.
    let (svc, _) = QueryService::open_or_recover(
        &edges,
        EngineConfig::new(2),
        durable_config(tmp.path(), 1 << 32),
    )
    .unwrap();
    let batches = run_rounds(&svc, N, &mut model, &mut history, &mut rng, ROUNDS, BATCH);
    svc.shutdown();
    drop(svc);

    let wal = fs::read(tmp.path().join("wal.log")).unwrap();
    assert!(!wal.is_empty());
    let scratch = TempDir::new("walcut-scratch");
    let mut prev_epoch = 0u64;
    for cut in 0..=wal.len() {
        let dir = scratch.path().join(format!("cut-{cut}"));
        copy_dir_with_wal_prefix(tmp.path(), &dir, cut);
        let (svc, out) = QueryService::open_or_recover(
            &edges,
            EngineConfig::new(2),
            durable_config(&dir, 1 << 32),
        )
        .unwrap_or_else(|e| panic!("cut at byte {cut}/{} must recover: {e}", wal.len()));
        assert!(
            (out.epoch as usize) < history.len(),
            "cut {cut}: recovered epoch {} was never committed",
            out.epoch
        );
        assert!(
            out.epoch >= prev_epoch,
            "cut {cut}: longer prefixes never recover less ({} < {prev_epoch})",
            out.epoch
        );
        prev_epoch = out.epoch;
        let src = (cut as u64) % N;
        let r = svc.query(KhopQuery::single(cut, src, 2)).unwrap();
        assert_eq!(r.epoch, out.epoch);
        check(&history, N, src, 2, &r);
        if out.pending_restored > 0 {
            // One batch per commit: a restored tail is exactly the
            // batch logged after the last surviving fence.
            let e = out.epoch as usize;
            assert!(e < batches.len(), "cut {cut}: pending beyond the last batch");
            assert_eq!(out.pending_restored, batches[e].len(), "cut {cut}");
            let ep = svc.commit_epoch().unwrap();
            assert_eq!(ep, out.epoch + 1);
            let r = svc.query(KhopQuery::single(cut, src, 2)).unwrap();
            assert_eq!(r.epoch, ep, "committing the restored tail reaches the next epoch");
            check(&history, N, src, 2, &r);
        }
        svc.shutdown();
        drop(svc);
        fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(prev_epoch as usize, ROUNDS, "the full WAL recovers every commit");
}

/// A corrupt or torn newest snapshot must be rejected by checksum and
/// recovery must fall back — to an older snapshot, or all the way to
/// the base graph + full WAL replay — still landing on the last
/// committed epoch.
#[test]
fn corrupt_snapshots_fall_back_without_losing_commits() {
    const N: u64 = 28;
    const ROUNDS: usize = 5;
    let tmp = TempDir::new("snapfall");
    let base = seed_edges(N, 50, 0xCAFE);
    let edges = edge_list(N, &base);
    let mut history = vec![base.clone()];
    let mut model = base;
    let mut rng = Rng(0xF00D);

    let (svc, _) =
        QueryService::open_or_recover(&edges, EngineConfig::new(2), durable_config(tmp.path(), 1))
            .unwrap();
    run_rounds(&svc, N, &mut model, &mut history, &mut rng, ROUNDS, 8);
    svc.shutdown();
    drop(svc);
    let snaps = snapshot_files(tmp.path());
    assert!(snaps.len() >= 2, "cadence 1 must retain several snapshots");

    // (a) bit flip in the newest snapshot → checksum rejects it,
    // an older snapshot + WAL tail still reach the tip.
    let scratch = TempDir::new("snapfall-flip");
    copy_dir_with_wal_prefix(tmp.path(), scratch.path(), usize::MAX);
    flip_byte(snapshot_files(scratch.path()).last().unwrap());
    let (svc, out) = QueryService::open_or_recover(
        &edges,
        EngineConfig::new(2),
        durable_config(scratch.path(), 1),
    )
    .unwrap();
    assert!(out.recovered);
    assert!(out.snapshots_corrupt >= 1, "the flipped snapshot must be counted corrupt");
    assert_eq!(out.epoch as usize, ROUNDS, "fallback still recovers the tip");
    let src = rng.below(N);
    let r = svc.query(KhopQuery::single(0, src, 3)).unwrap();
    check(&history, N, src, 3, &r);
    assert!(svc.stats().snapshots_corrupt >= 1);
    svc.shutdown();
    drop(svc);

    // (b) torn newest snapshot (no END frame) → same fallback.
    let scratch = TempDir::new("snapfall-torn");
    copy_dir_with_wal_prefix(tmp.path(), scratch.path(), usize::MAX);
    let newest = snapshot_files(scratch.path()).last().unwrap().clone();
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
    let (svc, out) = QueryService::open_or_recover(
        &edges,
        EngineConfig::new(2),
        durable_config(scratch.path(), 1),
    )
    .unwrap();
    assert!(out.snapshots_corrupt >= 1);
    assert_eq!(out.epoch as usize, ROUNDS);
    svc.shutdown();
    drop(svc);

    // (c) every snapshot corrupt → bootstrap from the base graph and
    // replay the whole WAL from sequence 0.
    let scratch = TempDir::new("snapfall-all");
    copy_dir_with_wal_prefix(tmp.path(), scratch.path(), usize::MAX);
    let all = snapshot_files(scratch.path());
    let total = all.len();
    for s in &all {
        flip_byte(s);
    }
    let (svc, out) = QueryService::open_or_recover(
        &edges,
        EngineConfig::new(2),
        durable_config(scratch.path(), 1),
    )
    .unwrap();
    assert_eq!(out.snapshots_corrupt, total, "every snapshot is rejected");
    assert_eq!(out.epoch as usize, ROUNDS, "full WAL replay reaches the tip");
    let src = rng.below(N);
    let r = svc.query(KhopQuery::single(1, src, 3)).unwrap();
    check(&history, N, src, 3, &r);
    svc.shutdown();
}

/// Updates applied but never committed survive a stop: they are
/// WAL-logged ahead of the buffer, surfaced by `pending_restored` on
/// reopen, and the first commit publishes exactly them.
#[test]
fn uncommitted_pending_tail_survives_restart() {
    const N: u64 = 24;
    let tmp = TempDir::new("pending");
    let base = seed_edges(N, 40, 0xBEE);
    let edges = edge_list(N, &base);
    let mut rng = Rng(0xABCD);

    let (svc, _) =
        QueryService::open_or_recover(&edges, EngineConfig::new(2), durable_config(tmp.path(), 4))
            .unwrap();
    let batch = random_batch(N, &base, &mut rng, 7);
    svc.apply_updates(batch.iter().cloned().collect()).unwrap();
    assert_eq!(svc.stats().pending_updates, 7, "buffered updates are visible in stats");
    svc.shutdown(); // syncs the WAL; the buffer itself is dropped
    drop(svc);

    let (svc, out) =
        QueryService::open_or_recover(&edges, EngineConfig::new(2), durable_config(tmp.path(), 4))
            .unwrap();
    assert!(out.recovered);
    assert_eq!(out.epoch, 0, "nothing was committed");
    assert_eq!(out.pending_restored, 7, "the logged tail is back in the buffer");
    assert_eq!(svc.stats().pending_updates, 7);
    let ep = svc.commit_epoch().unwrap();
    assert_eq!(ep, 1);
    let mut model = base.clone();
    model_apply(&mut model, &batch);
    let history = vec![base, model];
    for q in 0..5 {
        let src = rng.below(N);
        let r = svc.query(KhopQuery::single(q, src, 2)).unwrap();
        assert_eq!(r.epoch, 1);
        check(&history, N, src, 2, &r);
    }
    svc.shutdown();
}

/// `try_start` must refuse a data directory that already holds durable
/// state — resuming it is `open_or_recover`'s job, and overwriting it
/// would silently discard committed updates.
#[test]
fn try_start_refuses_a_populated_data_dir() {
    const N: u64 = 16;
    let tmp = TempDir::new("refuse");
    let base = seed_edges(N, 20, 0x11);
    let edges = edge_list(N, &base);
    let (svc, _) =
        QueryService::open_or_recover(&edges, EngineConfig::new(1), durable_config(tmp.path(), 1))
            .unwrap();
    svc.apply_updates(random_batch(N, &base, &mut Rng(9), 3).into_iter().collect()).unwrap();
    svc.commit_epoch().unwrap();
    svc.shutdown();
    drop(svc);

    let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(1)));
    let err = QueryService::try_start(engine, durable_config(tmp.path(), 1))
        .err()
        .expect("try_start must not adopt an existing data dir");
    match err {
        ServiceError::Durability(msg) => {
            assert!(msg.contains("open_or_recover"), "error should point at the fix: {msg}")
        }
        other => panic!("expected a durability refusal, got {other}"),
    }
}

/// Construction rejects nonsensical knobs with a typed error instead
/// of wedging later: a zero checkpoint interval, a zero commit
/// threshold, a zero snapshot cadence, zero retained snapshots — and
/// `open_or_recover` without a durability config. No directory is
/// created on the rejected paths.
#[test]
fn invalid_knobs_are_rejected_at_construction() {
    const N: u64 = 12;
    let base = seed_edges(N, 15, 0x22);
    let edges = edge_list(N, &base);
    let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(1)));
    let never = std::env::temp_dir().join(format!("cgraph-durplane-never-{}", std::process::id()));
    let _ = fs::remove_dir_all(&never);

    let cases: Vec<ServiceConfig> = vec![
        ServiceConfig {
            recovery: RecoveryConfig { checkpoint_interval: 0, max_recoveries: 3 },
            ..Default::default()
        },
        ServiceConfig {
            mutation: MutationConfig { commit_threshold: Some(0), ..Default::default() },
            ..Default::default()
        },
        ServiceConfig {
            durability: Some(DurabilityConfig::new(&never).snapshot_every(0)),
            ..Default::default()
        },
        ServiceConfig {
            durability: Some(DurabilityConfig {
                keep_snapshots: 0,
                ..DurabilityConfig::new(&never)
            }),
            ..Default::default()
        },
    ];
    for (i, cfg) in cases.into_iter().enumerate() {
        match QueryService::try_start(Arc::clone(&engine), cfg.clone()) {
            Err(ServiceError::InvalidConfig(_)) => {}
            Err(other) => panic!("case {i}: expected InvalidConfig, got {other}"),
            Ok(_) => panic!("case {i}: a zero knob was accepted"),
        }
        // The durable variants fail identically through the recovery door.
        if cfg.durability.is_some() {
            match QueryService::open_or_recover(&edges, EngineConfig::new(1), cfg) {
                Err(ServiceError::InvalidConfig(_)) => {}
                Err(other) => panic!("case {i}: open_or_recover wrong error: {other}"),
                Ok(_) => panic!("case {i}: open_or_recover accepted a zero knob"),
            }
        }
    }
    assert!(!never.exists(), "rejected configs must not touch the filesystem");
    match QueryService::open_or_recover(&edges, EngineConfig::new(1), ServiceConfig::default()) {
        Err(ServiceError::InvalidConfig(_)) => {}
        Err(other) => panic!("open_or_recover without durability: wrong error {other}"),
        Ok(_) => panic!("open_or_recover without durability must be rejected"),
    }
}

/// The full kill-and-reopen loop under a disk-fault [`FaultPlan`]:
/// torn WAL writes, snapshot bit flips and lost renames. Recovery must
/// always succeed, always land on an epoch that was really committed,
/// and every answer — before and after each "crash" — must match the
/// scratch rebuild. Lost generations rewind the model exactly as the
/// truncated WAL dictates.
#[test]
fn disk_fault_chaos_survives_kill_and_reopen_loop() {
    const N: u64 = 28;
    const GENERATIONS: usize = 6;
    let tmp = TempDir::new("chaos");
    let base = seed_edges(N, 50, 0xC4A05);
    let edges = edge_list(N, &base);
    let mut history = vec![base.clone()];
    let mut batches: Vec<Vec<EdgeUpdate>> = Vec::new();
    let mut rng = Rng(0xC4A05EED);
    let plan =
        FaultPlan::new(0xD15C).with_torn_write(0.12).with_bit_flip(0.08).with_rename_lost(0.25);

    for generation in 0..GENERATIONS {
        let cfg = ServiceConfig { fault_plan: Some(plan.clone()), ..durable_config(tmp.path(), 1) };
        let (svc, out) = QueryService::open_or_recover(&edges, EngineConfig::new(2), cfg)
            .unwrap_or_else(|e| panic!("generation {generation}: recovery must survive: {e}"));
        let r = out.epoch as usize;
        assert!(
            r < history.len(),
            "generation {generation}: epoch {r} was never committed ({} exist)",
            history.len()
        );
        // Verify the recovered epoch, then rewind the model to what the
        // damaged WAL actually preserved.
        for q in 0..3 {
            let src = rng.below(N);
            let rr = svc.query(KhopQuery::single(q, src, 2)).unwrap();
            assert_eq!(rr.epoch as usize, r, "generation {generation}");
            check(&history, N, src, 2, &rr);
        }
        if out.pending_restored > 0 {
            assert!(r < batches.len(), "generation {generation}: pending beyond known batches");
            let tail = batches[r].clone();
            assert_eq!(out.pending_restored, tail.len(), "generation {generation}");
            history.truncate(r + 1);
            batches.truncate(r + 1);
            let mut m = history[r].clone();
            model_apply(&mut m, &tail);
            let ep = svc.commit_epoch().unwrap();
            assert_eq!(ep as usize, r + 1);
            history.push(m);
        } else {
            history.truncate(r + 1);
            batches.truncate(r);
        }
        let mut model = history.last().unwrap().clone();
        batches.extend(run_rounds(&svc, N, &mut model, &mut history, &mut rng, 2, 6));
        svc.shutdown();
    }
}

/// Strategy-driven version of the crash oracle: a random workload, a
/// random WAL cut point, random snapshot damage, and optionally a
/// disk-faulty reopen — recovery must always land on a committed epoch
/// bit-identical to the scratch rebuild. Pinned cases live in
/// `proptest-regressions/durability_plane.txt`.
#[derive(Clone, Copy, Debug)]
enum SnapDamage {
    None,
    Flip,
    Torn,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_wal_prefix_and_damaged_snapshot_recover_consistently(
        seed in 0u64..u64::MAX,
        rounds in 1usize..4,
        batch_len in 1usize..8,
        cut_permille in 0u32..1001,
        damage in prop_oneof![Just(SnapDamage::None), Just(SnapDamage::Flip), Just(SnapDamage::Torn)],
        faulty_reopen in (0u8..2).prop_map(|b| b == 1),
    ) {
        const N: u64 = 20;
        let tmp = TempDir::new("prop");
        let base = seed_edges(N, 30, seed);
        let edges = edge_list(N, &base);
        let mut history = vec![base.clone()];
        let mut model = base;
        let mut rng = Rng(seed ^ 0x9E3779B97F4A7C15);

        let (svc, _) = QueryService::open_or_recover(
            &edges,
            EngineConfig::new(2),
            durable_config(tmp.path(), 2),
        )
        .unwrap();
        let batches =
            run_rounds(&svc, N, &mut model, &mut history, &mut rng, rounds, batch_len);
        svc.shutdown();
        drop(svc);

        // Crash surgery: cut the WAL, damage the newest snapshot.
        let wal_path = tmp.path().join("wal.log");
        let wal = fs::read(&wal_path).unwrap();
        let cut = (wal.len() as u64 * cut_permille as u64 / 1000) as usize;
        fs::write(&wal_path, &wal[..cut]).unwrap();
        if let Some(newest) = snapshot_files(tmp.path()).last() {
            match damage {
                SnapDamage::None => {}
                SnapDamage::Flip => flip_byte(newest),
                SnapDamage::Torn => {
                    let b = fs::read(newest).unwrap();
                    fs::write(newest, &b[..b.len() / 2]).unwrap();
                }
            }
        }

        let mut cfg = durable_config(tmp.path(), 2);
        if faulty_reopen {
            cfg.fault_plan = Some(
                FaultPlan::new(seed)
                    .with_torn_write(0.1)
                    .with_bit_flip(0.1)
                    .with_rename_lost(0.3),
            );
        }
        let (svc, out) = QueryService::open_or_recover(&edges, EngineConfig::new(2), cfg)
            .unwrap_or_else(|e| panic!("recovery must survive any prefix: {e}"));
        prop_assert!(
            (out.epoch as usize) < history.len(),
            "epoch {} was never committed",
            out.epoch
        );
        for q in 0..2 {
            let src = rng.below(N);
            let r = svc.query(KhopQuery::single(q, src, 2)).unwrap();
            prop_assert_eq!(r.epoch, out.epoch);
            check(&history, N, src, 2, &r);
        }
        if out.pending_restored > 0 {
            let e = out.epoch as usize;
            prop_assert!(e < batches.len());
            prop_assert_eq!(out.pending_restored, batches[e].len());
            let ep = svc.commit_epoch().unwrap();
            prop_assert_eq!(ep, out.epoch + 1);
            let src = rng.below(N);
            let r = svc.query(KhopQuery::single(9, src, 2)).unwrap();
            prop_assert_eq!(r.epoch, ep);
            check(&history, N, src, 2, &r);
        }
        svc.shutdown();
    }
}
