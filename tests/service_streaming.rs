//! Streaming equivalence: the persistent [`QueryService`] must return
//! exactly what the closed-batch [`QueryScheduler`] returns for the
//! same queries — same reach counts, same per-level profiles — no
//! matter how many submitter threads race, how the stream gets packed
//! into batches, how many machines serve it, or which update mode the
//! engine runs.

use cgraph::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A deterministic but irregular query mix: single- and multi-source,
/// varying k, sources spread over the vertex range.
fn query_mix(n_queries: usize, n_vertices: u64) -> Vec<KhopQuery> {
    (0..n_queries)
        .map(|i| {
            let base = (i as u64 * 13) % n_vertices;
            let k = (i % 5) as u32 + 1;
            if i % 3 == 0 {
                let s2 = (base + n_vertices / 2) % n_vertices;
                let s3 = (base + 7) % n_vertices;
                KhopQuery::multi(i, vec![base, s2, s3], k)
            } else {
                KhopQuery::single(i, base, k)
            }
        })
        .collect()
}

/// Power-law-ish deterministic graph: ring backbone plus long chords,
/// so traversals cross machine boundaries at every hop count.
fn chordal_graph(n: u64) -> EdgeList {
    let mut edges: Vec<(u64, u64)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    for v in (0..n).step_by(3) {
        edges.push((v, (v * 7 + 5) % n));
    }
    for v in (0..n).step_by(11) {
        edges.push(((v * 3) % n, v));
    }
    edges.into_iter().collect()
}

/// Drops the trailing all-zero levels a batch pads onto its shallower
/// lanes (the service already reports the trimmed form).
fn trim(mut per_level: Vec<u64>) -> Vec<u64> {
    while per_level.last() == Some(&0) {
        per_level.pop();
    }
    per_level
}

fn check_equivalence(p: usize, asynchronous: bool, submitters: usize) {
    let n = 120u64;
    let graph = chordal_graph(n);
    let config =
        if asynchronous { EngineConfig::new(p).asynchronous() } else { EngineConfig::new(p) };
    let engine = Arc::new(DistributedEngine::new(&graph, config));
    let queries = query_mix(40, n);

    // The scheduler pads a lane's level vector to its batch's depth;
    // the service reports the packing-invariant (trimmed) profile, so
    // compare trimmed.
    let expected: HashMap<usize, (u64, Vec<u64>)> =
        QueryScheduler::new(&engine, SchedulerConfig::default())
            .execute(&queries)
            .into_iter()
            .map(|r| (r.id, (r.visited, trim(r.per_level))))
            .collect();

    // Short deadline so the open stream actually exercises partial
    // (deadline-flushed) batches, not one giant 64-lane batch.
    let service = Arc::new(QueryService::start(
        Arc::clone(&engine),
        ServiceConfig { max_batch_delay: Duration::from_micros(300), ..Default::default() },
    ));

    // N submitter threads race interleaved slices of the stream.
    let mut handles = Vec::new();
    for t in 0..submitters {
        let service = Arc::clone(&service);
        let mine: Vec<KhopQuery> = queries.iter().skip(t).step_by(submitters).cloned().collect();
        handles.push(std::thread::spawn(move || {
            mine.into_iter()
                .map(|q| {
                    let id = q.id;
                    let r = q.clone();
                    let got = service.query(q).unwrap_or_else(|e| {
                        panic!("query {id} ({r:?}) failed: {e}");
                    });
                    (id, (got.visited, got.per_level))
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut got: HashMap<usize, (u64, Vec<u64>)> = HashMap::new();
    for h in handles {
        got.extend(h.join().expect("submitter thread panicked"));
    }

    assert_eq!(got.len(), expected.len());
    for (id, exp) in &expected {
        assert_eq!(
            got.get(id),
            Some(exp),
            "query {id} diverged (p={p}, async={asynchronous}, submitters={submitters})"
        );
    }

    let stats = service.stats();
    assert_eq!(stats.queries_completed, queries.len() as u64);
    assert_eq!(stats.queries_failed, 0);
    assert_eq!(stats.response.len(), queries.len());
    // Response = admission wait + exec, so the whole distribution must
    // dominate the exec distribution rank by rank.
    for (r, e) in stats.response.sorted().iter().zip(stats.exec.sorted()) {
        assert!(r >= e, "response {r:?} < exec {e:?}");
    }
    service.shutdown();
}

#[test]
fn service_equals_scheduler_p1_sync() {
    check_equivalence(1, false, 4);
}

#[test]
fn service_equals_scheduler_p2_sync() {
    check_equivalence(2, false, 4);
}

#[test]
fn service_equals_scheduler_p4_sync() {
    check_equivalence(4, false, 3);
}

#[test]
fn service_equals_scheduler_p1_async() {
    check_equivalence(1, true, 4);
}

#[test]
fn service_equals_scheduler_p2_async() {
    check_equivalence(2, true, 4);
}

#[test]
fn service_equals_scheduler_p4_async() {
    check_equivalence(4, true, 3);
}

#[test]
fn service_respects_memory_budget_lane_narrowing() {
    let graph = chordal_graph(400);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let full_bytes = QueryScheduler::new(&engine, SchedulerConfig::default()).batch_state_bytes();
    let scheduler_cfg =
        SchedulerConfig { memory_budget_bytes: Some(full_bytes / 4), ..Default::default() };
    let narrowed = QueryScheduler::new(&engine, scheduler_cfg).effective_lanes();
    assert!((1..64).contains(&narrowed), "lanes = {narrowed}");

    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig { scheduler: scheduler_cfg, ..Default::default() },
    );
    assert_eq!(service.effective_lanes(), narrowed);

    // More queries than the narrowed width: forced multi-batch, counts
    // still exact.
    let queries = query_mix(2 * narrowed + 3, 400);
    let expected = QueryScheduler::new(&engine, scheduler_cfg).execute(&queries);
    for (q, exp) in queries.iter().zip(&expected) {
        let got = service.query(q.clone()).unwrap();
        assert_eq!(got.visited, exp.visited, "query {}", q.id);
        assert_eq!(got.per_level, trim(exp.per_level.clone()), "query {}", q.id);
    }
    service.shutdown();
}
