//! Query-plane semantics: the result cache, in-flight coalescing and
//! locality-aware packing may change *when and where* a traversal
//! executes — never its answer.
//!
//! The load here is deliberately repeat-heavy (a seeded Zipf stream
//! over a small hot set), because that is the regime the plane exists
//! for, and the regime where a correctness bug — a stale cache entry,
//! a mis-folded coalesced lane — would actually surface.

use cgraph::prelude::*;
use cgraph_gen::QueryStream;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Ring backbone plus chords, so traversals cross machine boundaries
/// at every hop count (same shape the streaming-equivalence suite
/// uses).
fn chordal_graph(n: u64) -> EdgeList {
    let mut edges: Vec<(u64, u64)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    for v in (0..n).step_by(3) {
        edges.push((v, (v * 7 + 5) % n));
    }
    for v in (0..n).step_by(11) {
        edges.push(((v * 3) % n, v));
    }
    edges.into_iter().collect()
}

/// A repeat-heavy stream: sources drawn from a seeded Zipf(1.0) over a
/// small candidate set, k cycling over a few depths. Most queries are
/// re-asks of a hot (source, k) pair — cache and coalescer food.
fn zipf_stream(n_queries: usize, n_vertices: u64) -> Vec<KhopQuery> {
    let candidates: Vec<u64> = (0..16u64).map(|i| (i * 17 + 3) % n_vertices).collect();
    QueryStream::zipf(0x2EA1, 1.0, n_queries)
        .sources(&candidates)
        .into_iter()
        .enumerate()
        .map(|(i, s)| KhopQuery::single(i, s, (i % 3) as u32 + 2))
        .collect()
}

fn full_plane() -> QueryPlaneConfig {
    QueryPlaneConfig {
        cache_capacity_bytes: Some(4 << 20),
        coalesce: true,
        pack_locality: true,
        ..Default::default()
    }
}

/// Runs `queries` through a fresh service in closed-loop waves (so
/// earlier commits can serve later waves from the cache) and returns
/// each query's `(visited, per_level)` plus the final stats.
fn run_stream(
    engine: &Arc<DistributedEngine>,
    queries: &[KhopQuery],
    plane: QueryPlaneConfig,
) -> (HashMap<usize, (u64, Vec<u64>)>, ServiceStats) {
    let service = QueryService::start(
        Arc::clone(engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_plane: plane,
            ..Default::default()
        },
    );
    let mut got = HashMap::new();
    for wave in queries.chunks(32) {
        let tickets: Vec<_> =
            wave.iter().map(|q| (q.id, service.submit(q.clone()).expect("submit"))).collect();
        for (id, t) in tickets {
            let r = t.wait().expect("query failed");
            got.insert(id, (r.visited, r.per_level));
        }
    }
    let stats = service.stats();
    service.shutdown();
    (got, stats)
}

/// Cache + coalescing + locality packing on vs everything off: answers
/// must be bit-identical, and on the repeat-heavy stream the plane
/// must actually have fired (otherwise this test proves nothing).
fn check_plane_transparent(p: usize, asynchronous: bool) {
    let n = 120u64;
    let graph = chordal_graph(n);
    let config =
        if asynchronous { EngineConfig::new(p).asynchronous() } else { EngineConfig::new(p) };
    let engine = Arc::new(DistributedEngine::new(&graph, config));
    let queries = zipf_stream(200, n);

    let (off, off_stats) = run_stream(&engine, &queries, QueryPlaneConfig::default());
    let (on, on_stats) = run_stream(&engine, &queries, full_plane());

    assert_eq!(off.len(), queries.len());
    assert_eq!(on.len(), queries.len());
    for (id, exp) in &off {
        assert_eq!(
            on.get(id),
            Some(exp),
            "query {id} diverged with the query plane on (p={p}, async={asynchronous})"
        );
    }
    // The plane-off run must not have touched the cache at all…
    assert_eq!(off_stats.cache_hits + off_stats.cache_insertions, 0);
    assert_eq!(off_stats.cache_bytes, 0);
    // …and the plane-on run must have genuinely exercised it: a Zipf
    // stream of 200 queries over 16 hot sources × 3 depths repeats
    // constantly, so hits (or coalesced lanes) are guaranteed.
    assert!(
        on_stats.cache_hits + on_stats.coalesced_traversals > 0,
        "repeat-heavy stream produced no cache/coalescer activity: {on_stats:?}"
    );
    assert_eq!(on_stats.queries_completed, queries.len() as u64);
    assert_eq!(on_stats.queries_failed, 0);
}

#[test]
fn plane_is_transparent_p1_sync() {
    check_plane_transparent(1, false);
}

#[test]
fn plane_is_transparent_p2_sync() {
    check_plane_transparent(2, false);
}

#[test]
fn plane_is_transparent_p4_sync() {
    check_plane_transparent(4, false);
}

#[test]
fn plane_is_transparent_p1_async() {
    check_plane_transparent(1, true);
}

#[test]
fn plane_is_transparent_p2_async() {
    check_plane_transparent(2, true);
}

#[test]
fn plane_is_transparent_p4_async() {
    check_plane_transparent(4, true);
}

/// Intra-batch dedup is unconditional — no cache, no coalescer flag,
/// yet duplicate `(source, k)` submissions in one window share a lane
/// and still every ticket gets the full, correct answer.
#[test]
fn dedup_is_unconditional_and_lossless() {
    let n = 60u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let expect = khop_count(&engine, 7, 3);

    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig { max_batch_delay: Duration::from_millis(5), ..Default::default() },
    );
    let tickets: Vec<_> =
        (0..8).map(|i| service.submit(KhopQuery::single(i, 7, 3)).unwrap()).collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap().visited, expect);
    }
    let stats = service.stats();
    // All eight were admitted into one 5 ms window: one primary lane,
    // seven followers — even with the whole query plane disabled.
    assert_eq!(stats.coalesced_traversals, 7, "{stats:?}");
    assert_eq!(stats.cache_hits + stats.cache_insertions, 0);
    service.shutdown();
}

/// A repeat of a committed query is served from the cache: counted as
/// a hit, answered identically, with a zero-exec-time sample folded
/// into the stats rather than dropped.
#[test]
fn cache_hit_round_trip() {
    let n = 80u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let first = service.query(KhopQuery::single(0, 11, 4)).unwrap();
    let second = service.query(KhopQuery::single(1, 11, 4)).unwrap();
    assert_eq!(first.visited, second.visited);
    assert_eq!(first.per_level, second.per_level);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1, "{stats:?}");
    assert_eq!(stats.cache_insertions, 1);
    assert_eq!(stats.cache_entries, 1);
    assert!(stats.cache_bytes > 0);
    // The hit's zero-latency exec sample is a first-class data point.
    assert_eq!(stats.exec.len(), 2);
    assert_eq!(stats.exec.min(), Duration::ZERO);
    service.shutdown();
}

/// `invalidate_cache` bumps the graph epoch: every cached answer from
/// the old epoch is unreachable and the next ask re-executes.
#[test]
fn epoch_invalidation_forces_reexecution() {
    let n = 80u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let before = service.query(KhopQuery::single(0, 5, 3)).unwrap();
    assert_eq!(service.query(KhopQuery::single(1, 5, 3)).unwrap().visited, before.visited);
    assert_eq!(service.stats().cache_hits, 1);

    let old = service.graph_epoch();
    assert_eq!(service.invalidate_cache(), old + 1);
    assert_eq!(service.stats().cache_entries, 0, "old-epoch entries must be dropped");

    // Same graph, so the answer is unchanged — but it must come from a
    // fresh execution keyed to the new epoch, not a stale hit.
    let after = service.query(KhopQuery::single(2, 5, 3)).unwrap();
    assert_eq!(after.visited, before.visited);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1, "post-invalidation ask must miss: {stats:?}");
    assert_eq!(stats.cache_insertions, 2);
    service.shutdown();
}

/// A cache sized below the working set stays within its byte budget by
/// evicting deterministically — it never grows past capacity and never
/// serves a wrong answer while churning.
#[test]
fn tiny_cache_evicts_within_budget() {
    let n = 100u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let capacity = 2048usize;
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(capacity),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Two sweeps over more distinct keys than the budget holds.
    for round in 0..2 {
        for i in 0..40u64 {
            let id = (round * 40 + i) as usize;
            let r = service.query(KhopQuery::single(id, (i * 7) % n, 3)).unwrap();
            assert_eq!(r.visited, khop_count(&engine, (i * 7) % n, 3), "query {id}");
        }
    }
    let stats = service.stats();
    assert!(stats.cache_evictions > 0, "working set must overflow the budget: {stats:?}");
    assert!(
        stats.cache_bytes <= capacity as u64,
        "cache over budget: {} > {capacity}",
        stats.cache_bytes
    );
    service.shutdown();
}

/// Locality packing under a saturated queue: many submitter threads,
/// queue deeper than one batch, answers identical to the engine's
/// ground truth for every query.
#[test]
fn locality_packing_under_saturation_is_lossless() {
    let n = 120u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(4)));
    let service = Arc::new(QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(200),
            query_plane: QueryPlaneConfig {
                pack_locality: true,
                locality_fairness: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    ));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                // Submit the whole slice first, then redeem: the queue
                // runs deeper than one 64-lane batch, which is the
                // regime where locality selection actually engages.
                let submitted: Vec<_> = (0..30)
                    .map(|i| {
                        let src = ((t * 31 + i) as u64 * 13) % 120;
                        let id = t * 100 + i;
                        (src, service.submit(KhopQuery::single(id, src, 3)).unwrap())
                    })
                    .collect();
                submitted
                    .into_iter()
                    .map(|(src, ticket)| (src, ticket.wait().unwrap().visited))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for h in handles {
        for (src, visited) in h.join().expect("submitter panicked") {
            assert_eq!(visited, khop_count(&engine, src, 3), "source {src}");
        }
    }
    let stats = service.stats();
    assert_eq!(stats.queries_failed, 0);
    assert_eq!(stats.queries_completed, 120);
    service.shutdown();
}
