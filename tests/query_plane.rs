//! Query-plane semantics: the result cache, in-flight coalescing and
//! locality-aware packing may change *when and where* a traversal
//! executes — never its answer.
//!
//! The load here is deliberately repeat-heavy (a seeded Zipf stream
//! over a small hot set), because that is the regime the plane exists
//! for, and the regime where a correctness bug — a stale cache entry,
//! a mis-folded coalesced lane — would actually surface.

use cgraph::prelude::*;
use cgraph_gen::QueryStream;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Ring backbone plus chords, so traversals cross machine boundaries
/// at every hop count (same shape the streaming-equivalence suite
/// uses).
fn chordal_pairs(n: u64) -> Vec<(u64, u64)> {
    let mut edges: Vec<(u64, u64)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    for v in (0..n).step_by(3) {
        edges.push((v, (v * 7 + 5) % n));
    }
    for v in (0..n).step_by(11) {
        edges.push(((v * 3) % n, v));
    }
    edges
}

fn chordal_graph(n: u64) -> EdgeList {
    chordal_pairs(n).into_iter().collect()
}

/// A repeat-heavy stream: sources drawn from a seeded Zipf(1.0) over a
/// small candidate set, k cycling over a few depths. Most queries are
/// re-asks of a hot (source, k) pair — cache and coalescer food.
fn zipf_stream(n_queries: usize, n_vertices: u64) -> Vec<KhopQuery> {
    let candidates: Vec<u64> = (0..16u64).map(|i| (i * 17 + 3) % n_vertices).collect();
    QueryStream::zipf(0x2EA1, 1.0, n_queries)
        .sources(&candidates)
        .into_iter()
        .enumerate()
        .map(|(i, s)| KhopQuery::single(i, s, (i % 3) as u32 + 2))
        .collect()
}

fn full_plane() -> QueryPlaneConfig {
    QueryPlaneConfig {
        cache_capacity_bytes: Some(4 << 20),
        coalesce: true,
        pack_locality: true,
        ..Default::default()
    }
}

/// Runs `queries` through a fresh service in closed-loop waves (so
/// earlier commits can serve later waves from the cache) and returns
/// each query's `(visited, per_level)` plus the final stats.
fn run_stream(
    engine: &Arc<DistributedEngine>,
    queries: &[KhopQuery],
    plane: QueryPlaneConfig,
) -> (HashMap<usize, (u64, Vec<u64>)>, ServiceStats) {
    let service = QueryService::start(
        Arc::clone(engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_plane: plane,
            ..Default::default()
        },
    );
    let mut got = HashMap::new();
    for wave in queries.chunks(32) {
        let tickets: Vec<_> =
            wave.iter().map(|q| (q.id, service.submit(q.clone()).expect("submit"))).collect();
        for (id, t) in tickets {
            let r = t.wait().expect("query failed");
            got.insert(id, (r.visited, r.per_level));
        }
    }
    let stats = service.stats();
    service.shutdown();
    (got, stats)
}

/// Cache + coalescing + locality packing on vs everything off: answers
/// must be bit-identical, and on the repeat-heavy stream the plane
/// must actually have fired (otherwise this test proves nothing).
fn check_plane_transparent(p: usize, asynchronous: bool) {
    let n = 120u64;
    let graph = chordal_graph(n);
    let config =
        if asynchronous { EngineConfig::new(p).asynchronous() } else { EngineConfig::new(p) };
    let engine = Arc::new(DistributedEngine::new(&graph, config));
    let queries = zipf_stream(200, n);

    let (off, off_stats) = run_stream(&engine, &queries, QueryPlaneConfig::default());
    let (on, on_stats) = run_stream(&engine, &queries, full_plane());

    assert_eq!(off.len(), queries.len());
    assert_eq!(on.len(), queries.len());
    for (id, exp) in &off {
        assert_eq!(
            on.get(id),
            Some(exp),
            "query {id} diverged with the query plane on (p={p}, async={asynchronous})"
        );
    }
    // The plane-off run must not have touched the cache at all…
    assert_eq!(off_stats.cache_hits + off_stats.cache_insertions, 0);
    assert_eq!(off_stats.cache_bytes, 0);
    // …and the plane-on run must have genuinely exercised it: a Zipf
    // stream of 200 queries over 16 hot sources × 3 depths repeats
    // constantly, so hits (or coalesced lanes) are guaranteed.
    assert!(
        on_stats.cache_hits + on_stats.coalesced_traversals > 0,
        "repeat-heavy stream produced no cache/coalescer activity: {on_stats:?}"
    );
    assert_eq!(on_stats.queries_completed, queries.len() as u64);
    assert_eq!(on_stats.queries_failed, 0);
}

#[test]
fn plane_is_transparent_p1_sync() {
    check_plane_transparent(1, false);
}

#[test]
fn plane_is_transparent_p2_sync() {
    check_plane_transparent(2, false);
}

#[test]
fn plane_is_transparent_p4_sync() {
    check_plane_transparent(4, false);
}

#[test]
fn plane_is_transparent_p1_async() {
    check_plane_transparent(1, true);
}

#[test]
fn plane_is_transparent_p2_async() {
    check_plane_transparent(2, true);
}

#[test]
fn plane_is_transparent_p4_async() {
    check_plane_transparent(4, true);
}

/// Intra-batch dedup is unconditional — no cache, no coalescer flag,
/// yet duplicate `(source, k)` submissions in one window share a lane
/// and still every ticket gets the full, correct answer.
#[test]
fn dedup_is_unconditional_and_lossless() {
    let n = 60u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let expect = khop_count(&engine, 7, 3);

    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig { max_batch_delay: Duration::from_millis(5), ..Default::default() },
    );
    let tickets: Vec<_> =
        (0..8).map(|i| service.submit(KhopQuery::single(i, 7, 3)).unwrap()).collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap().visited, expect);
    }
    let stats = service.stats();
    // All eight were admitted into one 5 ms window: one primary lane,
    // seven followers — even with the whole query plane disabled.
    assert_eq!(stats.coalesced_traversals, 7, "{stats:?}");
    assert_eq!(stats.cache_hits + stats.cache_insertions, 0);
    service.shutdown();
}

/// A repeat of a committed query is served from the cache: counted as
/// a hit, answered identically, with a zero-exec-time sample folded
/// into the stats rather than dropped.
#[test]
fn cache_hit_round_trip() {
    let n = 80u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let first = service.query(KhopQuery::single(0, 11, 4)).unwrap();
    let second = service.query(KhopQuery::single(1, 11, 4)).unwrap();
    assert_eq!(first.visited, second.visited);
    assert_eq!(first.per_level, second.per_level);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1, "{stats:?}");
    assert_eq!(stats.cache_insertions, 1);
    assert_eq!(stats.cache_entries, 1);
    assert!(stats.cache_bytes > 0);
    // The hit's zero-latency exec sample is a first-class data point.
    assert_eq!(stats.exec.len(), 2);
    assert_eq!(stats.exec.min(), Duration::ZERO);
    service.shutdown();
}

/// `invalidate_cache` bumps the graph epoch: every cached answer from
/// the old epoch is unreachable and the next ask re-executes.
#[test]
fn epoch_invalidation_forces_reexecution() {
    let n = 80u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let before = service.query(KhopQuery::single(0, 5, 3)).unwrap();
    assert_eq!(service.query(KhopQuery::single(1, 5, 3)).unwrap().visited, before.visited);
    assert_eq!(service.stats().cache_hits, 1);

    let old = service.graph_epoch();
    assert_eq!(service.invalidate_cache(), old + 1);
    assert_eq!(service.stats().cache_entries, 0, "old-epoch entries must be dropped");

    // Same graph, so the answer is unchanged — but it must come from a
    // fresh execution keyed to the new epoch, not a stale hit.
    let after = service.query(KhopQuery::single(2, 5, 3)).unwrap();
    assert_eq!(after.visited, before.visited);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1, "post-invalidation ask must miss: {stats:?}");
    assert_eq!(stats.cache_insertions, 2);
    service.shutdown();
}

/// A cache sized below the working set stays within its byte budget by
/// evicting deterministically — it never grows past capacity and never
/// serves a wrong answer while churning.
#[test]
fn tiny_cache_evicts_within_budget() {
    let n = 100u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let capacity = 2048usize;
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(capacity),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Two sweeps over more distinct keys than the budget holds.
    for round in 0..2 {
        for i in 0..40u64 {
            let id = (round * 40 + i) as usize;
            let r = service.query(KhopQuery::single(id, (i * 7) % n, 3)).unwrap();
            assert_eq!(r.visited, khop_count(&engine, (i * 7) % n, 3), "query {id}");
        }
    }
    let stats = service.stats();
    assert!(stats.cache_evictions > 0, "working set must overflow the budget: {stats:?}");
    assert!(
        stats.cache_bytes <= capacity as u64,
        "cache over budget: {} > {capacity}",
        stats.cache_bytes
    );
    service.shutdown();
}

/// A real mutation commit fences every pre-commit cache entry: the
/// old-epoch answers become unreachable, and the re-ask executes
/// against the committed snapshot instead of serving the stale hit.
#[test]
fn commit_fences_pre_commit_cache_entries() {
    let n = 80u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let before = service.query(KhopQuery::single(0, 5, 3)).unwrap();
    assert_eq!(before.epoch, 0);
    assert_eq!(service.query(KhopQuery::single(1, 5, 3)).unwrap().visited, before.visited);
    assert_eq!(service.stats().cache_hits, 1);

    // Sever 5's ring edge and commit: 5's 3-hop world changes shape.
    let batch: UpdateBatch = [EdgeUpdate::delete(5, 6)].into_iter().collect();
    service.apply_updates(batch).unwrap();
    assert_eq!(service.commit_epoch().unwrap(), 1);
    assert_eq!(service.stats().cache_entries, 0, "pre-commit entries must be unreachable");

    let mutated: EdgeList = chordal_pairs(n).into_iter().filter(|&pair| pair != (5, 6)).collect();
    let truth = DistributedEngine::new(&mutated, EngineConfig::new(2));
    let after = service.query(KhopQuery::single(2, 5, 3)).unwrap();
    assert_eq!(after.epoch, 1);
    assert_eq!(after.visited, khop_count(&truth, 5, 3), "re-ask must see the committed graph");
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1, "post-commit ask must miss, not hit: {stats:?}");
    assert_eq!(stats.cache_insertions, 2);
    service.shutdown();
}

/// Coalesced duplicates straddling a commit resolve together: every
/// follower gets the primary lane's answer, all labelled with the one
/// epoch the shared traversal actually executed at — and that answer
/// matches that epoch's graph, never a half-mutated hybrid.
#[test]
fn coalesced_queries_straddling_a_commit_share_one_epoch() {
    let n = 60u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_millis(5),
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                coalesce: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Eight duplicates admitted into one 5 ms window…
    let tickets: Vec<_> =
        (0..8).map(|i| service.submit(KhopQuery::single(i, 7, 3)).unwrap()).collect();
    // …and, while they sit queued, 7 is rewired and the epoch committed.
    let batch: UpdateBatch =
        [EdgeUpdate::insert(7, 31), EdgeUpdate::delete(7, 8)].into_iter().collect();
    service.apply_updates(batch).unwrap();
    assert_eq!(service.commit_epoch().unwrap(), 1);
    let results: Vec<QueryResult> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    let first = &results[0];
    for r in &results {
        assert_eq!(r.visited, first.visited, "coalesced lanes must agree");
        assert_eq!(r.per_level, first.per_level);
        assert_eq!(r.epoch, first.epoch, "coalesced lanes must share one epoch");
    }
    // Whichever side of the commit the shared traversal landed on, the
    // answer must be that epoch's truth.
    let mutated: EdgeList = chordal_pairs(n)
        .into_iter()
        .filter(|&pair| pair != (7, 8))
        .chain(std::iter::once((7, 31)))
        .collect();
    let truth_new = DistributedEngine::new(&mutated, EngineConfig::new(2));
    let expect = match first.epoch {
        0 => khop_count(&engine, 7, 3),
        1 => khop_count(&truth_new, 7, 3),
        e => panic!("impossible epoch {e}"),
    };
    assert_eq!(first.visited, expect, "epoch {} answer diverges", first.epoch);
    let stats = service.stats();
    assert_eq!(stats.coalesced_traversals, 7, "{stats:?}");
    service.shutdown();
}

/// The `cgraph_cache_*` and `cgraph_mutation_*` registry families must
/// equal the `ServiceStats` line exactly — with the query plane on and
/// off, and with a still-pending (uncommitted) tail of updates.
#[test]
fn mutation_counters_reconcile_with_registry() {
    use cgraph::obs::{parse_text, Obs};
    let n = 60u64;
    let graph = chordal_graph(n);
    for plane_on in [false, true] {
        let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
        let obs = Obs::shared();
        let plane = if plane_on { full_plane() } else { QueryPlaneConfig::default() };
        let service = QueryService::start(
            Arc::clone(&engine),
            ServiceConfig {
                max_batch_delay: Duration::from_micros(100),
                obs: Some(Arc::clone(&obs)),
                query_plane: plane,
                ..Default::default()
            },
        );
        for round in 0..2u64 {
            for i in 0..4 {
                service.query(KhopQuery::single((round * 4 + i) as usize, 7, 3)).unwrap();
            }
            let batch: UpdateBatch = [
                EdgeUpdate::insert(7, (20 + round) % n),
                EdgeUpdate::insert((30 + round) % n, 7),
                EdgeUpdate::delete(7, 8),
            ]
            .into_iter()
            .collect();
            service.apply_updates(batch).unwrap();
            service.commit_epoch().unwrap();
        }
        // Leave an uncommitted tail so the pending gauge is nonzero.
        let tail: UpdateBatch =
            [EdgeUpdate::insert(1, 40), EdgeUpdate::insert(2, 41)].into_iter().collect();
        service.apply_updates(tail).unwrap();
        let stats = service.stats();
        service.shutdown();
        assert_eq!(stats.updates_applied, 6, "only committed updates count");
        assert_eq!(stats.updates_inserted, 4);
        assert_eq!(stats.updates_deleted, 2);
        assert_eq!(stats.epoch_commits, 2);
        assert_eq!(stats.pending_updates, 2);

        let snap = parse_text(&obs.metrics.render_text()).expect("snapshot must parse");
        let tag = format!("plane_on={plane_on}");
        let c = |name: &str| snap.counter_family(name);
        assert_eq!(c("cgraph_mutation_updates_applied_total"), stats.updates_applied, "{tag}");
        assert_eq!(c("cgraph_mutation_edges_inserted_total"), stats.updates_inserted, "{tag}");
        assert_eq!(c("cgraph_mutation_edges_deleted_total"), stats.updates_deleted, "{tag}");
        assert_eq!(c("cgraph_mutation_commits_total"), stats.epoch_commits, "{tag}");
        assert_eq!(c("cgraph_mutation_folds_total"), stats.epoch_folds, "{tag}");
        assert_eq!(
            snap.gauges["cgraph_mutation_pending_updates"], stats.pending_updates as i64,
            "{tag}"
        );
        assert_eq!(
            snap.gauges["cgraph_mutation_delta_entries"], stats.delta_entries as i64,
            "{tag}"
        );
        assert_eq!(snap.gauges["cgraph_mutation_delta_bytes"], stats.delta_bytes as i64, "{tag}");
        assert_eq!(c("cgraph_cache_hits_total"), stats.cache_hits, "{tag}");
        assert_eq!(c("cgraph_cache_insertions_total"), stats.cache_insertions, "{tag}");
        assert_eq!(c("cgraph_cache_coalesced_total"), stats.coalesced_traversals, "{tag}");
        assert_eq!(snap.gauges["cgraph_cache_entries"], stats.cache_entries as i64, "{tag}");
        if plane_on {
            assert!(stats.cache_insertions > 0, "plane-on run must exercise the cache");
        } else {
            assert_eq!(stats.cache_hits + stats.cache_insertions, 0, "{tag}");
        }
    }
}

/// Locality packing under a saturated queue: many submitter threads,
/// queue deeper than one batch, answers identical to the engine's
/// ground truth for every query.
#[test]
fn locality_packing_under_saturation_is_lossless() {
    let n = 120u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(4)));
    let service = Arc::new(QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(200),
            query_plane: QueryPlaneConfig {
                pack_locality: true,
                locality_fairness: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    ));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                // Submit the whole slice first, then redeem: the queue
                // runs deeper than one 64-lane batch, which is the
                // regime where locality selection actually engages.
                let submitted: Vec<_> = (0..30)
                    .map(|i| {
                        let src = ((t * 31 + i) as u64 * 13) % 120;
                        let id = t * 100 + i;
                        (src, service.submit(KhopQuery::single(id, src, 3)).unwrap())
                    })
                    .collect();
                submitted
                    .into_iter()
                    .map(|(src, ticket)| (src, ticket.wait().unwrap().visited))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for h in handles {
        for (src, visited) in h.join().expect("submitter panicked") {
            assert_eq!(visited, khop_count(&engine, src, 3), "source {src}");
        }
    }
    let stats = service.stats();
    assert_eq!(stats.queries_failed, 0);
    assert_eq!(stats.queries_completed, 120);
    service.shutdown();
}
