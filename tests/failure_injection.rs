//! Failure-injection and robustness tests: what happens when a
//! machine panics, when inputs are degenerate, and when the system is
//! pushed past its sizing assumptions.

use cgraph::core::{EngineError, FaultInjection};
use cgraph::prelude::*;
use cgraph_comm::{Cluster, ClusterError, PersistentCluster};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn machine_panic_propagates_not_hangs() {
    // A panicking machine must surface as a panic in the driver, not a
    // deadlock (the other machine never reaches a barrier here).
    let result = std::panic::catch_unwind(|| {
        let cluster = Cluster::new(2);
        cluster.run::<(), (), _>(|h| {
            if h.id() == 0 {
                panic!("injected fault");
            }
            // Machine 1 does independent work and returns.
        });
    });
    assert!(result.is_err(), "driver must observe the machine panic");
}

#[test]
fn empty_graph_queries_are_safe() {
    let mut g = EdgeList::new();
    g.set_num_vertices(4); // vertices but no edges
    let e = DistributedEngine::new(&g, EngineConfig::new(2));
    assert_eq!(khop_count(&e, 0, 3), 1, "isolated source reaches only itself");
    let r =
        QueryScheduler::new(&e, SchedulerConfig::default()).execute(&[KhopQuery::single(0, 2, 5)]);
    assert_eq!(r[0].visited, 1);
    assert_eq!(r[0].per_level, vec![1]);
}

#[test]
fn single_vertex_graph() {
    let mut g = EdgeList::new();
    g.set_num_vertices(1);
    let e = DistributedEngine::new(&g, EngineConfig::new(1));
    assert_eq!(bfs_count(&e, 0), 1);
    let ranks = pagerank(&e, 3);
    assert_eq!(ranks.len(), 1);
}

#[test]
fn more_machines_than_vertices() {
    let g: EdgeList = [(0u64, 1u64), (1, 2)].into_iter().collect();
    // 8 machines, 3 vertices: most shards are empty ranges.
    let e = DistributedEngine::new(&g, EngineConfig::new(8));
    assert_eq!(bfs_count(&e, 0), 3);
    assert_eq!(khop_count(&e, 0, 1), 2);
    let labels = weakly_connected_components(&e);
    assert!(labels.iter().all(|&l| l == 0));
}

#[test]
fn self_loop_heavy_input_survives_ingestion() {
    let mut b = GraphBuilder::new();
    for v in 0..50u64 {
        b.add_pair(v, v); // all self loops
        b.add_pair(v, (v + 1) % 50);
    }
    let g = b.build().edges; // loops dropped
    assert_eq!(g.len(), 50);
    let e = DistributedEngine::new(&g, EngineConfig::new(3));
    assert_eq!(bfs_count(&e, 0), 50);
}

#[test]
fn zero_hop_batch_touches_nothing() {
    let g: EdgeList = (0..64u64).map(|v| (v, (v + 1) % 64)).collect();
    let e = DistributedEngine::new(&g, EngineConfig::new(2));
    let sources: Vec<u64> = (0..64).collect();
    let ks = vec![0u32; 64];
    let r = e.run_traversal_batch(&sources, &ks).unwrap();
    assert!(r.per_lane_visited.iter().all(|&v| v == 1), "{:?}", r.per_lane_visited);
}

#[test]
fn duplicate_sources_in_one_batch() {
    // The same source in multiple lanes must produce identical,
    // independent results (lanes never bleed into each other).
    let g: EdgeList = (0..32u64).map(|v| (v, (v + 1) % 32)).collect();
    let e = DistributedEngine::new(&g, EngineConfig::new(2));
    let sources = vec![5u64; 10];
    let ks: Vec<u32> = (1..=10).collect();
    let r = e.run_traversal_batch(&sources, &ks).unwrap();
    for (lane, &k) in ks.iter().enumerate() {
        assert_eq!(r.per_lane_visited[lane], k as u64 + 1, "lane {lane}");
    }
}

#[test]
fn memory_budget_of_zero_still_makes_progress() {
    let g: EdgeList = (0..100u64).map(|v| (v, (v + 1) % 100)).collect();
    let e = DistributedEngine::new(&g, EngineConfig::new(2));
    let s = QueryScheduler::new(
        &e,
        SchedulerConfig { memory_budget_bytes: Some(0), ..Default::default() },
    );
    assert_eq!(s.effective_lanes(), 1, "degrades to serial, never to zero");
    let r = s.execute(&[KhopQuery::single(0, 0, 3)]);
    assert_eq!(r[0].visited, 4);
}

#[test]
fn titan_empty_db_queries() {
    let db = cgraph::baselines::TitanDb::new();
    db.insert_edge(Edge::unweighted(0, 1));
    assert_eq!(db.khop(0, 5, "knows").visited, 2);
    assert_eq!(db.khop(7, 5, "knows").visited, 1, "unknown vertex is its own world");
}

#[test]
fn persistent_batch_panic_errors_and_cluster_survives() {
    // A machine dying inside a real engine batch on the persistent
    // cluster must come back as an error — and the *same* cluster must
    // serve the next batch correctly.
    let g: EdgeList = (0..48u64).map(|v| (v, (v + 1) % 48)).collect();
    let e = DistributedEngine::new(&g, EngineConfig::new(3));
    let cluster = PersistentCluster::new(3);

    let boom: &(dyn Fn(usize) + Sync) = &|machine| {
        if machine == 2 {
            panic!("injected batch fault");
        }
    };
    let err = e
        .run_traversal_batch_on_hooked(&cluster, &[0, 24], &[3, 3], Some(boom))
        .expect_err("faulted batch must error");
    match err {
        EngineError::Cluster(ClusterError::MachinePanicked { machine, message }) => {
            assert_eq!(machine, 2, "root cause, not a poison-cascade victim");
            assert!(message.contains("injected batch fault"), "{message}");
        }
        other => panic!("expected MachinePanicked, got {other:?}"),
    }

    let br = e
        .run_traversal_batch_on(&cluster, &[0, 24], &[3, 3])
        .expect("cluster must survive a failed batch");
    assert_eq!(br.per_lane_visited, vec![4, 4]);
    cluster.shutdown();
}

#[test]
fn service_machine_panic_fails_inflight_then_shuts_down_clean() {
    // Every in-flight query of a dying batch gets an error (nobody
    // blocks forever on a ticket), the service keeps accepting work,
    // and shutdown afterwards joins every parked thread.
    let g: EdgeList = (0..60u64).map(|v| (v, (v + 1) % 60)).collect();
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));

    // A never-healing crash armed only for the first batch (chaos job
    // 0): that batch exhausts recoveries and retries; later batches
    // run outside the armed window and succeed.
    let plan = FaultPlan::new(13).crash(1, 1).arm_jobs(0..1);
    let service = Arc::new(QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 1,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            ..Default::default()
        },
    ));

    // Concurrent submitters during the faulty phase: each must get a
    // definite answer — result or BatchFailed — never a hang.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.query(KhopQuery::single(i, i as u64, 3)))
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let failed = outcomes.iter().filter(|o| o.is_err()).count();
    assert!(failed >= 1, "at least the first batch must have died");
    for o in &outcomes {
        if let Err(e) = o {
            assert!(
                matches!(e, ServiceError::BatchFailed(msg) if msg.contains("crashed at superstep")),
                "unexpected error {e:?}"
            );
        }
    }

    // The hook is spent: the service must answer correctly again.
    let r = service.query(KhopQuery::single(100, 0, 4)).expect("service must heal");
    assert_eq!(r.visited, 5);

    let stats = service.stats();
    assert_eq!(stats.queries_failed, failed as u64);
    assert_eq!(stats.queries_completed, (outcomes.len() - failed) as u64 + 1);

    // Shutdown must return (joins dispatcher + machine threads): a
    // deadlocked parked thread would hang the test harness here.
    service.shutdown();
    assert!(matches!(service.submit(KhopQuery::single(0, 0, 1)), Err(ServiceError::ShutDown)));
}

#[test]
fn service_submit_after_shutdown_is_an_error_not_a_hang() {
    let g: EdgeList = (0..10u64).map(|v| (v, (v + 1) % 10)).collect();
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(1)));
    let service = QueryService::start(engine, ServiceConfig::default());
    // Queries admitted before shutdown are still answered (drained).
    let ticket = service.submit(KhopQuery::single(7, 0, 2)).unwrap();
    service.shutdown();
    assert_eq!(ticket.wait().unwrap().visited, 3);
    assert_eq!(service.submit(KhopQuery::single(8, 0, 2)).unwrap_err(), ServiceError::ShutDown);
    service.shutdown(); // idempotent
}

#[test]
fn persistent_submit_after_shutdown_errors() {
    let cluster = PersistentCluster::new(2);
    cluster.shutdown();
    let err = cluster.submit::<(), (), _>(|_h| ()).expect_err("submit after shutdown must error");
    assert!(matches!(err, ClusterError::ShutDown));
}

#[test]
fn crash_at_every_superstep_sweep() {
    // Exhaustive crash-point sweep on a tiny ring: for p ∈ {2, 4} in
    // both sync and async mode, kill one machine at every superstep a
    // batch can reach; after recovery the result must equal the
    // fault-free baseline every single time.
    let g: EdgeList = (0..24u64).map(|v| (v, (v + 1) % 24)).collect();
    let sources = [0u64, 12];
    let ks = [8u32, 8];
    for p in [2usize, 4] {
        for sync in [true, false] {
            let cfg = if sync { EngineConfig::new(p) } else { EngineConfig::new(p).asynchronous() };
            let e = DistributedEngine::new(&g, cfg);
            let baseline = e.run_traversal_batch(&sources, &ks).unwrap();
            let cluster = PersistentCluster::new(p);
            let rc = RecoveryConfig { checkpoint_interval: 3, max_recoveries: 3 };
            // Supersteps run 0..=8 (boundary 9 observes completion);
            // sweep one past the end to cover the never-fires case.
            for s in 0..=9u32 {
                let m = s as usize % p;
                let plan = FaultPlan::new(1000 + u64::from(s)).crash(m, s).heal_after(1);
                let fault = FaultInjection { plan: &plan, job: u64::from(s), first_attempt: 0 };
                let (br, report) = e
                    .run_traversal_batch_recoverable(&cluster, &sources, &ks, &rc, Some(fault))
                    .unwrap_or_else(|err| {
                        panic!("p={p} sync={sync} crash {m}@{s}: unrecovered {err}")
                    });
                let tag = format!("p={p} sync={sync} crash {m}@{s}");
                assert_eq!(br.per_lane_visited, baseline.per_lane_visited, "{tag}");
                assert_eq!(br.per_level, baseline.per_level, "{tag}");
                if sync && report.recoveries > 0 {
                    assert_eq!(report.full_rollbacks, 0, "{tag}: sync crash must replay confined");
                }
            }
            cluster.shutdown();
        }
    }
}

#[test]
fn crash_sweep_at_128_lane_width() {
    // The superstep crash sweep again, but on a two-word (W = 128)
    // batch: recovery snapshots, sender logs, and live-lane masks all
    // carry multi-word lane state, and every crash point must still
    // reproduce the fault-free baseline bit-for-bit. Fixed seed so CI
    // failures replay exactly.
    let g: EdgeList = (0..96u64).map(|v| (v, (v + 1) % 96)).collect();
    let sources: Vec<u64> = (0..128).map(|i| (i * 7) % 96).collect();
    let ks: Vec<u32> = (0..128).map(|i| 2 + (i % 5) as u32).collect();
    let p = 4;
    let e = DistributedEngine::new(&g, EngineConfig::new(p));
    let baseline = e.run_traversal_batch(&sources, &ks).unwrap();
    let cluster = PersistentCluster::new(p);
    let rc = RecoveryConfig { checkpoint_interval: 2, max_recoveries: 3 };
    for s in 0..=7u32 {
        let m = s as usize % p;
        let plan = FaultPlan::new(4242 + u64::from(s)).crash(m, s).heal_after(1);
        let fault = FaultInjection { plan: &plan, job: u64::from(s), first_attempt: 0 };
        let (br, _) = e
            .run_traversal_batch_recoverable(&cluster, &sources, &ks, &rc, Some(fault))
            .unwrap_or_else(|err| panic!("W=128 crash {m}@{s}: unrecovered {err}"));
        assert_eq!(br.per_lane_visited, baseline.per_lane_visited, "W=128 crash {m}@{s}");
        assert_eq!(br.per_level, baseline.per_level, "W=128 crash {m}@{s}");
    }
    cluster.shutdown();
}

#[test]
fn chaos_with_cache_recovers_and_stays_consistent() {
    // The chaos plan through the live service with the full query
    // plane on: a healing crash is absorbed by recovery (no query
    // fails), and a repeat-heavy stream straddling the crash keeps
    // answering the fault-free truth — only committed batches may
    // populate the cache, so the dying attempt leaks nothing.
    let g: EdgeList = (0..48u64).map(|v| (v, (v + 1) % 48)).collect();
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));
    let plan = FaultPlan::new(77).crash(1, 2).heal_after(1);
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(200),
            fault_plan: Some(plan),
            max_retries: 2,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 2 },
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                coalesce: true,
                pack_locality: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Three hot sources re-asked round after round across the crash.
    for round in 0..6 {
        let tickets: Vec<_> = (0..6)
            .map(|i| {
                let src = [0u64, 16, 32][i % 3];
                service.submit(KhopQuery::single(round * 10 + i, src, 6)).unwrap()
            })
            .collect();
        for t in tickets {
            let r = t.wait().expect("healing crash must be absorbed by recovery");
            // 6 hops along a directed 48-ring: the source plus six.
            assert_eq!(r.visited, 7);
        }
    }
    let stats = service.stats();
    assert_eq!(stats.queries_failed, 0, "{stats:?}");
    assert_eq!(stats.queries_completed, 36);
    assert!(stats.cache_hits > 0, "repeat stream must hit the cache: {stats:?}");
    service.shutdown();
}

#[test]
fn crash_after_epoch_commit_restores_the_committed_snapshot() {
    // A never-healing crash armed for the first batch dispatched after
    // an epoch commit: the dying batch runs against the freshly
    // committed delta overlay. Its queries fail, it must leak nothing
    // into the cache, and — the recovery contract — the service keeps
    // serving the *committed* epoch's snapshot afterwards: answers
    // reflect the mutation, the epoch label is intact, and the next
    // commit still advances cleanly.
    let g: EdgeList = (0..48u64).map(|v| (v, (v + 1) % 48)).collect();
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));
    let plan = FaultPlan::new(29).crash(1, 1).arm_jobs(0..1);
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 1,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                coalesce: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Rewire the ring before any batch dispatches: 0 now jumps to 24
    // and loses its step to 1. Chaos job 0 is the first batch *after*
    // this commit, so the armed crash hits the overlaid epoch.
    let batch: UpdateBatch =
        [EdgeUpdate::insert(0, 24), EdgeUpdate::delete(0, 1)].into_iter().collect();
    service.apply_updates(batch).unwrap();
    assert_eq!(service.commit_epoch().unwrap(), 1);

    let tickets: Vec<_> =
        (0..4).map(|i| service.submit(KhopQuery::single(i, 0, 6)).unwrap()).collect();
    let first_ok: Vec<bool> = tickets.into_iter().map(|t| t.wait().is_ok()).collect();
    assert!(first_ok.iter().any(|&ok| !ok), "the armed batch must have died");
    let mid = service.stats();
    if first_ok.iter().all(|&ok| !ok) {
        assert_eq!(mid.cache_insertions, 0, "a dying batch leaked into the cache");
        assert_eq!(mid.cache_entries, 0);
    }

    // Armed window spent: the snapshot served is epoch 1's, exactly.
    let r = service.query(KhopQuery::single(100, 0, 6)).expect("service must heal");
    assert_eq!(r.epoch, 1);
    assert_eq!(r.visited, 7, "0 walks the 24..29 detour, not the severed 1..6 arc");
    assert_eq!(r.per_level, vec![1, 1, 1, 1, 1, 1, 1]);
    let r = service.query(KhopQuery::single(101, 1, 2)).unwrap();
    assert_eq!((r.epoch, r.visited), (1, 3), "untouched vertices keep their old reach");
    // And the commit protocol is unharmed by the crash.
    assert_eq!(service.commit_epoch().unwrap(), 2);
    service.shutdown();
}

#[test]
fn healing_crash_during_delta_overlay_batches_is_absorbed() {
    // Healing crashes armed across several batches while every batch
    // scans base + live delta overlay (fold threshold never reached):
    // in-batch recovery replays the overlay-aware scan, so no query
    // fails and every answer tracks the mutated snapshot of its epoch.
    let g: EdgeList = (0..48u64).map(|v| (v, (v + 1) % 48)).collect();
    let engine = Arc::new(DistributedEngine::new(&g, EngineConfig::new(2)));
    let plan = FaultPlan::new(53).crash(1, 2).heal_after(1).arm_jobs(0..32);
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(200),
            fault_plan: Some(plan),
            max_retries: 2,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 2 },
            mutation: MutationConfig { fold_threshold: usize::MAX, ..Default::default() },
            ..Default::default()
        },
    );
    // Each round splices one more shortcut into the ring and commits;
    // the overlay grows monotonically and is never folded away.
    for round in 0..3u64 {
        let hub = 12 * (round + 1);
        let batch: UpdateBatch = [EdgeUpdate::insert(0, hub)].into_iter().collect();
        service.apply_updates(batch).unwrap();
        assert_eq!(service.commit_epoch().unwrap(), round + 1);
        let r = service
            .query(KhopQuery::single(round as usize, 0, 1))
            .expect("healing crash must be absorbed by recovery");
        assert_eq!(r.epoch, round + 1);
        // 0's out-neighbours: the ring step plus one hub per committed
        // round (hubs are distinct and never equal to 1).
        assert_eq!(r.visited, 2 + (round + 1), "round {round}");
    }
    let stats = service.stats();
    assert_eq!(stats.queries_failed, 0, "{stats:?}");
    assert_eq!(stats.epoch_commits, 3);
    assert_eq!(stats.epoch_folds, 0, "overlay must stay live for this test");
    assert!(stats.delta_entries > 0);
    service.shutdown();
}

#[test]
fn async_mode_on_disconnected_graph_terminates() {
    // Quiescence detection must fire even when a query dies instantly
    // on an isolated source.
    let mut g: EdgeList = [(0u64, 1u64)].into_iter().collect();
    g.set_num_vertices(10);
    let e = DistributedEngine::new(&g, EngineConfig::new(3).asynchronous());
    let r = e.run_single_queue(&[7], 5, cgraph::core::traverse::ValueMode::TwoLevel);
    assert_eq!(r.visited, 1);
}
