//! End-to-end pipeline test: generate → ingest → partition → engine →
//! concurrent queries → validate against an independent reference BFS.

use cgraph::prelude::*;
use std::collections::VecDeque;

/// Reference sequential k-hop over a CSR (independent of all engine
/// code paths).
fn reference_khop(csr: &Csr, source: VertexId, k: u32) -> u64 {
    let n = csr.num_vertices() as usize;
    let mut seen = vec![false; n];
    let mut q = VecDeque::new();
    seen[source as usize] = true;
    q.push_back((source, 0u32));
    let mut count = 1u64;
    while let Some((v, d)) = q.pop_front() {
        if d >= k {
            continue;
        }
        for &t in csr.neighbors(v) {
            if !seen[t as usize] {
                seen[t as usize] = true;
                count += 1;
                q.push_back((t, d + 1));
            }
        }
    }
    count
}

fn test_graph(seed: u64) -> EdgeList {
    let raw = cgraph::gen::graph500(10, 10, seed);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&raw);
    b.build().edges
}

#[test]
fn concurrent_queries_match_reference() {
    let edges = test_graph(11);
    let csr = Csr::from_edges(edges.num_vertices(), edges.edges());
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    let queries: Vec<KhopQuery> =
        (0..100).map(|i| KhopQuery::single(i, (i as u64 * 13) % edges.num_vertices(), 3)).collect();
    let results = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);
    for (i, r) in results.iter().enumerate() {
        let expect = reference_khop(&csr, (i as u64 * 13) % edges.num_vertices(), 3);
        assert_eq!(r.visited, expect, "query {i}");
    }
}

#[test]
fn per_level_counts_sum_to_visited() {
    let edges = test_graph(12);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
    let queries: Vec<KhopQuery> = (0..32).map(|i| KhopQuery::single(i, i as u64 * 3, 4)).collect();
    let results = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);
    for r in &results {
        assert_eq!(r.per_level.iter().sum::<u64>(), r.visited, "query {}", r.id);
        assert!(r.depth() <= 4);
    }
}

#[test]
fn full_bfs_equals_unbounded_khop() {
    let edges = test_graph(13);
    let csr = Csr::from_edges(edges.num_vertices(), edges.edges());
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    for src in [0u64, 17, 200] {
        assert_eq!(bfs_count(&engine, src), reference_khop(&csr, src, u32::MAX));
    }
}

#[test]
fn reingested_graph_preserves_query_results() {
    // Write to disk, read back, rebuild engine: results identical.
    let edges = test_graph(14);
    let path = std::env::temp_dir().join(format!("cgraph-e2e-{}.cg", std::process::id()));
    cgraph::gen::io::write_binary(&path, &edges).unwrap();
    let reread = cgraph::gen::io::read_binary(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let e1 = DistributedEngine::new(&edges, EngineConfig::new(2));
    let e2 = DistributedEngine::new(&reread, EngineConfig::new(2));
    for src in [1u64, 99] {
        assert_eq!(khop_count(&e1, src, 3), khop_count(&e2, src, 3));
    }
}

#[test]
fn analytics_stack_runs_on_one_engine() {
    // One engine instance serves traversals, GAS and PCM programs.
    let edges = test_graph(15);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));

    let ranks = pagerank(&engine, 5);
    assert_eq!(ranks.len(), edges.num_vertices() as usize);
    assert!(ranks.iter().all(|r| *r >= 0.15 - 1e-9));

    let labels = weakly_connected_components(&engine);
    assert_eq!(labels.len(), edges.num_vertices() as usize);

    let d = sssp(&engine, 0);
    assert_eq!(d[0], 0.0);

    let hp = hop_plot(&engine, 16, 3);
    assert!(hp.diameter() >= 1);
}
