//! Index tier semantics: the boundary reachability index may change
//! *whether* a traversal executes and *what the wire carries* — never
//! an answer.
//!
//! The suite drives the same seeded streams through a live
//! [`QueryService`] with the index off and on, across partition
//! counts, execution modes and batch widths; under an armed crash
//! plan; and straddling a mutation commit (where a stale index must
//! be fenced, never consulted). A deterministic engine-level case
//! pins down that superstep pruning really suppresses remote
//! deliveries on a topology where no-op deliveries exist, and a
//! property test replays random graphs through the pruned and
//! unpruned batch paths demanding bit-identical results (pinned
//! corpus: `proptest-regressions/index_tier.txt`).
//!
//! It also holds the INDEXING.md catalogue contract: the doc's
//! backtick-quoted `cgraph_index_*` names equal the registered metric
//! families exactly, in both directions.

use cgraph::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Ring backbone plus chords, so traversals cross machine boundaries
/// at every hop count (the streaming-equivalence suite's shape).
fn chordal_pairs(n: u64) -> Vec<(u64, u64)> {
    let mut edges: Vec<(u64, u64)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    for v in (0..n).step_by(3) {
        edges.push((v, (v * 7 + 5) % n));
    }
    for v in (0..n).step_by(11) {
        edges.push(((v * 3) % n, v));
    }
    edges
}

fn chordal_graph(n: u64) -> EdgeList {
    chordal_pairs(n).into_iter().collect()
}

/// The index builder every test uses: enough hops that sketches on
/// the small test graphs complete, so indexed sources answer any `k`.
fn builder() -> Arc<dyn IndexBuilder> {
    Arc::new(BoundaryIndexBuilder::new(IndexConfig { hops: 16, ..Default::default() }))
}

/// A stream mixing sketch-answerable sources (when the partitioning
/// yields any) with arbitrary interior sources, across small and deep
/// hop counts — both index fast-path food and traversal fallbacks.
fn mixed_stream(n: u64, answerable: &[VertexId], n_queries: usize) -> Vec<KhopQuery> {
    (0..n_queries)
        .map(|i| {
            let k = [2u32, 3, 4, 16][i % 4];
            let src = if i % 2 == 0 && !answerable.is_empty() {
                answerable[(i / 2) % answerable.len()]
            } else {
                (i as u64 * 13 + 5) % n
            };
            KhopQuery::single(i, src, k)
        })
        .collect()
}

/// Runs `queries` through a fresh service in closed-loop waves and
/// returns each query's `(visited, per_level)` plus the final stats.
fn run_stream(
    engine: &Arc<DistributedEngine>,
    queries: &[KhopQuery],
    config: ServiceConfig,
) -> (HashMap<usize, (u64, Vec<u64>)>, ServiceStats) {
    let service = QueryService::start(Arc::clone(engine), config);
    let mut got = HashMap::new();
    for wave in queries.chunks(32) {
        let tickets: Vec<_> =
            wave.iter().map(|q| (q.id, service.submit(q.clone()).expect("submit"))).collect();
        for (id, t) in tickets {
            let r = t.wait().expect("query failed");
            got.insert(id, (r.visited, r.per_level));
        }
    }
    let stats = service.stats();
    service.shutdown();
    (got, stats)
}

/// Index-assisted serving is bit-identical to index-off serving for
/// one (partition count, execution mode, batch width) cell.
fn check_index_transparent(p: usize, asynchronous: bool, width: usize) {
    let n = 120u64;
    let graph = chordal_graph(n);
    let config =
        if asynchronous { EngineConfig::new(p).asynchronous() } else { EngineConfig::new(p) };
    let engine = Arc::new(DistributedEngine::new(&graph, config));

    // What the service's builder will build, built here too, so the
    // stream provably contains sketch-answerable sources (when the
    // partitioning yields a boundary at all).
    let tier = BoundaryIndexBuilder::new(IndexConfig { hops: 16, ..Default::default() })
        .build_tier(&engine)
        .expect("index build");
    let answerable: Vec<VertexId> =
        tier.sources().iter().copied().filter(|&s| tier.answer(s, 3).is_some()).collect();
    let queries = mixed_stream(n, &answerable, 100);

    let base = ServiceConfig {
        scheduler: SchedulerConfig { batch_lanes: width, ..Default::default() },
        max_batch_delay: Duration::from_micros(100),
        ..Default::default()
    };
    let (off, off_stats) = run_stream(&engine, &queries, base.clone());
    let (on, on_stats) =
        run_stream(&engine, &queries, ServiceConfig { index: Some(builder()), ..base });

    assert_eq!(off.len(), queries.len());
    assert_eq!(on.len(), queries.len());
    for (id, exp) in &off {
        assert_eq!(
            on.get(id),
            Some(exp),
            "query {id} diverged with the index on (p={p}, async={asynchronous}, W={width})"
        );
    }
    assert_eq!(off_stats.index_builds, 0, "index off must not build");
    assert_eq!(off_stats.index_only_answers, 0);
    assert_eq!(on_stats.index_builds, 1, "index on must build exactly once");
    assert_eq!(on_stats.index_sources as usize, tier.num_sources());
    if !answerable.is_empty() {
        assert!(
            on_stats.index_only_answers > 0,
            "answerable sources present but no index-only answers: {on_stats:?}"
        );
    }
    assert_eq!(on_stats.queries_completed, queries.len() as u64);
    assert_eq!(on_stats.queries_failed, 0);
}

#[test]
fn index_is_transparent_p1_sync_w64() {
    check_index_transparent(1, false, 64);
}

#[test]
fn index_is_transparent_p2_sync_w64() {
    check_index_transparent(2, false, 64);
}

#[test]
fn index_is_transparent_p4_sync_w64() {
    check_index_transparent(4, false, 64);
}

#[test]
fn index_is_transparent_p2_async_w64() {
    check_index_transparent(2, true, 64);
}

#[test]
fn index_is_transparent_p4_async_w64() {
    check_index_transparent(4, true, 64);
}

#[test]
fn index_is_transparent_p1_sync_w512() {
    check_index_transparent(1, false, 512);
}

#[test]
fn index_is_transparent_p2_sync_w512() {
    check_index_transparent(2, false, 512);
}

#[test]
fn index_is_transparent_p4_async_w512() {
    check_index_transparent(4, true, 512);
}

/// The index under chaos: an armed crash plan forces a recovery on
/// the first traversal batch, and every answer — index-only or
/// recovered — still matches the engine's fault-free ground truth.
#[test]
fn index_survives_armed_crash_recovery() {
    let n = 60u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(3)));
    let plan = FaultPlan::new(7).crash(1, 1).heal_after(1).arm_jobs(0..1);
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            fault_plan: Some(plan),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 3 },
            index: Some(builder()),
            ..Default::default()
        },
    );
    // Interior sources: these must reach the (crashing) traversal
    // path, not be absorbed by the index fast path.
    for i in 0..6u64 {
        let src = (i * 17 + 1) % n;
        let r = service.query(KhopQuery::single(i as usize, src, 4)).expect("chaos heals");
        assert_eq!(r.visited, khop_count(&engine, src, 4), "source {src}");
    }
    let stats = service.stats();
    service.shutdown();
    assert!(stats.recoveries > 0, "the scripted crash must force a recovery: {stats:?}");
    assert_eq!(stats.index_builds, 1);
    assert_eq!(stats.queries_failed, 0);
}

/// A mutation commit fences the stale index: the post-commit re-ask
/// must see the committed graph (a stale sketch would happily return
/// the old answer), and the commit must trigger a rebuild.
#[test]
fn commit_fences_stale_index_and_rebuilds() {
    let n = 80u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let tier = BoundaryIndexBuilder::new(IndexConfig { hops: 16, ..Default::default() })
        .build_tier(&engine)
        .expect("index build");
    // A sketch-answerable source whose 3-hop world we then mutate.
    let hot = *tier
        .sources()
        .iter()
        .find(|&&s| tier.answer(s, 3).is_some())
        .expect("p=2 chordal graph has a boundary");
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig { index: Some(builder()), ..Default::default() },
    );

    let before = service.query(KhopQuery::single(0, hot, 3)).unwrap();
    assert_eq!(before.epoch, 0);
    assert_eq!(service.stats().index_only_answers, 1, "epoch-0 ask must be index-only");

    // Sever `hot`'s ring edge and graft a chord, then commit.
    let batch: UpdateBatch =
        [EdgeUpdate::delete(hot, (hot + 1) % n), EdgeUpdate::insert(hot, (hot + 40) % n)]
            .into_iter()
            .collect();
    service.apply_updates(batch).unwrap();
    assert_eq!(service.commit_epoch().unwrap(), 1);

    let mutated: EdgeList = chordal_pairs(n)
        .into_iter()
        .filter(|&pair| pair != (hot, (hot + 1) % n))
        .chain(std::iter::once((hot, (hot + 40) % n)))
        .collect();
    let truth = DistributedEngine::new(&mutated, EngineConfig::new(2));
    let after = service.query(KhopQuery::single(1, hot, 3)).unwrap();
    assert_eq!(after.epoch, 1);
    assert_eq!(
        after.visited,
        khop_count(&truth, hot, 3),
        "post-commit ask must see the committed graph, not a stale sketch"
    );
    let stats = service.stats();
    assert_eq!(stats.index_builds, 2, "the commit must rebuild the index: {stats:?}");
    service.shutdown();
}

/// Queries straddling a commit resolve against exactly one epoch's
/// graph — whichever side of the fence each landed on — with the
/// index tier in play on both sides.
#[test]
fn straddling_queries_resolve_against_one_epoch_each() {
    let n = 60u64;
    let graph = chordal_graph(n);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_millis(5),
            index: Some(builder()),
            ..Default::default()
        },
    );
    // Submit a window of queries on source 7, rewire 7 while they sit
    // queued, and commit.
    let tickets: Vec<_> =
        (0..8).map(|i| service.submit(KhopQuery::single(i, 7, 3)).unwrap()).collect();
    let batch: UpdateBatch =
        [EdgeUpdate::insert(7, 31), EdgeUpdate::delete(7, 8)].into_iter().collect();
    service.apply_updates(batch).unwrap();
    assert_eq!(service.commit_epoch().unwrap(), 1);
    let results: Vec<QueryResult> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();

    let mutated: EdgeList = chordal_pairs(n)
        .into_iter()
        .filter(|&pair| pair != (7, 8))
        .chain(std::iter::once((7, 31)))
        .collect();
    let truth_new = DistributedEngine::new(&mutated, EngineConfig::new(2));
    let expect_old = khop_count(&engine, 7, 3);
    let expect_new = khop_count(&truth_new, 7, 3);
    for r in &results {
        let expect = match r.epoch {
            0 => expect_old,
            1 => expect_new,
            e => panic!("impossible epoch {e}"),
        };
        assert_eq!(r.visited, expect, "epoch {} answer diverges", r.epoch);
    }
    let stats = service.stats();
    assert!(stats.index_builds >= 2, "initial build plus the commit rebuild: {stats:?}");
    service.shutdown();
}

/// A topology where no-op deliveries provably exist: a directed path
/// sliced across 8 partitions, plus a back-edge from every vertex to
/// vertex 0. Once partition 0's only gain (level ≤ 2) is behind the
/// frontier, every later back-delivery into it is a state no-op — the
/// prune plan must suppress remote ones, and the pruned batch must
/// still be bit-identical to the unpruned run.
#[test]
fn pruning_suppresses_noop_deliveries_on_a_path() {
    let n = 64u64;
    let mut pairs: Vec<(u64, u64)> = (0..n - 1).map(|v| (v, v + 1)).collect();
    pairs.extend((1..n).map(|v| (v, 0)));
    let graph: EdgeList = pairs.into_iter().collect();
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(8)));
    let tier = BoundaryIndexBuilder::new(IndexConfig { hops: 16, ..Default::default() })
        .build_tier(&engine)
        .expect("index build");

    // An indexed source early on the path, run deeper than partition
    // 0 keeps gaining.
    let src = *tier.sources().iter().min().expect("path graph has boundary vertices");
    let ks = [12u32];
    let plain = engine.run_traversal_batch(&[src], &ks).expect("plain batch");
    let plan = tier.prune_plan(&[src]).expect("indexed source must yield a plan");
    let pruned = engine.run_traversal_batch_pruned(&[src], &ks, Some(&plan)).expect("pruned batch");

    assert_eq!(pruned.per_lane_visited, plain.per_lane_visited);
    assert_eq!(pruned.per_level, plain.per_level);
    assert_eq!(pruned.scans, plain.scans, "sound pruning must not change scan work");
    assert_eq!(plain.pruned_sends, 0, "unplanned batch must not prune");
    assert!(pruned.pruned_sends > 0, "back-edges into partition 0 must be suppressed: {pruned:?}");
}

/// INDEXING.md promises a complete metric catalogue: its
/// backtick-quoted `cgraph_index_*` names must equal the registered
/// families exactly, in both directions.
#[test]
fn indexing_doc_catalogues_every_index_metric() {
    use cgraph::obs::Obs;
    let graph = chordal_graph(40);
    let engine = Arc::new(DistributedEngine::new(&graph, EngineConfig::new(2)));
    let obs = Obs::shared();
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig { index: Some(builder()), obs: Some(Arc::clone(&obs)), ..Default::default() },
    );
    service.query(KhopQuery::single(0, 1, 3)).unwrap();
    service.shutdown();

    let registered: std::collections::BTreeSet<String> =
        obs.metrics.names().into_iter().filter(|n| n.starts_with("cgraph_index_")).collect();
    assert!(!registered.is_empty(), "index service must register cgraph_index_* families");

    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/INDEXING.md"))
        .expect("INDEXING.md must exist at the repo root");
    let documented: std::collections::BTreeSet<String> = doc
        .split('`')
        .skip(1)
        .step_by(2) // every other fragment is inside backticks
        .filter(|tok| {
            tok.starts_with("cgraph_index_")
                && tok.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
        .map(str::to_string)
        .collect();

    let missing: Vec<_> = registered.difference(&documented).collect();
    assert!(missing.is_empty(), "metrics registered but not in INDEXING.md: {missing:?}");
    let stale: Vec<_> = documented.difference(&registered).collect();
    assert!(stale.is_empty(), "metrics documented but never registered: {stale:?}");
}

/// Strategy: a random directed graph as (num_vertices, edge pairs).
fn graph_strategy(max_v: u64, max_e: usize) -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    (2..max_v).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..max_e);
        (Just(n), edges)
    })
}

fn build_list(n: u64, pairs: &[(u64, u64)]) -> EdgeList {
    let mut l = EdgeList::with_num_vertices(n);
    for &(s, t) in pairs {
        if s != t {
            l.push_pair(s, t);
        }
    }
    l.set_num_vertices(n);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&l);
    b.build().edges
}

fn trim(mut levels: Vec<u64>) -> Vec<u64> {
    while levels.last() == Some(&0) {
        levels.pop();
    }
    levels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a random graph, for random query batches: the pruned batch
    /// path is bit-identical to the unpruned one, and every query the
    /// index volunteers an answer for agrees with the traversal — the
    /// full index-tier soundness contract in one property.
    #[test]
    fn index_pruning_never_changes_answers(
        (n, pairs) in graph_strategy(40, 120),
        p in 1usize..5,
        hops in 1u32..5,
        queries in prop::collection::vec((0u64..40, 0u32..7), 1..9),
    ) {
        let list = build_list(n, &pairs);
        let engine = Arc::new(DistributedEngine::new(&list, EngineConfig::new(p)));
        let tier = BoundaryIndexBuilder::new(IndexConfig { hops, max_sources: 16 })
            .build_tier(&engine)
            .expect("index build");

        let sources: Vec<VertexId> = queries.iter().map(|&(s, _)| s % n).collect();
        let ks: Vec<u32> = queries.iter().map(|&(_, k)| k).collect();
        let plain = engine.run_traversal_batch(&sources, &ks).expect("plain batch");
        let plan = tier.prune_plan(&sources);
        let pruned = engine
            .run_traversal_batch_pruned(&sources, &ks, plan.as_ref())
            .expect("pruned batch");

        prop_assert_eq!(&pruned.per_lane_visited, &plain.per_lane_visited);
        prop_assert_eq!(&pruned.per_level, &plain.per_level);
        prop_assert_eq!(pruned.scans, plain.scans);

        for (lane, (&s, &k)) in sources.iter().zip(&ks).enumerate() {
            if let Some(ans) = tier.answer(s, k) {
                prop_assert_eq!(
                    ans.visited, plain.per_lane_visited[lane],
                    "index answer diverges for source {} k {}", s, k
                );
                let column: Vec<u64> =
                    plain.per_level.iter().map(|row| row[lane]).collect();
                prop_assert_eq!(ans.per_level, trim(column));
            }
        }
    }
}
