//! Property-based tests over the core invariants, driven by random
//! graphs and query parameters.

use cgraph::core::FaultInjection;
use cgraph::prelude::*;
use cgraph_comm::PersistentCluster;
use cgraph_core::RangePartition;
use cgraph_graph::types::VertexRange;
use cgraph_graph::{Bitmap, ConsolidationPolicy, EdgeSetGraph};
use proptest::prelude::*;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Strategy: a random directed graph as (num_vertices, edge pairs).
fn graph_strategy(max_v: u64, max_e: usize) -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    (2..max_v).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..max_e);
        (Just(n), edges)
    })
}

fn build_list(n: u64, pairs: &[(u64, u64)]) -> EdgeList {
    let mut l = EdgeList::with_num_vertices(n);
    for &(s, t) in pairs {
        if s != t {
            l.push_pair(s, t);
        }
    }
    l.set_num_vertices(n);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&l);
    b.build().edges
}

fn reference_khop(csr: &Csr, source: VertexId, k: u32) -> u64 {
    let mut seen = vec![false; csr.num_vertices() as usize];
    let mut q = VecDeque::new();
    seen[source as usize] = true;
    q.push_back((source, 0u32));
    let mut count = 1u64;
    while let Some((v, d)) = q.pop_front() {
        if d >= k {
            continue;
        }
        for &t in csr.neighbors(v) {
            if !seen[t as usize] {
                seen[t as usize] = true;
                count += 1;
                q.push_back((t, d + 1));
            }
        }
    }
    count
}

/// [`reference_khop`] plus the per-level profile (trailing zeros
/// trimmed — the service's [`QueryResult::per_level`] convention).
fn reference_khop_levels(csr: &Csr, source: VertexId, k: u32) -> (u64, Vec<u64>) {
    let mut seen = vec![false; csr.num_vertices() as usize];
    let mut q = VecDeque::new();
    let mut levels = vec![1u64];
    seen[source as usize] = true;
    q.push_back((source, 0u32));
    let mut count = 1u64;
    while let Some((v, d)) = q.pop_front() {
        if d >= k {
            continue;
        }
        for &t in csr.neighbors(v) {
            if !seen[t as usize] {
                seen[t as usize] = true;
                count += 1;
                if levels.len() <= (d + 1) as usize {
                    levels.resize((d + 2) as usize, 0);
                }
                levels[(d + 1) as usize] += 1;
                q.push_back((t, d + 1));
            }
        }
    }
    while levels.last() == Some(&0) {
        levels.pop();
    }
    (count, levels)
}

/// The committed edge set as a model: pairs cleaned exactly the way
/// [`GraphBuilder`] cleans them (self-loops dropped, duplicates merged).
fn model_of(n: u64, pairs: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
    pairs.iter().copied().filter(|&(s, t)| s != t && s < n && t < n).collect()
}

/// Rebuilds a [`Csr`] from scratch for a model snapshot.
fn csr_of(n: u64, model: &BTreeSet<(u64, u64)>) -> Csr {
    let pairs: Vec<(u64, u64)> = model.iter().copied().collect();
    let edges = build_list(n, &pairs);
    Csr::from_edges(edges.num_vertices(), edges.edges())
}

/// One step of a random mutation script.
#[derive(Clone, Debug)]
enum MutOp {
    /// Buffer a batch of `(kind, src_pick, dst_pick)` updates
    /// (`kind == 0` → delete, else insert; picks taken mod `n`).
    Batch(Vec<(u64, u64, u64)>),
    /// Ask `(src_pick, k)` and check it against the rebuilt snapshot.
    Query(u64, u32),
    /// Commit a new epoch.
    Commit,
}

fn mut_op() -> impl Strategy<Value = MutOp> {
    prop_oneof![
        prop::collection::vec((0u64..4, 0u64..60, 0u64..60), 1..8).prop_map(MutOp::Batch),
        (0u64..60, 0u32..5).prop_map(|(s, k)| MutOp::Query(s, k)),
        Just(MutOp::Commit),
    ]
}

/// One lane's level profile (its column of `per_level`), trimmed of
/// trailing zeros so profiles compare across batches of different
/// depths.
fn lane_levels(br: &cgraph::core::engine::BatchResult, lane: usize) -> Vec<u64> {
    let mut v: Vec<u64> = br.per_level.iter().map(|row| row[lane]).collect();
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_khop_matches_reference((n, pairs) in graph_strategy(120, 400),
                                     src_pick in 0u64..120,
                                     k in 0u32..6,
                                     machines in 1usize..5) {
        let edges = build_list(n, &pairs);
        let src = src_pick % n;
        let csr = Csr::from_edges(edges.num_vertices(), edges.edges());
        let engine = DistributedEngine::new(&edges, EngineConfig::new(machines));
        let expect = reference_khop(&csr, src, k);
        prop_assert_eq!(khop_count(&engine, src, k), expect);
    }

    #[test]
    fn khop_is_monotone_in_k((n, pairs) in graph_strategy(80, 300), src_pick in 0u64..80) {
        let edges = build_list(n, &pairs);
        let src = src_pick % n;
        let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
        let mut prev = 0u64;
        for k in 0..5u32 {
            let c = khop_count(&engine, src, k);
            prop_assert!(c >= prev, "k-hop set must grow with k");
            prev = c;
        }
        // ... and bounded by the vertex count.
        prop_assert!(prev <= n);
    }

    #[test]
    fn partition_covers_and_balances((n, pairs) in graph_strategy(200, 500),
                                     p in 1usize..10) {
        let edges = build_list(n, &pairs);
        let part = RangePartition::from_edges(edges.num_vertices(), edges.edges(), p);
        // Full disjoint coverage.
        let covered: u64 = part.ranges().iter().map(|r| r.len()).sum();
        prop_assert_eq!(covered, edges.num_vertices());
        for v in 0..edges.num_vertices() {
            let o = part.owner(v);
            prop_assert!(part.range(o).contains(v));
        }
    }

    #[test]
    fn edge_set_blocking_is_lossless((n, pairs) in graph_strategy(100, 400),
                                     target in 1usize..64) {
        let edges = build_list(n, &pairs);
        let span = VertexRange::new(0, edges.num_vertices());
        let blocked = EdgeSetGraph::build(
            edges.edges(), span, span, ConsolidationPolicy::grid(target));
        let flat = EdgeSetGraph::flat(edges.edges(), span, span);
        for v in 0..edges.num_vertices() {
            prop_assert_eq!(blocked.out_neighbors(v), flat.out_neighbors(v));
        }
        let total: usize = blocked.sets().iter().map(|s| s.num_edges()).sum();
        prop_assert_eq!(total, edges.len());
    }

    #[test]
    fn bitmap_behaves_like_hashset(ops in prop::collection::vec((0usize..300, any::<bool>()), 1..200)) {
        let mut bm = Bitmap::new(300);
        let mut set = std::collections::HashSet::new();
        for (i, insert) in ops {
            if insert {
                bm.set(i);
                set.insert(i);
            } else {
                bm.clear(i);
                set.remove(&i);
            }
        }
        prop_assert_eq!(bm.count_ones(), set.len());
        let from_bm: std::collections::HashSet<usize> = bm.iter_ones().collect();
        prop_assert_eq!(from_bm, set);
    }

    #[test]
    fn sssp_respects_edge_relaxation((n, pairs) in graph_strategy(60, 200)) {
        let edges = build_list(n, &pairs);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
        let dist = sssp(&engine, 0);
        // Relaxed fixed point: no edge can improve any distance.
        for e in edges.edges() {
            let ds = dist[e.src as usize];
            let dt = dist[e.dst as usize];
            if ds.is_finite() {
                prop_assert!(dt <= ds + e.weight + 1e-4,
                    "edge {}->{} violates triangle inequality", e.src, e.dst);
            }
        }
        prop_assert_eq!(dist[0], 0.0);
    }

    #[test]
    fn wcc_labels_are_consistent_with_edges((n, pairs) in graph_strategy(80, 250)) {
        let edges = build_list(n, &pairs);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
        let labels = weakly_connected_components(&engine);
        // Endpoint of every edge shares a label.
        for e in edges.edges() {
            prop_assert_eq!(labels[e.src as usize], labels[e.dst as usize]);
        }
        // Labels are canonical: the label is the min vertex of its class.
        for (v, &l) in labels.iter().enumerate() {
            prop_assert!(l <= v as u64);
            prop_assert_eq!(labels[l as usize], l);
        }
    }

    #[test]
    fn recovered_batch_is_bit_identical_to_fault_free(
        (n, pairs) in graph_strategy(80, 250),
        src_picks in prop::collection::vec(0u64..80, 1..6),
        k in 1u32..6,
        machines in 2usize..5,
        crash_pick in 0usize..8,
        crash_step in 0u32..8,
        interval in 1u32..5,
    ) {
        // A crash at an arbitrary superstep, recovered via confined
        // partition replay (or global rollback when the crash point
        // precludes it), must reproduce the fault-free batch bit for
        // bit: same per-lane visited counts, same per-level profile.
        let edges = build_list(n, &pairs);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(machines));
        let sources: Vec<u64> = src_picks.iter().map(|s| s % n).collect();
        let ks = vec![k; sources.len()];
        let baseline = engine.run_traversal_batch(&sources, &ks).unwrap();
        let cluster = PersistentCluster::new(machines);
        let plan = FaultPlan::new(n ^ 0x5eed)
            .crash(crash_pick % machines, crash_step)
            .heal_after(1);
        let rc = RecoveryConfig { checkpoint_interval: interval, max_recoveries: 3 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let run = engine.run_traversal_batch_recoverable(&cluster, &sources, &ks, &rc, Some(fault));
        cluster.shutdown();
        let (br, _report) = run.expect("healed crash must recover");
        prop_assert_eq!(br.per_lane_visited, baseline.per_lane_visited);
        prop_assert_eq!(br.per_level, baseline.per_level);
    }

    #[test]
    fn lossy_link_recovery_is_bit_identical(
        (n, pairs) in graph_strategy(60, 200),
        src_pick in 0u64..60,
        k in 1u32..6,
        machines in 2usize..4,
        drop_prob in 0.05f64..0.6,
        interval in 1u32..5,
    ) {
        // Message loss voids confined recovery (logs record intent,
        // not delivery); the global-rollback fallback must still land
        // on exactly the fault-free answer once the plan heals.
        let edges = build_list(n, &pairs);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(machines));
        let sources = [src_pick % n];
        let ks = [k];
        let baseline = engine.run_traversal_batch(&sources, &ks).unwrap();
        let cluster = PersistentCluster::new(machines);
        let plan = FaultPlan::new(n.wrapping_mul(31) ^ 0xd409).with_drop(drop_prob).heal_after(1);
        let rc = RecoveryConfig { checkpoint_interval: interval, max_recoveries: 3 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let run = engine.run_traversal_batch_recoverable(&cluster, &sources, &ks, &rc, Some(fault));
        cluster.shutdown();
        let (br, _report) = run.expect("healed lossy plan must recover");
        prop_assert_eq!(br.per_lane_visited, baseline.per_lane_visited);
        prop_assert_eq!(br.per_level, baseline.per_level);
    }

    #[test]
    fn wide_batch_is_bit_identical_to_64_lane_chunks(
        (n, pairs) in graph_strategy(100, 350),
        width_pick in 0usize..2,
        src_salt in 0u64..1000,
        p_pick in 0usize..3,
    ) {
        // A W-wide batch (W ∈ {128, 256}) must be observationally
        // identical to running its lanes as W/64 separate 64-lane
        // batches: same per-lane visited count, same per-lane level
        // profile. Lanes never bleed across word boundaries.
        let width = [128usize, 256][width_pick];
        let p = [1usize, 2, 4][p_pick];
        let edges = build_list(n, &pairs);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(p));
        let sources: Vec<u64> = (0..width as u64).map(|i| (i * 13 + src_salt) % n).collect();
        let ks: Vec<u32> = (0..width).map(|i| 1 + (i % 5) as u32).collect();
        let wide = engine.run_traversal_batch(&sources, &ks).unwrap();
        for (chunk, (cs, ck)) in sources.chunks(64).zip(ks.chunks(64)).enumerate() {
            let narrow = engine.run_traversal_batch(cs, ck).unwrap();
            for lane in 0..cs.len() {
                let wl = chunk * 64 + lane;
                prop_assert_eq!(wide.per_lane_visited[wl], narrow.per_lane_visited[lane],
                    "visited diverges at wide lane {}", wl);
                prop_assert_eq!(lane_levels(&wide, wl), lane_levels(&narrow, lane),
                    "level profile diverges at wide lane {}", wl);
            }
        }
    }

    #[test]
    fn wide_recovered_batch_matches_chunked_fault_free(
        (n, pairs) in graph_strategy(80, 250),
        src_salt in 0u64..500,
        p_pick in 0usize..2,
        crash_pick in 0usize..8,
        crash_step in 0u32..6,
        interval in 1u32..4,
    ) {
        // The same chunk-equivalence must hold when the 128-wide batch
        // crashes mid-flight and recovers: multi-word snapshots, sender
        // logs, and live-lane masks may not corrupt any lane.
        let width = 128usize;
        let p = [2usize, 4][p_pick];
        let edges = build_list(n, &pairs);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(p));
        let sources: Vec<u64> = (0..width as u64).map(|i| (i * 11 + src_salt) % n).collect();
        let ks: Vec<u32> = (0..width).map(|i| 1 + (i % 4) as u32).collect();
        let cluster = PersistentCluster::new(p);
        let plan = FaultPlan::new(n ^ 0xd1de)
            .crash(crash_pick % p, crash_step)
            .heal_after(1);
        let rc = RecoveryConfig { checkpoint_interval: interval, max_recoveries: 3 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let run = engine.run_traversal_batch_recoverable(&cluster, &sources, &ks, &rc, Some(fault));
        cluster.shutdown();
        let (wide, _report) = run.expect("healed crash must recover");
        for (chunk, (cs, ck)) in sources.chunks(64).zip(ks.chunks(64)).enumerate() {
            let narrow = engine.run_traversal_batch(cs, ck).unwrap();
            for lane in 0..cs.len() {
                let wl = chunk * 64 + lane;
                prop_assert_eq!(wide.per_lane_visited[wl], narrow.per_lane_visited[lane],
                    "recovered visited diverges at wide lane {}", wl);
                prop_assert_eq!(lane_levels(&wide, wl), lane_levels(&narrow, lane),
                    "recovered level profile diverges at wide lane {}", wl);
            }
        }
    }

    #[test]
    fn crashed_batches_never_populate_the_cache(
        (n, pairs) in graph_strategy(80, 250),
        src_picks in prop::collection::vec(0u64..80, 2..6),
        k in 1u32..5,
        machines in 2usize..4,
        crash_machine in 0usize..4,
        crash_step in 0u32..5,
    ) {
        // A FaultPlan crash mid-batch must never leak the dying
        // batch's partial state into the result cache: only committed
        // batches insert, and re-asking every key after the armed
        // window must land on exactly the fault-free reference — a
        // leaked partial entry would be served as a hit here and
        // diverge.
        let edges = build_list(n, &pairs);
        let csr = Csr::from_edges(edges.num_vertices(), edges.edges());
        let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(machines)));
        let sources: Vec<u64> = src_picks.iter().map(|s| s % n).collect();
        // Never-healing crash armed only for the first dispatched
        // chaos job; retries of that job crash too, so whichever batch
        // it catches dies for good.
        let plan = FaultPlan::new(n ^ 0xcac4e)
            .crash(crash_machine % machines, crash_step)
            .arm_jobs(0..1);
        let service = QueryService::start(
            Arc::clone(&engine),
            ServiceConfig {
                max_batch_delay: Duration::from_micros(100),
                fault_plan: Some(plan),
                max_retries: 1,
                retry_backoff: Duration::from_micros(20),
                recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
                query_plane: QueryPlaneConfig {
                    cache_capacity_bytes: Some(1 << 20),
                    coalesce: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let tickets: Vec<_> = sources.iter().enumerate()
            .map(|(i, &s)| service.submit(KhopQuery::single(i, s, k)).unwrap())
            .collect();
        let first_ok: Vec<bool> = tickets.into_iter().map(|t| t.wait().is_ok()).collect();
        let mid = service.stats();
        // Insertions come from committed batches only: when the whole
        // wave died, the cache must hold nothing at all.
        if first_ok.iter().all(|&ok| !ok) {
            prop_assert_eq!(mid.cache_insertions, 0, "failed batch inserted into the cache");
            prop_assert_eq!(mid.cache_entries, 0);
        }
        // The armed window is spent: every key now resolves — fresh or
        // cached — to the fault-free reference answer.
        for (i, &s) in sources.iter().enumerate() {
            let r = service.query(KhopQuery::single(1000 + i, s, k)).unwrap();
            prop_assert_eq!(r.visited, reference_khop(&csr, s, k),
                "post-crash answer diverges for source {} k {}", s, k);
        }
        service.shutdown();
    }

    #[test]
    fn scheduler_preserves_query_identity((n, pairs) in graph_strategy(100, 300),
                                          count in 1usize..80) {
        let edges = build_list(n, &pairs);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
        let queries: Vec<KhopQuery> = (0..count)
            .map(|i| KhopQuery::single(i * 3, (i as u64 * 7) % n, 2))
            .collect();
        let results = QueryScheduler::new(&engine, SchedulerConfig::default())
            .execute(&queries);
        prop_assert_eq!(results.len(), count);
        for (q, r) in queries.iter().zip(&results) {
            prop_assert_eq!(r.id, q.id);
            prop_assert_eq!(r.visited, khop_count(&engine, q.sources[0], q.k));
        }
    }

    #[test]
    fn mutation_interleavings_match_rebuild(
        (n, pairs) in graph_strategy(60, 200),
        script in prop::collection::vec(mut_op(), 4..14),
        p_pick in 0usize..3,
        asynchronous in any::<bool>(),
    ) {
        // Random (update batch, query, commit) interleavings across
        // p ∈ {1, 2, 4} × sync/async: every answer must be
        // bit-identical to the same query against a graph rebuilt from
        // scratch at the answer's own epoch.
        let p = [1usize, 2, 4][p_pick];
        let edges = build_list(n, &pairs);
        let mut cfg = EngineConfig::new(p);
        if asynchronous {
            cfg = cfg.asynchronous();
        }
        let engine = Arc::new(DistributedEngine::new(&edges, cfg));
        let service = QueryService::start(
            Arc::clone(&engine),
            ServiceConfig {
                max_batch_delay: Duration::from_micros(50),
                query_plane: QueryPlaneConfig {
                    cache_capacity_bytes: Some(1 << 20),
                    coalesce: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mut model = model_of(n, &pairs);
        let mut history = vec![model.clone()];
        let mut next_id = 0usize;
        for op in script {
            match op {
                MutOp::Batch(items) => {
                    let updates: Vec<EdgeUpdate> = items
                        .into_iter()
                        .filter_map(|(kind, sp, tp)| {
                            let (s, t) = (sp % n, tp % n);
                            if s == t {
                                None
                            } else if kind == 0 {
                                Some(EdgeUpdate::delete(s, t))
                            } else {
                                Some(EdgeUpdate::insert(s, t))
                            }
                        })
                        .collect();
                    for u in &updates {
                        if u.is_insert() {
                            model.insert((u.src(), u.dst()));
                        } else {
                            model.remove(&(u.src(), u.dst()));
                        }
                    }
                    service.apply_updates(updates.into_iter().collect()).unwrap();
                }
                MutOp::Query(sp, k) => {
                    let src = sp % n;
                    next_id += 1;
                    let r = service.query(KhopQuery::single(next_id, src, k)).unwrap();
                    prop_assert!((r.epoch as usize) < history.len(),
                        "answer epoch {} beyond committed history {}", r.epoch, history.len());
                    let csr = csr_of(n, &history[r.epoch as usize]);
                    let (visited, per_level) = reference_khop_levels(&csr, src, k);
                    prop_assert_eq!(r.visited, visited,
                        "visited diverges from scratch rebuild at epoch {}", r.epoch);
                    prop_assert_eq!(r.per_level, per_level,
                        "per_level diverges from scratch rebuild at epoch {}", r.epoch);
                }
                MutOp::Commit => {
                    let ep = service.commit_epoch().unwrap();
                    prop_assert_eq!(ep as usize, history.len(), "epochs advance densely");
                    history.push(model.clone());
                }
            }
        }
        // Land the tail: one final commit + spot query at the newest epoch.
        let ep = service.commit_epoch().unwrap();
        prop_assert_eq!(ep as usize, history.len());
        history.push(model.clone());
        let r = service.query(KhopQuery::single(usize::MAX / 2, 0, 3)).unwrap();
        prop_assert_eq!(r.epoch, ep);
        let csr = csr_of(n, &history[ep as usize]);
        let (visited, per_level) = reference_khop_levels(&csr, 0, 3);
        prop_assert_eq!(r.visited, visited);
        prop_assert_eq!(r.per_level, per_level);
        service.shutdown();
    }

    #[test]
    fn crashed_mutating_batches_never_populate_the_cache(
        (n, pairs) in graph_strategy(80, 250),
        upd_picks in prop::collection::vec((0u64..4, 0u64..80, 0u64..80), 1..10),
        src_picks in prop::collection::vec(0u64..80, 2..6),
        k in 1u32..5,
        machines in 2usize..4,
        crash_machine in 0usize..4,
        crash_step in 0u32..5,
    ) {
        // The mutating variant of `crashed_batches_never_populate_the_
        // cache`: the armed batch runs against a freshly committed
        // epoch (delta overlay or folded base). A crash mid-batch must
        // not leak overlay-tainted partial state into the cache, and
        // once the armed window is spent every key must land on the
        // committed epoch's scratch-rebuild answer.
        let edges = build_list(n, &pairs);
        let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(machines)));
        let plan = FaultPlan::new(n ^ 0x3a11c)
            .crash(crash_machine % machines, crash_step)
            .arm_jobs(0..1);
        let service = QueryService::start(
            Arc::clone(&engine),
            ServiceConfig {
                max_batch_delay: Duration::from_micros(100),
                fault_plan: Some(plan),
                max_retries: 1,
                retry_backoff: Duration::from_micros(20),
                recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
                query_plane: QueryPlaneConfig {
                    cache_capacity_bytes: Some(1 << 20),
                    coalesce: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // Mutate and commit before any batch dispatches, so chaos job 0
        // (the first dispatched batch) executes on the mutated epoch.
        let mut model = model_of(n, &pairs);
        let updates: Vec<EdgeUpdate> = upd_picks
            .into_iter()
            .filter_map(|(kind, sp, tp)| {
                let (s, t) = (sp % n, tp % n);
                if s == t {
                    None
                } else if kind == 0 {
                    Some(EdgeUpdate::delete(s, t))
                } else {
                    Some(EdgeUpdate::insert(s, t))
                }
            })
            .collect();
        for u in &updates {
            if u.is_insert() {
                model.insert((u.src(), u.dst()));
            } else {
                model.remove(&(u.src(), u.dst()));
            }
        }
        service.apply_updates(updates.into_iter().collect()).unwrap();
        prop_assert_eq!(service.commit_epoch().unwrap(), 1);
        let csr = csr_of(n, &model);
        let sources: Vec<u64> = src_picks.iter().map(|s| s % n).collect();
        let tickets: Vec<_> = sources.iter().enumerate()
            .map(|(i, &s)| service.submit(KhopQuery::single(i, s, k)).unwrap())
            .collect();
        let first_ok: Vec<bool> = tickets.into_iter().map(|t| t.wait().is_ok()).collect();
        let mid = service.stats();
        if first_ok.iter().all(|&ok| !ok) {
            prop_assert_eq!(mid.cache_insertions, 0,
                "failed mutating batch inserted into the cache");
            prop_assert_eq!(mid.cache_entries, 0);
        }
        for (i, &s) in sources.iter().enumerate() {
            let r = service.query(KhopQuery::single(1000 + i, s, k)).unwrap();
            prop_assert_eq!(r.epoch, 1, "post-crash answer carries a stale epoch");
            let (visited, per_level) = reference_khop_levels(&csr, s, k);
            prop_assert_eq!(r.visited, visited,
                "post-crash answer diverges for source {} k {}", s, k);
            prop_assert_eq!(r.per_level, per_level);
        }
        service.shutdown();
    }
}
