//! Differential oracle for the mutation plane: every answer the
//! service produces must be **bit-identical** to the same query asked
//! of a graph rebuilt from scratch at that answer's epoch — fault-free
//! and under an armed crash [`FaultPlan`].
//!
//! The model is a plain `BTreeSet<(src, dst)>` per committed epoch:
//! inserts add a pair, deletes remove it (last update wins, exactly the
//! [`cgraph::graph::delta::DeltaOverlay`] contract). A reference BFS
//! over the model yields `(visited, per_level)` with trailing zero
//! levels trimmed — the service's own result convention.

use cgraph::prelude::*;
use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Deterministic xorshift stream so every run replays identically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A deterministic sparse digraph on `n` vertices (no self-loops).
fn seed_edges(n: u64, m: usize, seed: u64) -> BTreeSet<(u64, u64)> {
    let mut rng = Rng(seed | 1);
    let mut set = BTreeSet::new();
    while set.len() < m {
        let s = rng.below(n);
        let t = rng.below(n);
        if s != t {
            set.insert((s, t));
        }
    }
    set
}

fn edge_list(n: u64, edges: &BTreeSet<(u64, u64)>) -> EdgeList {
    let mut l = EdgeList::with_num_vertices(n);
    for &(s, t) in edges {
        l.push_pair(s, t);
    }
    l.set_num_vertices(n);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&l);
    b.build().edges
}

/// Applies a batch to the model edge set (last update wins per pair).
fn model_apply(set: &mut BTreeSet<(u64, u64)>, updates: &[EdgeUpdate]) {
    for u in updates {
        if u.is_insert() {
            set.insert((u.src(), u.dst()));
        } else {
            set.remove(&(u.src(), u.dst()));
        }
    }
}

/// Reference `(visited, per_level)` by BFS over the model edge set,
/// trailing zeros trimmed — matches [`QueryResult`]'s convention.
fn reference(n: u64, edges: &BTreeSet<(u64, u64)>, src: u64, k: u32) -> (u64, Vec<u64>) {
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
    for &(s, t) in edges {
        adj[s as usize].push(t);
    }
    let mut seen = vec![false; n as usize];
    let mut levels = vec![0u64; 1];
    let mut q = VecDeque::new();
    seen[src as usize] = true;
    levels[0] = 1;
    q.push_back((src, 0u32));
    let mut visited = 1u64;
    while let Some((v, d)) = q.pop_front() {
        if d >= k {
            continue;
        }
        for &t in &adj[v as usize] {
            if !seen[t as usize] {
                seen[t as usize] = true;
                visited += 1;
                if levels.len() <= (d + 1) as usize {
                    levels.resize((d + 2) as usize, 0);
                }
                levels[(d + 1) as usize] += 1;
                q.push_back((t, d + 1));
            }
        }
    }
    while levels.last() == Some(&0) {
        levels.pop();
    }
    (visited, levels)
}

/// A random update batch against the *current* model: deletes drawn
/// from live edges, inserts anywhere (no self-loops).
fn random_batch(
    n: u64,
    current: &BTreeSet<(u64, u64)>,
    rng: &mut Rng,
    len: usize,
) -> Vec<EdgeUpdate> {
    let live: Vec<(u64, u64)> = current.iter().copied().collect();
    (0..len)
        .map(|_| {
            if !live.is_empty() && rng.below(3) == 0 {
                let (s, t) = live[rng.below(live.len() as u64) as usize];
                EdgeUpdate::delete(s, t)
            } else {
                loop {
                    let s = rng.below(n);
                    let t = rng.below(n);
                    if s != t {
                        break EdgeUpdate::insert(s, t);
                    }
                }
            }
        })
        .collect()
}

fn engine_for(
    n: u64,
    edges: &BTreeSet<(u64, u64)>,
    p: usize,
    asynchronous: bool,
) -> DistributedEngine {
    let mut cfg = EngineConfig::new(p);
    if asynchronous {
        cfg = cfg.asynchronous();
    }
    DistributedEngine::new(&edge_list(n, edges), cfg)
}

/// Asserts one service answer against the model snapshot at the
/// answer's own epoch.
fn check(history: &[BTreeSet<(u64, u64)>], n: u64, src: u64, k: u32, r: &QueryResult) {
    assert!(
        (r.epoch as usize) < history.len(),
        "answer labelled epoch {} but only {} epochs committed",
        r.epoch,
        history.len()
    );
    let (visited, per_level) = reference(n, &history[r.epoch as usize], src, k);
    assert_eq!(
        r.visited, visited,
        "visited diverges from scratch rebuild at epoch {} (src {src}, k {k})",
        r.epoch
    );
    assert_eq!(
        r.per_level, per_level,
        "per_level diverges from scratch rebuild at epoch {} (src {src}, k {k})",
        r.epoch
    );
}

/// Tentpole oracle: interleave explicit commits with queries across
/// p ∈ {1, 2, 4} × {sync, async}; every answer must equal the same
/// query against a from-scratch engine at the answer's epoch.
#[test]
fn answers_match_scratch_rebuild_across_epochs() {
    const N: u64 = 48;
    for p in [1usize, 2, 4] {
        for asynchronous in [false, true] {
            let base = seed_edges(N, 100, 0xA11CE ^ p as u64);
            let engine = Arc::new(engine_for(N, &base, p, asynchronous));
            let service = QueryService::start(
                Arc::clone(&engine),
                ServiceConfig { max_batch_delay: Duration::from_micros(50), ..Default::default() },
            );
            let mut rng = Rng(0xBEEF ^ (p as u64) << 1 ^ asynchronous as u64);
            let mut history = vec![base.clone()];
            let mut model = base;
            let mut total_updates = 0u64;
            for round in 0..4 {
                // Queries answered before the commit see the old epoch.
                for q in 0..4 {
                    let src = rng.below(N);
                    let k = 1 + (rng.below(4) as u32);
                    let r = service.query(KhopQuery::single(round * 100 + q, src, k)).unwrap();
                    check(&history, N, src, k, &r);
                }
                let batch = random_batch(N, &model, &mut rng, 12);
                total_updates += batch.len() as u64;
                model_apply(&mut model, &batch);
                service.apply_updates(batch.into_iter().collect()).unwrap();
                let ep = service.commit_epoch().unwrap();
                assert_eq!(ep, round as u64 + 1, "epochs advance by exactly one per commit");
                assert_eq!(service.graph_epoch(), ep);
                history.push(model.clone());
                // And queries after the commit see the new one.
                for q in 0..4 {
                    let src = rng.below(N);
                    let k = 1 + (rng.below(4) as u32);
                    let r = service.query(KhopQuery::single(round * 100 + 50 + q, src, k)).unwrap();
                    assert_eq!(
                        r.epoch, ep,
                        "post-commit answer must be labelled with the new epoch"
                    );
                    check(&history, N, src, k, &r);
                }
            }
            let stats = service.stats();
            assert_eq!(stats.epoch_commits, 4);
            assert_eq!(stats.updates_applied, total_updates);
            assert_eq!(stats.pending_updates, 0, "commit drains the pending buffer");
            service.shutdown();
        }
    }
}

/// Folding policy must be invisible to answers: the same script under
/// fold-always (threshold 0) and fold-never (threshold `usize::MAX`)
/// yields bit-identical results, differing only in the fold counters.
#[test]
fn fold_policy_is_invisible_to_answers() {
    const N: u64 = 40;
    let base = seed_edges(N, 80, 0xF01D);
    let mut outcomes: Vec<Vec<QueryResult>> = Vec::new();
    for fold_threshold in [0usize, usize::MAX] {
        let engine = Arc::new(engine_for(N, &base, 2, false));
        let service = QueryService::start(
            Arc::clone(&engine),
            ServiceConfig {
                max_batch_delay: Duration::from_micros(50),
                mutation: MutationConfig { fold_threshold, ..Default::default() },
                ..Default::default()
            },
        );
        let mut rng = Rng(0xD1CE);
        let mut model = base.clone();
        let mut history = vec![model.clone()];
        let mut results = Vec::new();
        for round in 0..3 {
            let batch = random_batch(N, &model, &mut rng, 10);
            model_apply(&mut model, &batch);
            service.apply_updates(batch.into_iter().collect()).unwrap();
            service.commit_epoch().unwrap();
            history.push(model.clone());
            for q in 0..5 {
                let src = rng.below(N);
                let k = 1 + (rng.below(4) as u32);
                let r = service.query(KhopQuery::single(round * 10 + q, src, k)).unwrap();
                check(&history, N, src, k, &r);
                results.push(r);
            }
        }
        let stats = service.stats();
        if fold_threshold == 0 {
            assert_eq!(stats.epoch_folds, stats.epoch_commits, "threshold 0 folds every commit");
            assert_eq!(stats.delta_entries, 0, "a folded engine carries no overlay rows");
        } else {
            assert_eq!(stats.epoch_folds, 0, "unreachable threshold never folds");
            assert!(stats.delta_entries > 0, "overlay rows must accumulate when never folding");
            assert!(stats.delta_bytes > 0);
        }
        service.shutdown();
        outcomes.push(results);
    }
    let folded = &outcomes[0];
    let overlaid = &outcomes[1];
    assert_eq!(folded.len(), overlaid.len());
    for (a, b) in folded.iter().zip(overlaid) {
        assert_eq!(a.visited, b.visited, "fold policy changed an answer");
        assert_eq!(a.per_level, b.per_level, "fold policy changed a level profile");
        assert_eq!(a.epoch, b.epoch);
    }
}

/// `commit_threshold` commits on its own once enough updates buffer —
/// no explicit `commit_epoch` call required.
#[test]
fn threshold_triggers_commit_without_explicit_call() {
    const N: u64 = 24;
    let base = seed_edges(N, 40, 0x7123);
    let engine = Arc::new(engine_for(N, &base, 2, false));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(50),
            mutation: MutationConfig { commit_threshold: Some(4), ..Default::default() },
            ..Default::default()
        },
    );
    let mut model = base;
    let batch: Vec<EdgeUpdate> = vec![
        EdgeUpdate::insert(0, 13),
        EdgeUpdate::insert(13, 17),
        EdgeUpdate::insert(17, 21),
        EdgeUpdate::insert(21, 2),
    ];
    model_apply(&mut model, &batch);
    service.apply_updates(batch.into_iter().collect()).unwrap();
    // The commit happens on the dispatcher thread; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.graph_epoch() == 0 {
        assert!(std::time::Instant::now() < deadline, "threshold commit never happened");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(service.graph_epoch(), 1);
    let r = service.query(KhopQuery::single(1, 0, 4)).unwrap();
    assert_eq!(r.epoch, 1);
    let (visited, per_level) = reference(N, &model, 0, 4);
    assert_eq!(r.visited, visited);
    assert_eq!(r.per_level, per_level);
    let stats = service.stats();
    assert_eq!(stats.epoch_commits, 1);
    assert_eq!(stats.pending_updates, 0);
    service.shutdown();
}

/// An empty commit still advances the epoch (the cache fence) but
/// changes no answer, and `invalidate_cache` *is* that commit.
#[test]
fn empty_commit_bumps_epoch_and_preserves_answers() {
    const N: u64 = 32;
    let base = seed_edges(N, 60, 0xE4C4);
    let engine = Arc::new(engine_for(N, &base, 2, false));
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(50),
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let before = service.query(KhopQuery::single(0, 3, 3)).unwrap();
    assert_eq!(before.epoch, 0);
    assert_eq!(service.commit_epoch().unwrap(), 1);
    assert_eq!(service.invalidate_cache(), 2, "invalidate_cache is commit_epoch");
    let after = service.query(KhopQuery::single(1, 3, 3)).unwrap();
    assert_eq!(after.epoch, 2, "post-fence answers are recomputed at the new epoch");
    assert_eq!(after.visited, before.visited, "an empty commit must not change answers");
    assert_eq!(after.per_level, before.per_level);
    let stats = service.stats();
    assert_eq!(stats.epoch_commits, 2);
    assert_eq!(stats.updates_applied, 0);
    service.shutdown();
}

/// Queries racing a mutator thread: whatever the interleaving, each
/// answer's `(visited, per_level)` must match the model at the epoch
/// the answer claims.
#[test]
fn concurrent_commits_and_queries_hold_the_oracle() {
    const N: u64 = 40;
    const ROUNDS: usize = 6;
    let base = seed_edges(N, 90, 0xC0FE);
    let engine = Arc::new(engine_for(N, &base, 2, false));
    let service = Arc::new(QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(50),
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                coalesce: true,
                ..Default::default()
            },
            ..Default::default()
        },
    ));
    // Epoch → model snapshot, appended *after* each commit returns, so
    // after joining the mutator the history is complete.
    let history = Arc::new(Mutex::new(vec![base.clone()]));
    let mutator = {
        let service = Arc::clone(&service);
        let history = Arc::clone(&history);
        std::thread::spawn(move || {
            let mut rng = Rng(0x5EED);
            let mut model = base;
            for _ in 0..ROUNDS {
                let batch = random_batch(N, &model, &mut rng, 8);
                model_apply(&mut model, &batch);
                service.apply_updates(batch.into_iter().collect()).unwrap();
                let ep = service.commit_epoch().unwrap();
                let mut h = history.lock().unwrap();
                assert_eq!(ep as usize, h.len());
                h.push(model.clone());
                drop(h);
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };
    let queriers: Vec<_> = (0..3)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut rng = Rng(0x9A9A ^ t as u64);
                let mut out = Vec::new();
                for i in 0..40 {
                    let src = rng.below(N);
                    let k = 1 + (rng.below(3) as u32);
                    let r = service.query(KhopQuery::single(t * 1000 + i, src, k)).unwrap();
                    out.push((src, k, r));
                }
                out
            })
        })
        .collect();
    mutator.join().unwrap();
    let history = history.lock().unwrap();
    assert_eq!(history.len(), ROUNDS + 1);
    for q in queriers {
        for (src, k, r) in q.join().unwrap() {
            check(&history, N, src, k, &r);
        }
    }
    service.shutdown();
}

/// The oracle holds under an armed, healing crash plan while commits
/// interleave: retried batches land on the answer of the epoch they
/// were admitted to (or re-formed at), never on a torn snapshot.
#[test]
fn oracle_holds_under_armed_crash_during_mutation_serving() {
    const N: u64 = 36;
    let base = seed_edges(N, 80, 0xCAB0);
    let engine = Arc::new(engine_for(N, &base, 2, false));
    let plan = FaultPlan::new(0xFA11).crash(1, 1).arm_jobs(0..6).heal_after(1);
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(50),
            fault_plan: Some(plan),
            max_retries: 3,
            retry_backoff: Duration::from_micros(20),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            ..Default::default()
        },
    );
    let mut rng = Rng(0xABCD);
    let mut model = base.clone();
    let mut history = vec![model.clone()];
    for round in 0..4 {
        let batch = random_batch(N, &model, &mut rng, 10);
        model_apply(&mut model, &batch);
        service.apply_updates(batch.into_iter().collect()).unwrap();
        service.commit_epoch().unwrap();
        history.push(model.clone());
        for q in 0..4 {
            let src = rng.below(N);
            let k = 1 + (rng.below(4) as u32);
            let r = service.query(KhopQuery::single(round * 10 + q, src, k)).unwrap();
            check(&history, N, src, k, &r);
        }
    }
    let stats = service.stats();
    assert_eq!(stats.epoch_commits, 4);
    service.shutdown();
}

/// A never-healing crash that kills the first wave of post-commit
/// queries must not leak overlay-tainted partial state into the cache:
/// once the armed window is spent, every key resolves to the committed
/// epoch's scratch-rebuild answer.
#[test]
fn crashed_mutating_batches_never_leak_delta_state() {
    const N: u64 = 30;
    let base = seed_edges(N, 60, 0xDEAD);
    let engine = Arc::new(engine_for(N, &base, 2, false));
    let plan = FaultPlan::new(0x1EAF).crash(1, 0).arm_jobs(0..1);
    let service = QueryService::start(
        Arc::clone(&engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 1,
            retry_backoff: Duration::from_micros(20),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(1 << 20),
                coalesce: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Mutate first so the armed batch runs against the overlaid epoch.
    let mut model = base;
    let batch = vec![EdgeUpdate::insert(0, 29), EdgeUpdate::insert(29, 7), delete_first(&model)];
    model_apply(&mut model, &batch);
    service.apply_updates(batch.into_iter().collect()).unwrap();
    let ep = service.commit_epoch().unwrap();
    assert_eq!(ep, 1);
    let sources = [0u64, 7, 13, 29];
    let tickets: Vec<_> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| service.submit(KhopQuery::single(i, s, 3)).unwrap())
        .collect();
    let first_ok: Vec<bool> = tickets.into_iter().map(|t| t.wait().is_ok()).collect();
    let mid = service.stats();
    if first_ok.iter().all(|&ok| !ok) {
        assert_eq!(mid.cache_insertions, 0, "a dying batch leaked into the cache");
        assert_eq!(mid.cache_entries, 0);
    }
    // Armed window spent: every key must land on the epoch-1 scratch
    // rebuild, whether it comes from the cache or a fresh traversal.
    for (i, &s) in sources.iter().enumerate() {
        let r = service.query(KhopQuery::single(100 + i, s, 3)).unwrap();
        assert_eq!(r.epoch, 1);
        let (visited, per_level) = reference(N, &model, s, 3);
        assert_eq!(r.visited, visited, "post-crash answer diverges for source {s}");
        assert_eq!(r.per_level, per_level);
    }
    service.shutdown();
}

/// Deterministic "delete an existing edge" for the tests above.
fn delete_first(model: &BTreeSet<(u64, u64)>) -> EdgeUpdate {
    let &(s, t) = model.iter().next().expect("model has edges");
    EdgeUpdate::delete(s, t)
}

/// Repartitioning an engine that carries a live overlay folds it:
/// answers and epoch are preserved, overlay rows are gone.
#[test]
fn repartition_folds_overlay_and_preserves_answers() {
    const N: u64 = 32;
    let base = seed_edges(N, 70, 0x9E37);
    let engine = engine_for(N, &base, 3, false);
    let mut model = base;
    let updates = vec![EdgeUpdate::insert(1, 30), EdgeUpdate::insert(30, 2), delete_first(&model)];
    model_apply(&mut model, &updates);
    let (overlaid, folded) = engine.with_updates(&updates, usize::MAX);
    assert!(!folded, "unreachable threshold keeps the overlay live");
    assert!(overlaid.has_delta());
    let shrunk = overlaid.repartitioned(2);
    assert!(!shrunk.has_delta(), "repartition must fold the overlay");
    assert_eq!(shrunk.graph_epoch(), overlaid.graph_epoch(), "repartition is not a commit");
    let scratch = engine_for(N, &model, 2, false);
    let sources = [0u64, 1, 2, 30];
    let ks = [3u32, 3, 3, 3];
    let a = shrunk.run_traversal_batch(&sources, &ks).unwrap();
    let b = scratch.run_traversal_batch(&sources, &ks).unwrap();
    assert_eq!(a.per_lane_visited, b.per_lane_visited);
    assert_eq!(a.per_level, b.per_level);
}
