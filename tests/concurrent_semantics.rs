//! Semantics of concurrency: a wave of queries must return exactly
//! what the same queries return in isolation, regardless of batch
//! packing, lane order, machine count, or which execution path serves
//! them — the correctness contract underneath every performance claim
//! in the paper.

use cgraph::prelude::*;
use cgraph::ql::{parse_program, Session};

fn social_graph(seed: u64) -> EdgeList {
    let raw = cgraph::gen::graph500(10, 8, seed);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&raw);
    b.build().edges
}

#[test]
fn wave_results_independent_of_submission_order() {
    let edges = social_graph(61);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    let scheduler = QueryScheduler::new(&engine, SchedulerConfig::default());

    let forward: Vec<KhopQuery> =
        (0..90).map(|i| KhopQuery::single(i, (i as u64 * 17) % 1024, 3)).collect();
    let mut backward = forward.clone();
    backward.reverse();

    let rf = scheduler.execute(&forward);
    let mut rb = scheduler.execute(&backward);
    rb.sort_by_key(|r| r.id);
    for (a, b) in rf.iter().zip(&rb) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.visited, b.visited, "query {}", a.id);
        assert_eq!(a.per_level, b.per_level, "query {}", a.id);
    }
}

#[test]
fn mixed_k_wave_matches_isolated_runs() {
    let edges = social_graph(62);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
    let scheduler = QueryScheduler::new(&engine, SchedulerConfig::default());
    // Mixed hop budgets in one wave, including full BFS lanes.
    let queries: Vec<KhopQuery> = (0..48)
        .map(|i| {
            let k = match i % 4 {
                0 => 1,
                1 => 2,
                2 => 3,
                _ => u32::MAX,
            };
            KhopQuery::single(i, (i as u64 * 31) % 1024, k)
        })
        .collect();
    let wave = scheduler.execute(&queries);
    for q in queries.iter().step_by(7) {
        let solo = scheduler.execute(std::slice::from_ref(q));
        let in_wave = wave.iter().find(|r| r.id == q.id).unwrap();
        assert_eq!(in_wave.visited, solo[0].visited, "query {}", q.id);
    }
}

#[test]
fn ql_wave_matches_library_calls() {
    let edges = social_graph(63);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    let session = Session::new(&engine);
    let program = "
        KHOP 5 2
        KHOP 10 3
        BFS 7
        COMPONENTS
    ";
    let answers = session.execute_batch(parse_program(program).unwrap());
    assert_eq!(
        answers[0].output.to_string(),
        format!("{} vertices reachable", khop_count(&engine, 5, 2))
    );
    assert_eq!(
        answers[1].output.to_string(),
        format!("{} vertices reachable", khop_count(&engine, 10, 3))
    );
    assert_eq!(
        answers[2].output.to_string(),
        format!("{} vertices reachable", bfs_count(&engine, 7))
    );
    let labels = weakly_connected_components(&engine);
    let mut uniq = labels;
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(answers[3].output.to_string(), uniq.len().to_string());
}

#[test]
fn repeated_waves_are_deterministic_in_results() {
    let edges = social_graph(64);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(4));
    let scheduler = QueryScheduler::new(&engine, SchedulerConfig::default());
    let queries: Vec<KhopQuery> =
        (0..70).map(|i| KhopQuery::single(i, (i as u64 * 11) % 1024, 3)).collect();
    let a = scheduler.execute(&queries);
    let b = scheduler.execute(&queries);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.visited, y.visited);
        assert_eq!(x.per_level, y.per_level);
    }
}

#[test]
fn engine_paths_agree_under_concurrent_reuse() {
    // One engine serving traversal batches, GAS and PCM programs in
    // sequence must keep returning consistent answers (no state leaks
    // between runs — each run builds fresh per-machine state).
    let edges = social_graph(65);
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    let before = khop_count(&engine, 3, 3);
    let _ranks = pagerank(&engine, 5);
    let _labels = weakly_connected_components(&engine);
    let _core = kcore_decomposition(&engine);
    let after = khop_count(&engine, 3, 3);
    assert_eq!(before, after, "engine state must not leak across runs");
}
