//! Vendored `rayon` API subset — sequential fallback.
//!
//! The build environment cannot reach crates.io. The workspace uses
//! rayon only for data-parallel conveniences (`par_iter`,
//! `par_iter_mut`, `into_par_iter`, `flat_map_iter`) whose results
//! never depend on parallel execution, so this shim maps each entry
//! point onto the equivalent sequential `std::iter` adaptor. Hot-path
//! parallelism in cgraph comes from the simulated machine threads in
//! `cgraph-comm`, not from rayon, and the engine deliberately avoids
//! rayon inside machine workers to keep per-thread CPU accounting
//! exact — so the sequential fallback changes no measured quantity's
//! meaning.

/// What `use rayon::prelude::*` brings in.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIteratorExt,
    };
}

/// By-value conversion (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The (sequential) iterator standing in for rayon's parallel one.
    type Iter: Iterator;

    /// Consumes `self` into an iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Shared-reference conversion (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The (sequential) iterator standing in for rayon's parallel one.
    type Iter: Iterator;

    /// Iterates over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// Exclusive-reference conversion (`par_iter_mut`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The (sequential) iterator standing in for rayon's parallel one.
    type Iter: Iterator;

    /// Iterates over `&mut self`.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Rayon-specific adaptor names not present on `std::iter::Iterator`.
pub trait ParallelIteratorExt: Iterator + Sized {
    /// Rayon's `flat_map_iter` — sequentially identical to `flat_map`.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// Rayon's chunking hint — a no-op sequentially.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_on_range_and_vec() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 9900);
        let v: Vec<u32> = vec![3, 1, 2].into_par_iter().collect();
        assert_eq!(v, vec![3, 1, 2]);
    }

    #[test]
    fn par_iter_and_mut_on_slices() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let mut w = vec![1u32, 2, 3];
        w.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(w, vec![11, 12, 13]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<u32> = vec![1u32, 2].par_iter().flat_map_iter(|&x| vec![x, x]).collect();
        assert_eq!(out, vec![1, 1, 2, 2]);
    }
}
