//! Vendored `rayon` API subset — real multi-threaded execution.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the small rayon surface the workspace uses (`par_iter`,
//! `par_iter_mut`, `into_par_iter`, `map`, `flat_map_iter`, `collect`,
//! `sum`, `for_each`, `with_min_len`) with genuine data parallelism:
//! the input is split into contiguous chunks — at most one per
//! available core, never finer than `with_min_len` — and each chunk
//! runs on its own [`std::thread::scope`] thread. This matters for
//! benchmark honesty: the Gemini baseline's measured profile is a
//! frontier BFS "using every core", so a sequential stand-in would
//! silently handicap the competitor every C-Graph figure compares
//! against. Differences from upstream rayon: a scoped thread is
//! spawned per chunk instead of using a persistent work-stealing pool
//! (slightly higher dispatch overhead, no stealing between uneven
//! chunks), and adaptor closures must be `Clone` (trivially true for
//! closures capturing only `Copy` data or references).
//!
//! Semantics preserved from rayon: `collect` keeps input order,
//! panics inside workers propagate to the caller, and results are
//! identical to sequential execution for the order-insensitive
//! reductions used here.

use std::thread;

/// What `use rayon::prelude::*` brings in.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

fn num_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Ceil-div chunk size, never zero.
fn chunk_size(len: usize, chunks: usize) -> usize {
    len.div_ceil(chunks.max(1)).max(1)
}

/// A data source that can be split into independently consumable,
/// order-contiguous chunks — the parallel analogue of `IntoIterator`.
pub trait ParSource: Send + Sized {
    /// Element type produced by each chunk.
    type Item: Send;
    /// Sequential iterator over one chunk; sent to a worker thread.
    type Chunk: Iterator<Item = Self::Item> + Send;

    /// Total number of items.
    fn len(&self) -> usize;

    /// Whether there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into at most `chunks` contiguous pieces, preserving
    /// order (concatenating the chunks yields the original sequence).
    fn split(self, chunks: usize) -> Vec<Self::Chunk>;
}

impl<'a, T: Sync + 'a> ParSource for &'a [T] {
    type Item = &'a T;
    type Chunk = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        (**self).len()
    }

    fn split(self, chunks: usize) -> Vec<Self::Chunk> {
        let size = chunk_size(self.len(), chunks);
        self.chunks(size).map(|c| c.iter()).collect()
    }
}

impl<'a, T: Send + 'a> ParSource for &'a mut [T] {
    type Item = &'a mut T;
    type Chunk = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        (**self).len()
    }

    fn split(self, chunks: usize) -> Vec<Self::Chunk> {
        let size = chunk_size(self.len(), chunks);
        self.chunks_mut(size).map(|c| c.iter_mut()).collect()
    }
}

impl<'a, T: Sync + 'a> ParSource for &'a Vec<T> {
    type Item = &'a T;
    type Chunk = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn split(self, chunks: usize) -> Vec<Self::Chunk> {
        ParSource::split(self.as_slice(), chunks)
    }
}

impl<'a, T: Send + 'a> ParSource for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Chunk = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn split(self, chunks: usize) -> Vec<Self::Chunk> {
        ParSource::split(self.as_mut_slice(), chunks)
    }
}

impl<T: Send> ParSource for Vec<T> {
    type Item = T;
    type Chunk = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn split(mut self, chunks: usize) -> Vec<Self::Chunk> {
        let size = chunk_size(self.len(), chunks);
        let mut out = Vec::new();
        while !self.is_empty() {
            let take = self.len().min(size);
            let rest = self.split_off(take);
            out.push(std::mem::replace(&mut self, rest).into_iter());
        }
        out
    }
}

macro_rules! range_par_source {
    ($($t:ty),*) => {$(
        impl ParSource for std::ops::Range<$t> {
            type Item = $t;
            type Chunk = std::ops::Range<$t>;

            fn len(&self) -> usize {
                if self.end > self.start { (self.end - self.start) as usize } else { 0 }
            }

            fn split(self, chunks: usize) -> Vec<Self::Chunk> {
                let size = chunk_size(ParSource::len(&self), chunks) as $t;
                let mut out = Vec::new();
                let mut lo = self.start;
                while lo < self.end {
                    let hi = lo.saturating_add(size).min(self.end);
                    out.push(lo..hi);
                    lo = hi;
                }
                out
            }
        }
    )*};
}

range_par_source!(u32, u64, usize);

/// A parallel pipeline: a splittable source plus a per-chunk adaptor
/// stack (`op` turns one chunk into the chunk's output iterator).
pub struct Par<S, F> {
    source: S,
    min_len: usize,
    op: F,
}

/// The pipeline type conversions produce: chunks pass through
/// unchanged until adaptors are stacked on.
pub type BasePar<S> = Par<S, fn(<S as ParSource>::Chunk) -> <S as ParSource>::Chunk>;

fn base<S: ParSource>(source: S) -> BasePar<S> {
    fn identity<C>(c: C) -> C {
        c
    }
    Par { source, min_len: 1, op: identity::<S::Chunk> }
}

/// By-value conversion (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The splittable source backing the pipeline.
    type Source: ParSource;

    /// Consumes `self` into a parallel pipeline.
    fn into_par_iter(self) -> BasePar<Self::Source>;
}

impl<S: ParSource> IntoParallelIterator for S {
    type Source = S;

    fn into_par_iter(self) -> BasePar<S> {
        base(self)
    }
}

/// Shared-reference conversion (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The splittable source backing the pipeline.
    type Source: ParSource;

    /// Parallel iteration over `&self`.
    fn par_iter(&'a self) -> BasePar<Self::Source>;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: ParSource,
{
    type Source = &'a C;

    fn par_iter(&'a self) -> BasePar<&'a C> {
        base(self)
    }
}

/// Exclusive-reference conversion (`par_iter_mut`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The splittable source backing the pipeline.
    type Source: ParSource;

    /// Parallel iteration over `&mut self`.
    fn par_iter_mut(&'a mut self) -> BasePar<Self::Source>;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: ParSource,
{
    type Source = &'a mut C;

    fn par_iter_mut(&'a mut self) -> BasePar<&'a mut C> {
        base(self)
    }
}

impl<S, F, I> Par<S, F>
where
    S: ParSource,
    F: Fn(S::Chunk) -> I + Sync,
    I: Iterator,
    I::Item: Send,
{
    /// Lower bound on items per chunk — rayon's granularity hint.
    /// Inputs smaller than this run inline without spawning threads.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Rayon's `map`.
    pub fn map<G, R>(self, g: G) -> Par<S, impl Fn(S::Chunk) -> std::iter::Map<I, G> + Sync>
    where
        G: Fn(I::Item) -> R + Clone + Sync,
        R: Send,
    {
        let Par { source, min_len, op } = self;
        Par { source, min_len, op: move |c| op(c).map(g.clone()) }
    }

    /// Rayon's `flat_map_iter`: `g` returns a *sequential* iterator
    /// flattened into the chunk's output stream.
    pub fn flat_map_iter<G, U>(
        self,
        g: G,
    ) -> Par<S, impl Fn(S::Chunk) -> std::iter::FlatMap<I, U, G> + Sync>
    where
        G: Fn(I::Item) -> U + Clone + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        let Par { source, min_len, op } = self;
        Par { source, min_len, op: move |c| op(c).flat_map(g.clone()) }
    }

    /// Collects all items, preserving input order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.drive(|it| it.collect::<Vec<_>>()).into_iter().flatten().collect()
    }

    /// Sums all items (chunk partial sums, then a sum of sums).
    pub fn sum<T>(self) -> T
    where
        T: std::iter::Sum<I::Item> + std::iter::Sum<T> + Send,
    {
        self.drive(|it| it.sum::<T>()).into_iter().sum()
    }

    /// Applies `g` to every item.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(I::Item) + Sync,
    {
        self.drive(|it| it.for_each(&g));
    }

    /// Splits the source and runs `per_chunk` over each chunk's output
    /// iterator — on scoped worker threads when more than one chunk
    /// exists, inline otherwise. Chunk results come back in input
    /// order; a worker panic is re-raised on the caller.
    fn drive<T, K>(self, per_chunk: K) -> Vec<T>
    where
        T: Send,
        K: Fn(I) -> T + Sync,
    {
        let Par { source, min_len, op } = self;
        let len = source.len();
        if len == 0 {
            return Vec::new();
        }
        let chunks = num_threads().min(len.div_ceil(min_len)).max(1);
        let parts = source.split(chunks);
        if parts.len() <= 1 {
            return parts.into_iter().map(|c| per_chunk(op(c))).collect();
        }
        thread::scope(|sc| {
            let op = &op;
            let per_chunk = &per_chunk;
            let handles: Vec<_> =
                parts.into_iter().map(|c| sc.spawn(move || per_chunk(op(c)))).collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::{available_parallelism, current, ThreadId};

    #[test]
    fn into_par_iter_on_range_and_vec() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 9900);
        let v: Vec<u32> = vec![3, 1, 2].into_par_iter().collect();
        assert_eq!(v, vec![3, 1, 2]);
    }

    #[test]
    fn par_iter_and_mut_on_slices() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let mut w = vec![1u32, 2, 3];
        w.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(w, vec![11, 12, 13]);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<u32> = vec![1u32, 2].par_iter().flat_map_iter(|&x| vec![x, x]).collect();
        assert_eq!(out, vec![1, 1, 2, 2]);
    }

    #[test]
    fn collect_preserves_order_across_many_chunks() {
        let expected: Vec<usize> = (0..10_000).map(|x| x * 3).collect();
        let got: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 3).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!((0u64..0).into_par_iter().sum::<u64>(), 0);
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().collect();
        assert!(v.is_empty());
    }

    #[test]
    fn one_worker_thread_per_chunk() {
        let threads = available_parallelism().map(|n| n.get()).unwrap_or(1);
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        (0..threads * 4).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(current().id());
        });
        // One chunk per core: a single-core host runs inline on the
        // caller; multi-core hosts use exactly `threads` workers.
        assert_eq!(ids.lock().unwrap().len(), threads);
    }

    #[test]
    fn with_min_len_coalesces_to_inline() {
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        (0..100usize).into_par_iter().with_min_len(100).for_each(|_| {
            ids.lock().unwrap().insert(current().id());
        });
        assert_eq!(*ids.lock().unwrap(), HashSet::from([current().id()]));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| if i == 33 { panic!("boom") } else { i })
            .collect();
    }
}
