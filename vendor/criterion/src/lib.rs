//! Vendored `criterion` API subset — a minimal wall-clock harness.
//!
//! The build environment cannot reach crates.io, so this shim keeps
//! the workspace's ablation benches compiling and producing useful
//! numbers: per-function mean / min / max over a fixed sample count,
//! printed to stdout. There is no statistical analysis, HTML report,
//! or outlier rejection — the cgraph paper-reproduction tables come
//! from `cgraph-bench`'s own harness; these criterion benches are
//! quick comparative ablations.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle passed to each bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { sample_size: 20 }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: one warmup call, then `sample_size` timed
    /// samples of the routine registered via [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size), warmup: true };
        f(&mut bencher); // warmup, untimed
        bencher.warmup = false;
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {name:<40} (no samples — Bencher::iter never called)");
            return self;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        println!(
            "  {name:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
            samples.len()
        );
        self
    }

    /// Ends the group (upstream finalizes reports here; the shim's
    /// output is already printed).
    pub fn finish(self) {}
}

/// Times one closure invocation per sample.
pub struct Bencher {
    samples: Vec<Duration>,
    warmup: bool,
}

impl Bencher {
    /// Runs and times the benchmark routine once (untimed during the
    /// warmup pass).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        if !self.warmup {
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles bench functions under one group name (upstream-compatible
/// call forms with and without a config expression).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_counts_work() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(5);
        group.bench_function("count", |b| {
            b.iter(|| calls.set(calls.get() + 1));
        });
        group.finish();
        // 1 warmup + 5 samples.
        assert_eq!(calls.get(), 6);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("macro-demo");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn macros_compose() {
        demo_group();
    }
}
