//! Vendored `rand` API subset.
//!
//! The build environment cannot reach crates.io, so this crate
//! re-creates the slice of the rand 0.8 API the workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64` via SplitMix64 expansion) and
//! [`seq::SliceRandom::shuffle`]. Generated streams are deterministic
//! per seed but are **not** bit-compatible with upstream rand — the
//! workspace only relies on per-seed determinism, never on specific
//! values.

use std::ops::Range;

/// Core random-word source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Random {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                // Widening multiply: maps 64 random bits onto the span
                // with negligible bias for spans « 2^64.
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + off
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f32::random(rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream rand uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal deterministic generator for testing the trait plumbing.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(1.0f64..3.0);
            assert!((1.0..3.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(7);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = XorShift(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = XorShift(99);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
