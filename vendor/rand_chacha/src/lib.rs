//! Vendored ChaCha8 random-number generator.
//!
//! A faithful ChaCha stream-cipher core (8 rounds) driving the
//! vendored [`rand`] traits. Deterministic per seed and portable
//! across platforms (pure integer arithmetic, little-endian keystream
//! extraction) — exactly the property the graph generators and tests
//! rely on. Streams are **not** bit-compatible with upstream
//! `rand_chacha`; nothing in the workspace depends on specific values,
//! but seeded datasets consequently differ from ones generated with
//! the upstream crate. This break is version-tagged as
//! `cgraph_gen::RNG_STREAM_VERSION` and documented in the README's
//! reproducibility section.

use rand::{RngCore, SeedableRng};

/// The ChaCha8 generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the next keystream block into `buf` and advances the
    /// 64-bit block counter (words 12–13).
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (i, &word) in w.iter().enumerate() {
            self.buf[i] = word.wrapping_add(self.state[i]);
        }
        let (c0, carry) = self.state[12].overflowing_add(1);
        self.state[12] = c0;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        // counter (12–13) and nonce (14–15) start at zero.
        Self { state, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn counter_advances_past_first_block() {
        // 16 u32 words per block; read several blocks and check the
        // stream does not repeat block 0.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn range_sampling_reasonably_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        // Each bucket expects 1000; allow generous slack.
        assert!(counts.iter().all(|&c| (700..1300).contains(&c)), "{counts:?}");
    }
}
