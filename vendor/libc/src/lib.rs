//! Vendored subset of the `libc` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the few foreign items it actually uses: `signal`
//! (SIGPIPE handling in the CLI) and `clock_gettime` with
//! `CLOCK_THREAD_CPUTIME_ID` (per-thread busy-time accounting in
//! `cgraph-comm`). Declarations match the Linux x86-64/aarch64 ABI.

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `long`.
pub type c_long = i64;
/// POSIX `time_t` (64-bit on modern Linux).
pub type time_t = i64;
/// Signal-handler slot: an address-sized integer, so the special
/// values `SIG_DFL`/`SIG_IGN` and real function pointers both fit.
pub type sighandler_t = usize;

/// Default signal disposition.
pub const SIG_DFL: sighandler_t = 0;
/// Ignore-signal disposition.
pub const SIG_IGN: sighandler_t = 1;
/// Broken-pipe signal number (Linux).
pub const SIGPIPE: c_int = 13;
/// Per-thread CPU-time clock id (Linux).
pub const CLOCK_THREAD_CPUTIME_ID: c_int = 3;

/// `struct timespec` as used by `clock_gettime`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `[0, 1e9)`.
    pub tv_nsec: c_long,
}

extern "C" {
    /// POSIX `signal(2)`.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    /// POSIX `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: c_int, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_gettime_thread_cputime_works() {
        let mut ts = timespec::default();
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_nsec < 1_000_000_000);
    }
}
