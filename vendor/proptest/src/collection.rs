//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a sampled length.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A vector whose length is drawn from `len` and whose elements are
/// drawn independently from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_bounds() {
        let strat = vec(0u64..100, 3..17);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..17).contains(&v.len()), "{}", v.len());
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn empty_len_range_yields_start() {
        let strat = vec(0u64..5, 0..0);
        let mut rng = TestRng::from_seed(1);
        assert!(strat.generate(&mut rng).is_empty());
    }
}
