//! `any::<T>()` — canonical full-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value of `Self`.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The full-domain strategy for `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_covers_high_bits() {
        let mut rng = TestRng::from_seed(11);
        let or = (0..64).fold(0u64, |acc, _| acc | u64::arbitrary_value(&mut rng));
        assert_eq!(or.leading_zeros(), 0, "high bits never set: {or:#x}");
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::from_seed(4);
        let vals: Vec<bool> = (0..64).map(|_| bool::arbitrary_value(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
