//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type from a seeded RNG.
///
/// Object safe: the combinators carry `where Self: Sized` so
/// `Box<dyn Strategy<Value = T>>` (see [`BoxedStrategy`]) works, which
/// is what `prop_oneof!` unions over.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derives a second strategy from each generated value — for
    /// dependent inputs such as "an index below the sampled length".
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies of one value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// --- integer and float ranges ---------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty integer range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty integer range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// --- tuples -----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// --- regex-subset string strategies ----------------------------------------

/// One atom of the supported regex subset: a set of candidate chars
/// plus a repetition count range (`min..=max`).
struct RegexAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the supported subset: sequences of literal characters and
/// `[class]` atoms, each optionally followed by `{m}` or `{m,n}`.
/// Classes hold literal chars and `a-b` ranges; no negation, no
/// escapes, no alternation. Panics (with the pattern) on anything else
/// so unsupported patterns fail loudly rather than mis-generate.
fn parse_regex_subset(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                loop {
                    let c = it
                        .next()
                        .unwrap_or_else(|| panic!("unterminated [class] in regex {pattern:?}"));
                    if c == ']' {
                        break;
                    }
                    if it.peek() == Some(&'-') {
                        it.next();
                        let hi = it.next().unwrap_or_else(|| {
                            panic!("unterminated a-b range in regex {pattern:?}")
                        });
                        if hi == ']' {
                            // trailing '-' is a literal
                            set.push(c);
                            set.push('-');
                            break;
                        }
                        assert!(c <= hi, "inverted range {c}-{hi} in regex {pattern:?}");
                        set.extend(c..=hi);
                    } else {
                        set.push(c);
                    }
                }
                assert!(!set.is_empty(), "empty [class] in regex {pattern:?}");
                set
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '|' | '(' | ')' | '\\' | '.' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?} (vendored proptest subset)")
            }
            lit => vec![lit],
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            loop {
                match it.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated {{m,n}} in regex {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad {m,n} lower bound"),
                    n.trim().parse().expect("bad {m,n} upper bound"),
                ),
                None => {
                    let exact: usize = spec.trim().parse().expect("bad {m} count");
                    (exact, exact)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted {{m,n}} in regex {pattern:?}");
        atoms.push(RegexAtom { chars, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_regex_subset(self) {
            let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}
