//! Vendored mini `proptest` — an offline, deterministic subset.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the slice of the proptest API the workspace actually
//! uses: the `Strategy` trait with `prop_map` / `prop_flat_map`,
//! range / tuple / `Just` / union / collection / regex-subset
//! strategies, `any::<T>()`, the `proptest!` macro (including
//! `#![proptest_config(..)]` and both `pat in strategy` and
//! `name: Type` parameter forms), and the `prop_assert*` family.
//!
//! Differences from upstream, by design:
//!
//! - **Deterministic.** Case seeds derive from the test's module path
//!   via a fixed hash — every run, every machine, the same inputs.
//!   `PROPTEST_CASES` overrides the case count; there is no wall-clock
//!   or OS entropy anywhere.
//! - **No shrinking.** On failure the exact inputs and the case seed
//!   are printed; the seed can be committed to the
//!   `proptest-regressions/` corpus, which is replayed before the
//!   random cases on every run.
//! - **Regex strategies** support only the subset the tests use:
//!   sequences of literals and `[class]` atoms with optional `{m}` /
//!   `{m,n}` repetition.

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    /// Upstream's prelude aliases the crate root as `prop` so tests
    /// can write `prop::collection::vec(..)`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                __l,
                __r,
            )));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among the listed strategies (all must share one
/// value type). Upstream's per-arm weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// parameters are either `pattern in strategy` or `name: Type`
/// (sugar for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal: expands each `fn` inside `proptest!` into a runner call.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(
                &__cfg,
                concat!(module_path!(), "::", stringify!($name)),
                stringify!($name),
                file!(),
                |__rng: &mut $crate::test_runner::TestRng| {
                    $crate::__proptest_bind!(__rng, __dbg, $($params)*);
                    let __out = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            $body;
                            ::std::result::Result::Ok(())
                        }),
                    );
                    let __res = match __out {
                        ::std::result::Result::Ok(r) => r,
                        ::std::result::Result::Err(p) => ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::from_panic(p),
                        ),
                    };
                    (__dbg, __res)
                },
            );
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Internal: binds `proptest!` parameters from strategies, recording a
/// debug rendering of every generated value for failure reports.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $dbg:ident, $($params:tt)*) => {
        #[allow(unused_mut)]
        let mut $dbg = ::std::string::String::new();
        $crate::__proptest_bind_inner!($rng, $dbg, $($params)*);
    };
}

/// Internal: tt-muncher over the parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind_inner {
    ($rng:ident, $dbg:ident $(,)?) => {};
    ($rng:ident, $dbg:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_bind_one!($rng, $dbg, $pat, $strat);
        $crate::__proptest_bind_inner!($rng, $dbg, $($rest)*);
    };
    ($rng:ident, $dbg:ident, $pat:pat in $strat:expr) => {
        $crate::__proptest_bind_one!($rng, $dbg, $pat, $strat);
    };
    ($rng:ident, $dbg:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_bind_one!($rng, $dbg, $name, $crate::arbitrary::any::<$ty>());
        $crate::__proptest_bind_inner!($rng, $dbg, $($rest)*);
    };
    ($rng:ident, $dbg:ident, $name:ident : $ty:ty) => {
        $crate::__proptest_bind_one!($rng, $dbg, $name, $crate::arbitrary::any::<$ty>());
    };
}

/// Internal: generates one value, records it, and binds the pattern.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind_one {
    ($rng:ident, $dbg:ident, $pat:pat, $strat:expr) => {
        let __v = $crate::strategy::Strategy::generate(&$strat, $rng);
        if !$dbg.is_empty() {
            $dbg.push_str(", ");
        }
        $dbg.push_str(&format!("{} = {:?}", stringify!($pat), __v));
        let $pat = __v;
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategy_respects_class_and_length() {
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Z]{3,10}", &mut rng);
            assert!((3..=10).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_uppercase()), "{s:?}");
            let t = Strategy::generate(&"[ -~]{0,30}", &mut rng);
            assert!(t.len() <= 30);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..500 {
            let v = Strategy::generate(&(2u64..120), &mut rng);
            assert!((2..120).contains(&v));
            let (a, b, c) = Strategy::generate(&(0u64..10, 5u32..6, 0.0f32..1.0), &mut rng);
            assert!(a < 10 && b == 5 && (0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut r1 = crate::test_runner::TestRng::from_seed(77);
        let mut r2 = crate::test_runner::TestRng::from_seed(77);
        let strat = prop::collection::vec((0u64..50, 0u64..50), 1..20);
        for _ in 0..20 {
            assert_eq!(Strategy::generate(&strat, &mut r1), Strategy::generate(&strat, &mut r2));
        }
    }

    #[test]
    fn oneof_union_covers_all_arms() {
        let strat = prop_oneof![Just(0usize), (1usize..2).prop_map(|x| x), Just(2usize),];
        let mut rng = crate::test_runner::TestRng::from_seed(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_both_param_forms((a, b) in (0u64..100, 0u64..100),
                                        flip: bool,
                                        len in 0usize..8) {
            let sum = if flip { a + b } else { b.wrapping_add(a) };
            prop_assert_eq!(sum, a + b);
            prop_assert!(len < 8, "len {} out of range", len);
            prop_assume!(a != 99); // exercise the reject path
        }

        #[test]
        fn flat_map_dependent_values(pair in (1u64..50).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, below) = pair;
            prop_assert!(below < n);
        }
    }
}
