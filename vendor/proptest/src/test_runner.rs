//! The deterministic case runner, its RNG, and the regression corpus.

use std::any::Any;
use std::path::{Path, PathBuf};

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this shim keeps a CI-friendly
        // bound since every block in the workspace sets it explicitly.
        Self { cases: 64 }
    }
}

/// Why a single case did not pass.
pub enum TestCaseError {
    /// The property failed; the case counts and the test aborts.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Converts a caught panic payload into a failure.
    pub fn from_panic(payload: Box<dyn Any + Send>) -> Self {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "test body panicked (non-string payload)".to_string()
        };
        TestCaseError::Fail(format!("panic: {msg}"))
    }
}

/// Deterministic xoshiro256** generator seeded per case.
///
/// Self-contained (no dependency on the vendored `rand`) so the test
/// framework's stream can never shift when the library RNG evolves.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Expands a 64-bit seed into the full state via SplitMix64.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `0..n` (`n > 0`) via widening multiply.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test's full module path — the fixed per-test base
/// seed. Stable across runs, platforms, and compiler versions.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Location of the regression corpus for a test source file:
/// `proptest-regressions/<file-stem>.txt`, resolved against the crate
/// root (cargo's CWD while running tests).
fn corpus_path(source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    PathBuf::from("proptest-regressions").join(format!("{stem}.txt"))
}

/// Loads the committed seeds for one test. Lines look like
/// `test_name 0xDEADBEEF`; `#` starts a comment; unknown lines are
/// ignored so the format can grow.
fn corpus_seeds(source_file: &str, test_name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(corpus_path(source_file)) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        let mut parts = line.split_whitespace();
        let (Some(name), Some(seed)) = (parts.next(), parts.next()) else {
            continue;
        };
        if name != test_name {
            continue;
        }
        let parsed = match seed.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => seed.parse(),
        };
        if let Ok(s) = parsed {
            seeds.push(s);
        }
    }
    seeds
}

/// One case outcome from the generated closure: the debug rendering of
/// the drawn inputs plus the property result.
pub type CaseOutcome = (String, Result<(), TestCaseError>);

/// Runs one property test: replays the committed regression corpus,
/// then draws `cases` fresh deterministic cases.
pub fn run<F>(cfg: &ProptestConfig, full_name: &str, test_name: &str, source_file: &str, f: F)
where
    F: Fn(&mut TestRng) -> CaseOutcome,
{
    // Replay committed regressions first — these are exact re-runs of
    // previously failing (now fixed) inputs.
    for seed in corpus_seeds(source_file, test_name) {
        let mut rng = TestRng::from_seed(seed);
        let (inputs, result) = f(&mut rng);
        if let Err(TestCaseError::Fail(msg)) = result {
            panic!(
                "proptest regression replay failed: {full_name}\n\
                 seed: {seed:#018x} (from {})\n\
                 inputs: {inputs}\n{msg}",
                corpus_path(source_file).display()
            );
        }
    }

    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases);
    let base = fnv1a(full_name);
    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = cases as u64 * 20 + 100;
    while accepted < cases {
        assert!(
            attempt < max_attempts,
            "proptest: {full_name} rejected too many cases \
             ({accepted}/{cases} accepted after {attempt} attempts) — \
             loosen prop_assume! conditions"
        );
        let seed = splitmix64(base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        attempt += 1;
        let mut rng = TestRng::from_seed(seed);
        let (inputs, result) = f(&mut rng);
        match result {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest case failed: {full_name} (case {accepted}, seed {seed:#018x})\n\
                 inputs: {inputs}\n{msg}\n\
                 To pin this case as a regression, add the line\n  \
                 {test_name} {seed:#018x}\n\
                 to {}",
                corpus_path(source_file).display()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = TestRng::from_seed(123);
        let mut b = TestRng::from_seed(123);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        // below() stays in range and hits both halves.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..200 {
            let v = a.below(10);
            assert!(v < 10);
            if v < 5 {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn runner_counts_rejects_separately() {
        use std::cell::Cell;
        let accepted = Cell::new(0u32);
        let cfg = ProptestConfig::with_cases(10);
        run(&cfg, "shim::reject_half", "reject_half", "no_such_file.rs", |rng| {
            if rng.next_u64() & 1 == 0 {
                (String::new(), Err(TestCaseError::Reject))
            } else {
                accepted.set(accepted.get() + 1);
                (String::new(), Ok(()))
            }
        });
        assert_eq!(accepted.get(), 10);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn runner_panics_on_failure_with_seed() {
        let cfg = ProptestConfig::with_cases(4);
        run(&cfg, "shim::always_fail", "always_fail", "no_such_file.rs", |_| {
            ("x = 1".to_string(), Err(TestCaseError::fail("boom")))
        });
    }

    #[test]
    fn per_test_base_seeds_differ() {
        assert_eq!(fnv1a("cgraph::a"), fnv1a("cgraph::a"));
        assert_ne!(fnv1a("cgraph::a"), fnv1a("cgraph::b"));
        // FNV-1a of the empty string is the offset basis — a pinned
        // anchor guaranteeing the algorithm (and thus every committed
        // regression seed) never silently changes.
        assert_eq!(fnv1a(""), 0xCBF2_9CE4_8422_2325);
    }
}
