//! Vendored `crossbeam-channel` API subset backed by `std::sync::mpsc`.
//!
//! The build environment cannot reach crates.io; the workspace only
//! needs multi-producer/single-consumer unbounded channels with
//! `try_recv`/`recv`/`recv_timeout`, which std's mpsc provides. Types
//! and error enums mirror crossbeam's names so call sites compile
//! unchanged.

use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Sending half of an unbounded channel (clonable).
pub struct Sender<T>(mpsc::Sender<T>);

/// Receiving half of an unbounded channel. Clonable and shareable like
/// crossbeam's (clones contend on a mutex rather than stealing
/// lock-free, which is fine for this workspace's single-consumer
/// channels; extra clones exist only to keep channels alive).
pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Sender<T> {
    /// Sends `value`, failing only when every receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

impl<T> Receiver<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.lock().try_recv()
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.lock().recv()
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.lock().recv_timeout(timeout)
    }

    /// Drains and returns everything currently queued.
    pub fn try_iter(&self) -> std::vec::IntoIter<T> {
        let guard = self.lock();
        let drained: Vec<T> = guard.try_iter().collect();
        drained.into_iter()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_producer_fan_in() {
        let (tx, rx) = unbounded::<u32>();
        let senders: Vec<_> = (0..4).map(|_| tx.clone()).collect();
        let handles: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(i, s)| std::thread::spawn(move || s.send(i as u32).unwrap()))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
    }
}
