//! Vendored `parking_lot` API subset backed by `std::sync`.
//!
//! The build environment cannot reach crates.io, so this crate
//! re-creates the pieces of parking_lot's API the workspace uses —
//! `Mutex`, `Condvar`, `RwLock` with non-poisoning, guard-returning
//! `lock()/read()/write()` — on top of the standard library. Poisoned
//! std locks are treated like parking_lot treats them (no poisoning):
//! the inner guard is extracted and execution continues.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock (parking_lot-style: `lock()` returns the
/// guard directly, no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot-style:
/// `wait` takes `&mut guard`).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed condvar wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0 // parking_lot returns the waiter count; callers here ignore it
    }
}

/// A reader-writer lock (parking_lot-style guards, no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
