//! SDN/QoS routing scenario (§1 of the paper).
//!
//! "In weighted graphs, such as those used in modeling software-
//! defined-networks (SDNs), a path query must be subject to some
//! distance constraints in order to meet quality-of-service latency
//! requirements."
//!
//! This example models a 5000-switch network as a weighted small-world
//! graph (link weight = latency in ms), then answers QoS questions
//! with distance-bounded shortest paths: which switches are reachable
//! from an ingress within a 10 ms latency budget?
//!
//! Run with: `cargo run --release --example sdn_routing`

use cgraph::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    // Build the network: ring-lattice locality + random long links.
    let topo = cgraph::gen::small_world(5_000, 4, 0.05, 4242);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
    let mut edges = EdgeList::with_num_vertices(5_000);
    for e in topo.edges() {
        // Latency: local links 1-3 ms, rewired long-haul links 5-15 ms.
        let ring_dist = (e.dst + 5_000 - e.src) % 5_000;
        let latency =
            if ring_dist <= 4 { rng.gen_range(1.0..3.0) } else { rng.gen_range(5.0..15.0) };
        edges.push(Edge::weighted(e.src, e.dst, latency));
        edges.push(Edge::weighted(e.dst, e.src, latency)); // full duplex
    }

    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));

    let ingress = 0u64;
    println!("network: 5000 switches, {} directed links", edges.len());

    // Exact latency map from the ingress (partition-centric SSSP).
    let dist = sssp(&engine, ingress);
    let reachable = dist.iter().filter(|d| d.is_finite()).count();
    let max_lat = dist.iter().filter(|d| d.is_finite()).fold(0.0f32, |a, &b| a.max(b));
    println!(
        "from switch {ingress}: {reachable} switches reachable, worst-case latency {max_lat:.1} ms"
    );

    // QoS-constrained queries: latency budgets of 5/10/20 ms. The
    // bounded traversal never expands past the budget (the paper's
    // "distance constraints" on path queries).
    for budget in [5.0f32, 10.0, 20.0] {
        let within = sssp_within(&engine, ingress, budget);
        let n = within.iter().filter(|d| d.is_finite()).count();
        println!(
            "  ≤ {budget:>4.0} ms budget: {n:>4} switches \
             ({:.1}% of network)",
            100.0 * n as f64 / 5_000.0
        );
    }

    // Unweighted k-hop is the hop-budget analogue used for fast
    // feasibility pre-checks (is the target within 3 switch hops?).
    let hops3 = khop_count(&engine, ingress, 3);
    println!("\nfeasibility pre-check: {hops3} switches within 3 hops of ingress");

    // Consistency: every switch within the 5 ms budget must also be
    // within the 20 ms budget.
    let within5 = sssp_within(&engine, ingress, 5.0);
    let within20 = sssp_within(&engine, ingress, 20.0);
    let consistent =
        within5.iter().zip(&within20).all(|(a, b)| !a.is_finite() || (b.is_finite() && b <= a));
    assert!(consistent, "budget monotonicity violated");
    println!("budget monotonicity check passed");
}
