//! Interactive query shell over a C-Graph engine — the multi-user
//! database surface of the paper's §2, as a REPL.
//!
//! Run with: `cargo run --release --example query_shell`
//! Then type statements such as:
//!
//! ```text
//! STATS
//! KHOP 5 3
//! KHOP 5 3 LIST 4
//! REACHABLE 5 900 2
//! SSSP 5 4
//! PAGERANK 10
//! COMPONENTS
//! KCORE 8
//! ```
//!
//! Pipe a file of statements to execute them as one concurrent wave:
//! `cat queries.txt | cargo run --release --example query_shell`

use cgraph::prelude::*;
use cgraph_ql::{parse_program, Session};
use std::io::{BufRead, IsTerminal, Write};

fn main() {
    let raw = cgraph::gen::graph500(12, 16, 3);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    let session = Session::new(&engine);
    eprintln!(
        "cgraph shell: {} vertices, {} edges on 3 machines — type HELP or a statement",
        edges.num_vertices(),
        edges.len()
    );

    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    if interactive {
        // One statement at a time, prompt-driven.
        loop {
            eprint!("cgraph> ");
            std::io::stderr().flush().ok();
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            let trimmed = line.trim();
            if trimmed.eq_ignore_ascii_case("quit") || trimmed.eq_ignore_ascii_case("exit") {
                break;
            }
            if trimmed.eq_ignore_ascii_case("help") {
                eprintln!(
                    "statements: KHOP s k [LIST n] | BFS s | REACHABLE s t k | \
                     SSSP s [bound] | PAGERANK n | COMPONENTS | KCORE k | STATS"
                );
                continue;
            }
            match cgraph_ql::parse(trimmed) {
                Ok(q) => {
                    let a = session.execute(q);
                    println!("{}  ({:?})", a.output, a.response_time);
                }
                Err(e) => eprintln!("error: {e}"),
            }
        }
    } else {
        // Batch mode: the whole input is one concurrent wave.
        let mut program = String::new();
        for line in stdin.lock().lines() {
            program.push_str(&line.expect("stdin"));
            program.push('\n');
        }
        match parse_program(&program) {
            Ok(queries) => {
                let n = queries.len();
                let answers = session.execute_batch(queries);
                for a in &answers {
                    println!("[{}] {}  ({:?})", a.index, a.output, a.response_time);
                }
                eprintln!("{n} statements answered as one concurrent wave");
            }
            Err(e) => {
                eprintln!("parse error: {e}");
                std::process::exit(1);
            }
        }
    }
}
