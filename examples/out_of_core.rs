//! Out-of-core traversal demo (§3: "a subgraph shard does not
//! necessarily need to fit in memory; as a result, the I/O cost may
//! also involve local disk I/O").
//!
//! Builds a blocked edge-set graph, persists it tile-by-tile to disk,
//! and runs the same k-hop query through an LRU tile cache at several
//! capacities — showing how consolidation and cache size trade I/O
//! operations for memory, exactly the §3.2 argument for consolidating
//! small edge-sets.
//!
//! Run with: `cargo run --release --example out_of_core`

use cgraph::graph::types::VertexRange;
use cgraph::graph::{ConsolidationPolicy, EdgeSetGraph, TileCache, TileStore};
use cgraph::prelude::*;

fn main() {
    // A social-style graph, blocked into deliberately small tiles so
    // the I/O structure is visible.
    let raw = cgraph::gen::graph500(13, 12, 31);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let span = VertexRange::new(0, edges.num_vertices());
    println!("graph: {} vertices, {} edges", edges.num_vertices(), edges.len());

    let fine = EdgeSetGraph::build(edges.edges(), span, span, ConsolidationPolicy::grid(1 << 10));
    let consolidated = EdgeSetGraph::build(
        edges.edges(),
        span,
        span,
        ConsolidationPolicy {
            target_edges_per_set: 1 << 10,
            min_edges_per_set: 1 << 14,
            horizontal: true,
            vertical: true,
        },
    );
    println!(
        "tiles: fine grid {} vs consolidated {}",
        fine.sets().len(),
        consolidated.sets().len()
    );

    let dir = std::env::temp_dir();
    for (name, graph) in [("fine", &fine), ("consolidated", &consolidated)] {
        let path = dir.join(format!("cgraph-ooc-{}-{name}.tiles", std::process::id()));
        let store = TileStore::create(&path, graph).expect("persist tiles");
        println!("\n[{name}] {} tiles persisted to {}", store.num_tiles(), path.display());
        for cache_tiles in [2usize, 8, 32] {
            let mut cache = TileCache::new(TileStore::open(&path).expect("reopen"), cache_tiles);
            let (visited, io) = cache.ooc_khop(0, 3).expect("ooc traversal");
            println!(
                "  cache {cache_tiles:>2} tiles: 3-hop visited {visited}, \
                 {} loads / {} hits ({} KiB read, {} evictions)",
                io.loads,
                io.hits,
                io.bytes_read / 1024,
                io.evictions
            );
        }
        std::fs::remove_file(&path).ok();
    }

    println!(
        "\nconsolidation cuts tile I/O operations for the same traversal — \
         the §3.2 rationale for merging small edge-sets."
    );
}
