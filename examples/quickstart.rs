//! Quickstart: build a graph, start a simulated cluster, run a batch
//! of concurrent k-hop queries, and inspect the results.
//!
//! Run with: `cargo run --release --example quickstart`

use cgraph::prelude::*;

fn main() {
    // 1. Generate a social-style graph (Graph 500 Kronecker: heavy
    //    tail, small diameter) and clean it (dedup, drop loops).
    let raw = cgraph::gen::graph500(12, 16, 7);
    let mut builder = GraphBuilder::new();
    builder.add_edge_list(&raw);
    let edges = builder.build().edges;
    println!("graph: {} vertices, {} edges", edges.num_vertices(), edges.len());

    // 2. Build the C-Graph engine over a 3-machine simulated cluster:
    //    range partitioning balanced by edges, edge-set blocked shards.
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3));
    for shard in engine.shards() {
        println!(
            "machine {}: vertices {:?}, {} out-edges, {} edge-set tiles, {} boundary vertices",
            shard.id(),
            (shard.local_range().start, shard.local_range().end),
            shard.num_out_edges(),
            shard.out_sets().sets().len(),
            shard.boundary_vertices().len()
        );
    }

    // 3. Issue 128 concurrent 3-hop queries. The scheduler packs them
    //    into 64-lane bit-frontier batches that share every edge scan.
    let queries: Vec<KhopQuery> =
        (0..128).map(|i| KhopQuery::single(i, (i as u64 * 31) % edges.num_vertices(), 3)).collect();
    let results = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);

    // 4. Summarize.
    let stats = ResponseStats::new(results.iter().map(|r| r.response_time).collect());
    let total_visited: u64 = results.iter().map(|r| r.visited).sum();
    println!(
        "\n128 concurrent 3-hop queries: mean response {:?}, max {:?}",
        stats.mean(),
        stats.max()
    );
    println!("total vertices visited across queries: {total_visited}");
    let r0 = &results[0];
    println!("query 0: visited {} vertices; per-hop discoveries {:?}", r0.visited, r0.per_level);

    // 5. The same engine also runs iterative analytics (Listing 3 GAS).
    let ranks = pagerank(&engine, 10);
    let (top_v, top_r) =
        ranks.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
    println!("\nPageRank (10 iters): top vertex {top_v} with rank {top_r:.2}");
}
