//! Multi-user query-server scenario (§2 and §4.2 of the paper).
//!
//! "In enterprise applications, a system usually has to gracefully
//! handle multiple queries at the same time." The paper grades
//! response times against human-perception thresholds: instantaneous
//! (≤0.2 s), interactive (≤2 s), attention-keeping (≤10 s).
//!
//! This example simulates three waves of users issuing 3-hop queries
//! against a shared social graph, and grades every wave against those
//! thresholds — comparing C-Graph's shared batches with the serialized
//! fallback a non-concurrent engine forces.
//!
//! Run with: `cargo run --release --example concurrent_server`

use cgraph::prelude::*;
use std::time::Duration;

fn grade(stats: &ResponseStats) -> String {
    // The paper's UX thresholds, scaled 100× down with the dataset
    // (§4.1 graphs are ~100–500× larger than our analogues).
    let instant = Duration::from_millis(2);
    let interactive = Duration::from_millis(20);
    format!(
        "{:>4.0}% instantaneous, {:>4.0}% interactive, max {:?}",
        stats.fraction_within(instant) * 100.0,
        stats.fraction_within(interactive) * 100.0,
        stats.max()
    )
}

fn main() {
    let raw = cgraph::gen::graph500(13, 16, 2024);
    let mut b = GraphBuilder::new();
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let engine = DistributedEngine::new(&edges, EngineConfig::new(3).traversal_only());
    println!(
        "serving graph: {} vertices, {} edges on 3 machines\n",
        edges.num_vertices(),
        edges.len()
    );

    for wave in [10usize, 50, 150] {
        let queries: Vec<KhopQuery> = (0..wave)
            .map(|i| KhopQuery::single(i, (i as u64 * 131) % edges.num_vertices(), 3))
            .collect();

        let shared = QueryScheduler::new(&engine, SchedulerConfig::default());
        let res = shared.execute(&queries);
        let stats = ResponseStats::new(res.iter().map(|r| r.response_time).collect());
        println!("wave of {wave:>3} users (shared batches): {}", grade(&stats));

        let serial = QueryScheduler::new(&engine, SchedulerConfig::serial());
        let res = serial.execute(&queries);
        let stats = ResponseStats::new(res.iter().map(|r| r.response_time).collect());
        println!("wave of {wave:>3} users (serialized)    : {}\n", grade(&stats));
    }

    println!(
        "shared batches keep the whole wave inside the interactive budget; \
         serialization pushes tail users past it — the paper's Fig. 8b/13 story."
    );
}
