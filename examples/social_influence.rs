//! Social-network influence scenario (§1 of the paper).
//!
//! "In recommendation systems, information about neighbors is analyzed
//! in order to predict the user's interests … the influence of a
//! vertex usually decreases as the number of hops increases.
//! Therefore, for most applications, potential candidates will be
//! found within a small number of hops."
//!
//! This example grows a preferential-attachment friendship graph,
//! issues concurrent 2-hop candidate queries for a set of users, and
//! scores candidates by inverse hop distance.
//!
//! Run with: `cargo run --release --example social_influence`

use cgraph::prelude::*;

fn main() {
    // A 20K-user friendship network with power-law popularity.
    let raw = cgraph::gen::pref_attach(20_000, 6, 99);
    let mut b = GraphBuilder::with_options(BuildOptions {
        symmetrize: true, // friendships are mutual
        ..Default::default()
    });
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let engine = DistributedEngine::new(&edges, EngineConfig::new(2).traversal_only());

    // 64 users ask "who is in my small world?" simultaneously — one
    // bit-frontier batch.
    let users: Vec<u64> = (0..64u64).map(|i| i * 311 % 20_000).collect();
    let queries: Vec<KhopQuery> =
        users.iter().enumerate().map(|(i, &u)| KhopQuery::single(i, u, 2)).collect();
    let results = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);

    println!("user  | friends (1-hop) | friends-of-friends (2-hop) | influence reach");
    println!("------+-----------------+----------------------------+----------------");
    for (i, r) in results.iter().take(10).enumerate() {
        let one_hop = r.per_level.get(1).copied().unwrap_or(0);
        let two_hop = r.per_level.get(2).copied().unwrap_or(0);
        // Influence score: hop-1 candidates weigh 1.0, hop-2 weigh 0.5
        // ("the influence of a vertex decreases as hops increase").
        let score = one_hop as f64 + 0.5 * two_hop as f64;
        println!("{:>5} | {:>15} | {:>26} | {:>14.1}", users[i], one_hop, two_hop, score);
    }

    // Aggregate: how much of the network is inside the 2-hop small
    // world, on average? (The six-degrees effect at work.)
    let mean_reach: f64 = results.iter().map(|r| r.visited as f64).sum::<f64>()
        / results.len() as f64
        / edges.num_vertices() as f64;
    println!(
        "\naverage 2-hop reach: {:.1}% of the whole network ({} users)",
        mean_reach * 100.0,
        edges.num_vertices()
    );

    // Cross-check with the hop plot: effective diameter of this graph.
    let hp = hop_plot(&engine, 32, 1);
    println!(
        "effective diameter: δ0.5 = {:.2}, δ0.9 = {:.2} (small world ⇒ small k suffices)",
        hp.effective_diameter(0.5),
        hp.effective_diameter(0.9)
    );
}
