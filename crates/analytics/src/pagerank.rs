//! PageRank drivers over the Listing 3 GAS program.

use cgraph_core::engine::DistributedEngine;
use cgraph_core::gas::PageRank;

/// Runs a fixed number of PageRank iterations (the paper runs 10 for
/// its performance comparisons) and returns the vertex values.
pub fn pagerank(engine: &DistributedEngine, iterations: u32) -> Vec<f64> {
    engine.run_gas(&PageRank::default(), iterations).values
}

/// Iterates until the L1 delta between successive value vectors drops
/// below `epsilon`, up to `max_iterations`. Returns `(values, iters)`.
///
/// The convergence loop re-runs the engine in growing chunks; the
/// residual check happens outside the cluster, mirroring a driver
/// process polling a deployed job.
pub fn pagerank_converged(
    engine: &DistributedEngine,
    epsilon: f64,
    max_iterations: u32,
) -> (Vec<f64>, u32) {
    let mut prev = engine.run_gas(&PageRank::default(), 1).values;
    let mut iters = 1;
    while iters < max_iterations {
        let next = engine.run_gas(&PageRank::default(), iters + 1).values;
        let delta: f64 = prev.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        prev = next;
        iters += 1;
        if delta < epsilon {
            break;
        }
    }
    (prev, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::EdgeList;

    #[test]
    fn hub_outranks_leaves() {
        // Star pointing in: 1..=5 -> 0.
        let g: EdgeList = (1..=5u64).map(|v| (v, 0u64)).collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let r = pagerank(&e, 15);
        for v in 1..=5 {
            assert!(r[0] > r[v], "hub must outrank leaf {v}");
        }
    }

    #[test]
    fn converged_stops_early_on_ring() {
        // A ring is already at its fixed point after one iteration.
        let g: EdgeList = (0..8u64).map(|v| (v, (v + 1) % 8)).collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let (r, iters) = pagerank_converged(&e, 1e-9, 50);
        assert!(iters < 10, "ring converges fast, took {iters}");
        assert!(r.iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }
}
