//! High-level k-hop helpers over the engine.

use cgraph_core::engine::DistributedEngine;
use cgraph_graph::bitmap::LANES;
use cgraph_graph::VertexId;

/// Vertices reachable within `k` hops of `source` (source included).
pub fn khop_count(engine: &DistributedEngine, source: VertexId, k: u32) -> u64 {
    engine.run_traversal_batch(&[source], &[k]).unwrap().per_lane_visited[0]
}

/// Batched k-hop counts for many sources, exploiting lane sharing.
/// Returns one count per source, in order.
pub fn khop_counts_batch(engine: &DistributedEngine, sources: &[VertexId], k: u32) -> Vec<u64> {
    let mut out = Vec::with_capacity(sources.len());
    for chunk in sources.chunks(LANES) {
        let ks = vec![k; chunk.len()];
        let r = engine.run_traversal_batch(chunk, &ks).unwrap();
        out.extend(r.per_lane_visited);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::EdgeList;

    #[test]
    fn batch_matches_singles() {
        let g = cgraph_gen::graph500(8, 6, 21);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let sources: Vec<u64> = (0..70u64).collect(); // spans 2 batches
        let batched = khop_counts_batch(&e, &sources, 2);
        for (i, &src) in sources.iter().enumerate().step_by(17) {
            assert_eq!(batched[i], khop_count(&e, src, 2), "src {src}");
        }
    }

    #[test]
    fn k_zero_is_just_the_source() {
        let g: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(1));
        assert_eq!(khop_count(&e, 0, 0), 1);
    }
}
