//! Weakly connected components by partition-centric label propagation.
//!
//! Every vertex starts labelled with its own ID; each superstep a
//! vertex adopts the minimum label among itself and its (in + out)
//! neighbours, and boundary improvements travel by `sendTo`. At the
//! fixed point two vertices share a label iff they are weakly
//! connected. Requires shards built with in-edges (the default
//! [`cgraph_core::EngineConfig`]).

use cgraph_core::engine::DistributedEngine;
use cgraph_core::pcm::{PartitionCtx, PartitionProgram};
use cgraph_graph::VertexId;

struct WccProgram {
    label: Vec<u64>,
    base: VertexId,
    frontier: Vec<VertexId>,
}

impl WccProgram {
    fn improve(&mut self, v: VertexId, label: u64) -> bool {
        let l = (v - self.base) as usize;
        if label < self.label[l] {
            self.label[l] = label;
            true
        } else {
            false
        }
    }
}

impl PartitionProgram for WccProgram {
    type Out = Vec<u64>;

    fn init(&mut self, ctx: &mut PartitionCtx<'_>) {
        self.base = ctx.shard().local_range().start;
        self.label = ctx.local_vertices().collect();
        self.frontier = ctx.local_vertices().collect();
    }

    fn compute(&mut self, ctx: &mut PartitionCtx<'_>, incoming: &[(VertexId, u64)]) {
        for &(v, label) in incoming {
            if self.improve(v, label) {
                self.frontier.push(v);
            }
        }
        let frontier = std::mem::take(&mut self.frontier);
        for v in frontier {
            let label = self.label[(v - self.base) as usize];
            // Propagate across both edge directions: weak connectivity
            // ignores orientation.
            let outs = ctx.out_neighbors(v);
            let ins: Vec<VertexId> = ctx.in_neighbors(v).to_vec();
            for t in outs.into_iter().chain(ins) {
                if ctx.is_local_vertex(t) {
                    if self.improve(t, label) {
                        self.frontier.push(t);
                    }
                } else {
                    ctx.send_to(t, label);
                }
            }
        }
        if self.frontier.is_empty() {
            ctx.vote_to_halt();
        }
    }

    fn finish(self, _ctx: &PartitionCtx<'_>) -> Vec<u64> {
        self.label
    }
}

/// Component label per vertex (the minimum vertex ID in each weakly
/// connected component).
pub fn weakly_connected_components(engine: &DistributedEngine) -> Vec<u64> {
    let outs =
        engine.run_program(|_| WccProgram { label: Vec::new(), base: 0, frontier: Vec::new() });
    let mut labels = vec![0u64; engine.num_vertices() as usize];
    for (i, local) in outs.into_iter().enumerate() {
        let range = engine.partition().range(i);
        for (l, lab) in local.into_iter().enumerate() {
            labels[(range.start + l as u64) as usize] = lab;
        }
    }
    labels
}

/// Number of distinct components in a label vector.
pub fn num_components(labels: &[u64]) -> usize {
    let mut sorted: Vec<u64> = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::EdgeList;

    #[test]
    fn two_components() {
        // chain 0->1->2 and directed pair 4->3 (weakly connected), 5 isolated
        let mut g: EdgeList = [(0u64, 1u64), (1, 2), (4, 3)].into_iter().collect();
        g.set_num_vertices(6);
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let labels = weakly_connected_components(&e);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(num_components(&labels), 3);
    }

    #[test]
    fn direction_ignored() {
        // 0 -> 1 <- 2: weakly one component despite no directed path
        // 0 -> 2.
        let g: EdgeList = [(0u64, 1u64), (2, 1)].into_iter().collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let labels = weakly_connected_components(&e);
        assert_eq!(num_components(&labels), 1);
    }

    #[test]
    fn machine_count_invariant() {
        let g = cgraph_gen::graph500(7, 4, 33);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let l1 = weakly_connected_components(&DistributedEngine::new(&g, EngineConfig::new(1)));
        let l4 = weakly_connected_components(&DistributedEngine::new(&g, EngineConfig::new(4)));
        assert_eq!(l1, l4);
    }
}
