//! Single-source shortest paths as a partition-centric program.
//!
//! §2 names SSSP as the canonical value-accumulating traversal; the
//! introduction motivates *distance-constrained* path queries for
//! SDN/QoS routing ("a path query must be subject to some distance
//! constraints in order to meet quality-of-service latency
//! requirements"). Both are served here: [`sssp`] computes exact
//! distances, [`sssp_within`] restricts relaxation to a distance budget
//! so the traversal stays local — the weighted analogue of k-hop.
//!
//! The implementation is a Bellman-Ford-style label-correcting program
//! on the Listing 1 API: each superstep relaxes the local frontier and
//! `sendTo`s improved distances of boundary vertices (`f32` distance
//! bits packed in the message word).

use cgraph_core::engine::DistributedEngine;
use cgraph_core::pcm::{PartitionCtx, PartitionProgram};
use cgraph_graph::VertexId;

struct SsspProgram {
    source: VertexId,
    /// Distance bound (f32::INFINITY = unbounded).
    bound: f32,
    /// dist[local vertex] — owned per partition.
    dist: Vec<f32>,
    base: VertexId,
    /// Locally-owned vertices whose distance improved this superstep.
    frontier: Vec<VertexId>,
}

impl SsspProgram {
    fn relax(&mut self, v: VertexId, d: f32) -> bool {
        let l = (v - self.base) as usize;
        if d < self.dist[l] && d <= self.bound {
            self.dist[l] = d;
            true
        } else {
            false
        }
    }
}

impl PartitionProgram for SsspProgram {
    type Out = Vec<f32>;

    fn init(&mut self, ctx: &mut PartitionCtx<'_>) {
        self.base = ctx.shard().local_range().start;
        self.dist = vec![f32::INFINITY; ctx.shard().num_local()];
        if ctx.is_local_vertex(self.source) {
            self.relax(self.source, 0.0);
            self.frontier.push(self.source);
        } else {
            ctx.vote_to_halt();
        }
    }

    fn compute(&mut self, ctx: &mut PartitionCtx<'_>, incoming: &[(VertexId, u64)]) {
        // Absorb remote relaxations.
        for &(v, bits) in incoming {
            let d = f32::from_bits(bits as u32);
            if self.relax(v, d) {
                self.frontier.push(v);
            }
        }
        // Expand the local frontier.
        let frontier = std::mem::take(&mut self.frontier);
        for v in frontier {
            let dv = self.dist[(v - self.base) as usize];
            for (t, w) in ctx.out_neighbors_weighted(v) {
                let nd = dv + w;
                if nd > self.bound {
                    continue;
                }
                if ctx.is_local_vertex(t) {
                    if self.relax(t, nd) {
                        self.frontier.push(t);
                    }
                } else {
                    ctx.send_to(t, f32::to_bits(nd) as u64);
                }
            }
        }
        if self.frontier.is_empty() {
            ctx.vote_to_halt();
        }
    }

    fn finish(self, _ctx: &PartitionCtx<'_>) -> Vec<f32> {
        self.dist
    }
}

fn run(engine: &DistributedEngine, source: VertexId, bound: f32) -> Vec<f32> {
    let outs = engine.run_program(|_| SsspProgram {
        source,
        bound,
        dist: Vec::new(),
        base: 0,
        frontier: Vec::new(),
    });
    let mut dist = vec![f32::INFINITY; engine.num_vertices() as usize];
    for (i, local) in outs.into_iter().enumerate() {
        let range = engine.partition().range(i);
        for (l, d) in local.into_iter().enumerate() {
            dist[(range.start + l as u64) as usize] = d;
        }
    }
    dist
}

/// Exact shortest-path distances from `source` (∞ for unreachable).
pub fn sssp(engine: &DistributedEngine, source: VertexId) -> Vec<f32> {
    run(engine, source, f32::INFINITY)
}

/// Shortest-path distances truncated at `bound`: vertices farther than
/// the budget stay at ∞ and the traversal never expands past them —
/// the QoS-constrained query of §1.
pub fn sssp_within(engine: &DistributedEngine, source: VertexId, bound: f32) -> Vec<f32> {
    run(engine, source, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::{Edge, EdgeList};

    fn weighted_graph() -> EdgeList {
        // 0 -1-> 1 -1-> 2, plus a heavy shortcut 0 -5-> 2 and a branch
        // 2 -2-> 3.
        let mut g = EdgeList::new();
        g.push(Edge::weighted(0, 1, 1.0));
        g.push(Edge::weighted(1, 2, 1.0));
        g.push(Edge::weighted(0, 2, 5.0));
        g.push(Edge::weighted(2, 3, 2.0));
        g
    }

    #[test]
    fn exact_distances() {
        let g = weighted_graph();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let d = sssp(&e, 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0, "two unit hops beat the weight-5 shortcut");
        assert_eq!(d[3], 4.0);
    }

    #[test]
    fn bounded_query_prunes() {
        let g = weighted_graph();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let d = sssp_within(&e, 0, 2.5);
        assert_eq!(d[2], 2.0);
        assert!(d[3].is_infinite(), "3 is at distance 4 > bound");
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut g = weighted_graph();
        g.set_num_vertices(6);
        let e = DistributedEngine::new(&g, EngineConfig::new(3));
        let d = sssp(&e, 0);
        assert!(d[5].is_infinite());
    }

    #[test]
    fn machine_count_invariant() {
        let g = cgraph_gen::graph500(7, 6, 9);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let d1 = sssp(&DistributedEngine::new(&g, EngineConfig::new(1)), 0);
        let d3 = sssp(&DistributedEngine::new(&g, EngineConfig::new(3)), 0);
        assert_eq!(d1, d3);
    }
}
