//! k-core decomposition as a partition-centric program.
//!
//! The coreness of a vertex is the largest k such that the vertex
//! belongs to a subgraph where every vertex has degree ≥ k. Core
//! decomposition is a classic "higher-level analysis" built from
//! neighbourhood information (the paper's §5 cites core decomposition
//! in large temporal graphs as adjacent work) and exercises a pattern
//! the traversal engines don't: *iterative peeling with monotone
//! decreasing values*.
//!
//! Implementation: the distributed Montresor et al. style algorithm.
//! Every vertex holds an upper bound on its coreness (initially its
//! undirected degree) and repeatedly lowers it to the largest k such
//! that at least k neighbours have bound ≥ k; every change is pushed
//! to neighbours. Fixed point = exact coreness.

use cgraph_core::engine::DistributedEngine;
use cgraph_core::pcm::{PartitionCtx, PartitionProgram};
use cgraph_graph::VertexId;
use std::collections::HashMap;

struct KCoreProgram {
    /// bound[local] — current coreness upper bound.
    bound: Vec<u32>,
    /// Last bound received from each in/out neighbour, per local vertex.
    neighbor_bounds: Vec<HashMap<VertexId, u32>>,
    base: VertexId,
    /// Undirected neighbour lists (out ∪ in), precomputed.
    neighbors: Vec<Vec<VertexId>>,
}

impl KCoreProgram {
    /// Largest k with ≥ k neighbours whose known bound is ≥ k.
    fn recompute(&self, l: usize) -> u32 {
        let degree = self.neighbors[l].len() as u32;
        let me = self.bound[l].min(degree);
        // Count, for each candidate k ≤ me, neighbours with bound ≥ k
        // via a histogram clip — O(deg).
        let mut hist = vec![0u32; me as usize + 1];
        for t in &self.neighbors[l] {
            let b = self.neighbor_bounds[l].get(t).copied().unwrap_or(u32::MAX).min(me);
            hist[b as usize] += 1;
        }
        let mut at_least = 0u32;
        for k in (1..=me).rev() {
            at_least += hist[k as usize];
            if at_least >= k {
                return k;
            }
        }
        0
    }

    fn pack(v: VertexId, bound: u32) -> u64 {
        debug_assert!(v < (1 << 32), "k-core message packing supports < 2^32 vertices");
        (v << 32) | bound as u64
    }

    fn unpack(word: u64) -> (VertexId, u32) {
        (word >> 32, (word & 0xFFFF_FFFF) as u32)
    }
}

impl PartitionProgram for KCoreProgram {
    type Out = Vec<u32>;

    fn init(&mut self, ctx: &mut PartitionCtx<'_>) {
        self.base = ctx.shard().local_range().start;
        let n = ctx.shard().num_local();
        self.neighbors = ctx
            .local_vertices()
            .map(|v| {
                let mut ns = ctx.out_neighbors(v);
                ns.extend_from_slice(ctx.in_neighbors(v));
                ns.sort_unstable();
                ns.dedup();
                ns.retain(|&t| t != v);
                ns
            })
            .collect();
        self.bound = (0..n).map(|l| self.neighbors[l].len() as u32).collect();
        self.neighbor_bounds = vec![HashMap::new(); n];
        // Announce initial bounds to all neighbours.
        for l in 0..n {
            let v = self.base + l as VertexId;
            for &t in &self.neighbors[l].clone() {
                ctx.send_to(t, Self::pack(v, self.bound[l]));
            }
        }
    }

    fn compute(&mut self, ctx: &mut PartitionCtx<'_>, incoming: &[(VertexId, u64)]) {
        // Record neighbour bound updates.
        let mut touched: Vec<usize> = Vec::new();
        for &(dst, word) in incoming {
            let (src, b) = Self::unpack(word);
            let l = (dst - self.base) as usize;
            let slot = self.neighbor_bounds[l].entry(src).or_insert(u32::MAX);
            if b < *slot {
                *slot = b;
                touched.push(l);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        // Re-evaluate touched vertices; push changes.
        let mut sends: Vec<(VertexId, u64)> = Vec::new();
        for l in touched {
            let new = self.recompute(l);
            if new < self.bound[l] {
                self.bound[l] = new;
                let v = self.base + l as VertexId;
                for &t in &self.neighbors[l] {
                    sends.push((t, Self::pack(v, new)));
                }
            }
        }
        for (t, w) in sends {
            ctx.send_to(t, w);
        }
        ctx.vote_to_halt();
    }

    fn finish(self, _ctx: &PartitionCtx<'_>) -> Vec<u32> {
        self.bound
    }
}

/// Exact coreness of every vertex (over the undirected view of the
/// graph). Requires shards built with in-edges (default config).
pub fn kcore_decomposition(engine: &DistributedEngine) -> Vec<u32> {
    let outs = engine.run_program(|_| KCoreProgram {
        bound: Vec::new(),
        neighbor_bounds: Vec::new(),
        base: 0,
        neighbors: Vec::new(),
    });
    let mut core = vec![0u32; engine.num_vertices() as usize];
    for (i, local) in outs.into_iter().enumerate() {
        let range = engine.partition().range(i);
        for (l, c) in local.into_iter().enumerate() {
            core[(range.start + l as u64) as usize] = c;
        }
    }
    core
}

/// Reference sequential peeling (tests): repeatedly remove vertices of
/// minimum remaining degree.
pub fn kcore_reference(engine: &DistributedEngine) -> Vec<u32> {
    let n = engine.num_vertices() as usize;
    // Build undirected adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for shard in engine.shards() {
        for v in shard.local_range().iter() {
            for t in shard.out_neighbors(v) {
                if t != v {
                    adj[v as usize].push(t as usize);
                    adj[t as usize].push(v as usize);
                }
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    for k in 0.. {
        // Peel everything with degree ≤ k.
        let mut queue: Vec<usize> =
            order.iter().copied().filter(|&v| !removed[v] && degree[v] <= k).collect();
        if queue.is_empty() {
            if order.iter().all(|&v| removed[v]) {
                break;
            }
            continue;
        }
        while let Some(v) = queue.pop() {
            if removed[v] {
                continue;
            }
            removed[v] = true;
            core[v] = k as u32;
            for &t in &adj[v] {
                if !removed[t] {
                    degree[t] -= 1;
                    if degree[t] <= k {
                        queue.push(t);
                    }
                }
            }
        }
        order.retain(|&v| !removed[v]);
        if order.is_empty() {
            break;
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::EdgeList;

    #[test]
    fn triangle_plus_tail() {
        // Triangle 0-1-2 (core 2) with a tail 2-3 (vertex 3: core 1).
        let g: EdgeList = [(0u64, 1u64), (1, 2), (2, 0), (2, 3)].into_iter().collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let core = kcore_decomposition(&e);
        assert_eq!(core, vec![2, 2, 2, 1]);
    }

    #[test]
    fn clique_core_is_n_minus_1() {
        let mut g = EdgeList::new();
        for i in 0..5u64 {
            for j in (i + 1)..5 {
                g.push_pair(i, j);
            }
        }
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let core = kcore_decomposition(&e);
        assert!(core.iter().all(|&c| c == 4), "{core:?}");
    }

    #[test]
    fn path_core_is_1() {
        let g: EdgeList = [(0u64, 1u64), (1, 2), (2, 3)].into_iter().collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        assert!(kcore_decomposition(&e).iter().all(|&c| c == 1));
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let raw = cgraph_gen::graph500(8, 5, 19);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&raw);
        let g = b.build().edges;
        let e = DistributedEngine::new(&g, EngineConfig::new(3));
        assert_eq!(kcore_decomposition(&e), kcore_reference(&e));
    }

    #[test]
    fn machine_count_invariant() {
        let raw = cgraph_gen::erdos_renyi(100, 500, 3);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&raw);
        let g = b.build().edges;
        let c1 = kcore_decomposition(&DistributedEngine::new(&g, EngineConfig::new(1)));
        let c4 = kcore_decomposition(&DistributedEngine::new(&g, EngineConfig::new(4)));
        assert_eq!(c1, c4);
    }
}
