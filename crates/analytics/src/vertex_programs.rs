//! Ready-made vertex-centric programs (§3.3's "vertex-centric model").
//!
//! These are the classic Pregel formulations, exposed as reusable
//! building blocks for users who prefer per-vertex thinking over the
//! partition-centric API. They intentionally duplicate algorithms the
//! optimized engine paths already provide (BFS depths, components) —
//! the duplication is the point: the same answer from an independent
//! model is both a teaching aid and a cross-check (the integration
//! tests assert agreement).

use cgraph_core::vcm::{VertexProgram, VertexScope};
use cgraph_graph::VertexId;

/// Vertex-centric BFS: computes the hop distance from a source
/// (`u64::MAX` = unreachable).
pub struct VcBfs {
    /// BFS root.
    pub source: VertexId,
}

impl VertexProgram for VcBfs {
    type Value = u64;

    fn init(&self, _v: VertexId) -> u64 {
        u64::MAX
    }

    fn compute(
        &self,
        scope: &mut VertexScope<'_, '_>,
        v: VertexId,
        value: &mut u64,
        messages: &[u64],
    ) {
        let proposal = if scope.superstep() == 1 && v == self.source {
            Some(0)
        } else {
            messages.iter().min().copied()
        };
        if let Some(d) = proposal {
            if d < *value {
                *value = d;
                for t in scope.out_neighbors(v) {
                    scope.send_to(t, d + 1);
                }
            }
        }
        scope.vote_to_halt();
    }
}

/// Vertex-centric min-label propagation over out-edges *and* explicit
/// reverse notifications — computes weakly connected components when
/// the input graph is symmetric; over a directed graph it computes
/// forward-reachability label minima.
pub struct VcMinLabel;

impl VertexProgram for VcMinLabel {
    type Value = u64;

    fn init(&self, v: VertexId) -> u64 {
        v
    }

    fn compute(
        &self,
        scope: &mut VertexScope<'_, '_>,
        v: VertexId,
        value: &mut u64,
        messages: &[u64],
    ) {
        let best = messages.iter().copied().min().unwrap_or(u64::MAX).min(*value);
        if best < *value || scope.superstep() == 1 {
            *value = best;
            for t in scope.out_neighbors(v) {
                scope.send_to(t, best);
            }
        }
        scope.vote_to_halt();
    }
}

/// Vertex-centric single-source shortest paths over unit weights
/// encoded as hop counts scaled by 1000 (the message word is integral);
/// a didactic variant — use [`crate::sssp()`] for real weighted SSSP.
pub struct VcHopSssp {
    /// SSSP root.
    pub source: VertexId,
}

impl VertexProgram for VcHopSssp {
    type Value = u64;

    fn init(&self, _v: VertexId) -> u64 {
        u64::MAX
    }

    fn compute(
        &self,
        scope: &mut VertexScope<'_, '_>,
        v: VertexId,
        value: &mut u64,
        messages: &[u64],
    ) {
        let proposal = if scope.superstep() == 1 && v == self.source {
            Some(0)
        } else {
            messages.iter().min().copied()
        };
        if let Some(d) = proposal {
            if d < *value {
                *value = d;
                for (t, _w) in scope.out_neighbors_weighted(v) {
                    scope.send_to(t, d + 1000);
                }
            }
        }
        scope.vote_to_halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_core::DistributedEngine;
    use cgraph_graph::EdgeList;

    fn engine(seed: u64, p: usize) -> (EdgeList, DistributedEngine) {
        let raw = cgraph_gen::graph500(7, 5, seed);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&raw);
        let g = b.build().edges;
        let e = DistributedEngine::new(&g, EngineConfig::new(p));
        (g, e)
    }

    #[test]
    fn vc_bfs_agrees_with_engine() {
        let (_, e) = engine(51, 3);
        let depths = e.run_vertex_program(&VcBfs { source: 2 });
        let batch = e.run_traversal_batch(&[2], &[u32::MAX]).unwrap();
        let reached = depths.iter().filter(|&&d| d != u64::MAX).count() as u64;
        assert_eq!(reached, batch.per_lane_visited[0]);
    }

    #[test]
    fn vc_min_label_on_symmetric_graph_is_wcc() {
        let raw = cgraph_gen::erdos_renyi(60, 120, 5);
        let mut b = cgraph_graph::GraphBuilder::with_options(cgraph_graph::BuildOptions {
            symmetrize: true,
            ..Default::default()
        });
        b.add_edge_list(&raw);
        let g = b.build().edges;
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let vc = e.run_vertex_program(&VcMinLabel);
        let pcm = cgraph_core_wcc(&e);
        assert_eq!(vc, pcm);
    }

    fn cgraph_core_wcc(e: &DistributedEngine) -> Vec<u64> {
        crate::weakly_connected_components(e)
    }

    #[test]
    fn vc_hop_sssp_scales_depths() {
        let g: EdgeList = [(0u64, 1u64), (1, 2)].into_iter().collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(1));
        let d = e.run_vertex_program(&VcHopSssp { source: 0 });
        assert_eq!(d, vec![0, 1000, 2000]);
    }
}
