//! Closeness-centrality estimation on top of the batched traversal
//! engine.
//!
//! Closeness of `v` = (reachable − 1) / Σ distances from `v` (the
//! harmonic of farness, Wasserman–Faust normalised for disconnected
//! graphs). Exact all-sources computation is |V| BFS runs; this module
//! estimates it from a sample of pivot sources and — crucially — runs
//! the pivots through the 64-lane shared batch, making it a natural
//! consumer of the concurrent-query machinery (each pivot's per-level
//! counts are exactly the sums closeness needs).

use cgraph_core::engine::DistributedEngine;
use cgraph_graph::bitmap::LANES;
use cgraph_graph::VertexId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Closeness of one source vertex.
#[derive(Clone, Debug, PartialEq)]
pub struct Closeness {
    /// The source.
    pub vertex: VertexId,
    /// Vertices reachable from the source (excluding itself).
    pub reachable: u64,
    /// Sum of shortest-path (hop) distances to reachable vertices.
    pub total_distance: u64,
    /// Wasserman–Faust closeness: `(r / (n-1)) * (r / total_distance)`
    /// where `r` = reachable count; 0 when nothing is reachable.
    pub score: f64,
}

/// Computes exact closeness for a chosen set of vertices via batched
/// BFS (64 per pass).
pub fn closeness_of(engine: &DistributedEngine, vertices: &[VertexId]) -> Vec<Closeness> {
    let n = engine.num_vertices();
    let mut out = Vec::with_capacity(vertices.len());
    for chunk in vertices.chunks(LANES) {
        let ks = vec![u32::MAX; chunk.len()];
        let r = engine.run_traversal_batch(chunk, &ks).unwrap();
        for (lane, &v) in chunk.iter().enumerate() {
            let mut reachable = 0u64;
            let mut total = 0u64;
            for (d, row) in r.per_level.iter().enumerate().skip(1) {
                reachable += row[lane];
                total += row[lane] * d as u64;
            }
            let score = if total == 0 || n <= 1 {
                0.0
            } else {
                let r_f = reachable as f64;
                (r_f / (n as f64 - 1.0)) * (r_f / total as f64)
            };
            out.push(Closeness { vertex: v, reachable, total_distance: total, score });
        }
    }
    out
}

/// Estimates the `top_k` most central vertices by sampling `pivots`
/// random sources and ranking them (deterministic under `seed`).
pub fn top_closeness(
    engine: &DistributedEngine,
    pivots: usize,
    top_k: usize,
    seed: u64,
) -> Vec<Closeness> {
    let n = engine.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all: Vec<VertexId> = (0..n).collect();
    all.shuffle(&mut rng);
    all.truncate(pivots.min(n as usize));
    let mut scored = closeness_of(engine, &all);
    scored.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    scored.truncate(top_k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::EdgeList;

    #[test]
    fn path_closeness_exact() {
        // 0 -> 1 -> 2 -> 3: from 0, distances 1+2+3 = 6, reachable 3.
        let g: EdgeList = [(0u64, 1u64), (1, 2), (2, 3)].into_iter().collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let c = closeness_of(&e, &[0])[0].clone();
        assert_eq!(c.reachable, 3);
        assert_eq!(c.total_distance, 6);
        assert!((c.score - (3.0 / 3.0) * (3.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn star_center_most_central() {
        // 0 <-> every leaf.
        let mut g = EdgeList::new();
        for leaf in 1..=6u64 {
            g.push_pair(0, leaf);
            g.push_pair(leaf, 0);
        }
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let top = top_closeness(&e, 7, 1, 3);
        assert_eq!(top[0].vertex, 0);
    }

    #[test]
    fn sink_has_zero_score() {
        let g: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(1));
        let c = closeness_of(&e, &[1])[0].clone();
        assert_eq!(c.reachable, 0);
        assert_eq!(c.score, 0.0);
    }

    #[test]
    fn batched_matches_individual() {
        let raw = cgraph_gen::graph500(7, 5, 8);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&raw);
        let g = b.build().edges;
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let sources: Vec<u64> = (0..70u64).collect(); // 2 batches
        let batched = closeness_of(&e, &sources);
        for i in (0..70).step_by(23) {
            let single = closeness_of(&e, &[sources[i]]);
            assert_eq!(batched[i], single[0], "source {i}");
        }
    }
}
