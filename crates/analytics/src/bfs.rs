//! Distributed BFS — "a special case of k-hop, where k → ∞" (§2).

use cgraph_core::engine::DistributedEngine;
use cgraph_graph::VertexId;

/// Number of vertices reachable from `source` (including itself).
pub fn bfs_count(engine: &DistributedEngine, source: VertexId) -> u64 {
    engine.run_traversal_batch(&[source], &[u32::MAX]).unwrap().per_lane_visited[0]
}

/// Vertices first reached at each BFS level (`[0]` = the source).
pub fn bfs_levels(engine: &DistributedEngine, source: VertexId) -> Vec<u64> {
    engine
        .run_traversal_batch(&[source], &[u32::MAX])
        .unwrap()
        .per_level
        .iter()
        .map(|row| row[0])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::EdgeList;

    #[test]
    fn levels_on_binary_tree() {
        // Perfect binary tree of depth 3: levels 1, 2, 4, 8.
        let mut g = EdgeList::new();
        for v in 0..7u64 {
            g.push_pair(v, 2 * v + 1);
            g.push_pair(v, 2 * v + 2);
        }
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        assert_eq!(bfs_levels(&e, 0), vec![1, 2, 4, 8]);
        assert_eq!(bfs_count(&e, 0), 15);
    }

    #[test]
    fn disconnected_component_not_counted() {
        let mut g: EdgeList = [(0u64, 1u64), (5, 6)].into_iter().collect();
        g.set_num_vertices(7);
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        assert_eq!(bfs_count(&e, 0), 2);
        assert_eq!(bfs_count(&e, 5), 2);
    }
}
