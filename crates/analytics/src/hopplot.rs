//! Hop plot and effective diameter — the analysis behind Fig. 1.
//!
//! Fig. 1 shows the cumulative distribution of pairwise distances in
//! the Slashdot Zoo graph: δ (diameter) = 12, δ₀.₅ = 3.51, δ₀.₉ = 4.71,
//! so "most of the network will be visited with less than 5 hops" —
//! the empirical justification for k-hop queries with small k.
//!
//! Computing all-pairs distances exactly is O(V·E); like KONECT we
//! estimate by running BFS from a uniform sample of sources and
//! accumulating the distance histogram. Effective diameters use the
//! standard linear interpolation between integer hop counts.

use cgraph_core::engine::DistributedEngine;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The estimated distance distribution of a graph.
#[derive(Clone, Debug)]
pub struct HopPlot {
    /// `pairs_within[d]` = number of sampled (source, target) pairs at
    /// distance ≤ d.
    pub pairs_within: Vec<u64>,
    /// Number of BFS sources sampled.
    pub sources_sampled: usize,
}

impl HopPlot {
    /// Cumulative fraction of reachable pairs within each hop count
    /// (the y-axis of Fig. 1, as 0..=1 fractions).
    pub fn cumulative_fractions(&self) -> Vec<f64> {
        let total = *self.pairs_within.last().unwrap_or(&0);
        if total == 0 {
            return vec![];
        }
        self.pairs_within.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Maximum observed distance (diameter lower bound δ).
    pub fn diameter(&self) -> usize {
        self.pairs_within.len().saturating_sub(1)
    }

    /// Effective diameter at percentile `q` (e.g. 0.5, 0.9), linearly
    /// interpolated between hop counts as in KONECT.
    pub fn effective_diameter(&self, q: f64) -> f64 {
        let cdf = self.cumulative_fractions();
        if cdf.is_empty() {
            return 0.0;
        }
        if cdf[0] >= q {
            return 0.0;
        }
        for d in 1..cdf.len() {
            if cdf[d] >= q {
                let lo = cdf[d - 1];
                let hi = cdf[d];
                return (d - 1) as f64 + (q - lo) / (hi - lo);
            }
        }
        (cdf.len() - 1) as f64
    }
}

/// Estimates the hop plot by BFS from `num_sources` uniformly sampled
/// vertices (deterministic under `seed`).
pub fn hop_plot(engine: &DistributedEngine, num_sources: usize, seed: u64) -> HopPlot {
    let n = engine.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all: Vec<u64> = (0..n).collect();
    all.shuffle(&mut rng);
    all.truncate(num_sources.min(n as usize));

    let mut per_distance: Vec<u64> = Vec::new();
    for chunk in all.chunks(cgraph_graph::bitmap::LANES) {
        let ks = vec![u32::MAX; chunk.len()];
        let r = engine.run_traversal_batch(chunk, &ks).unwrap();
        for (d, row) in r.per_level.iter().enumerate() {
            if d >= per_distance.len() {
                per_distance.resize(d + 1, 0);
            }
            per_distance[d] += row.iter().sum::<u64>();
        }
    }
    // Distance 0 pairs (source to itself) are excluded from the plot.
    if !per_distance.is_empty() {
        per_distance[0] = 0;
    }
    let mut pairs_within = per_distance;
    for d in 1..pairs_within.len() {
        pairs_within[d] += pairs_within[d - 1];
    }
    // Trim the leading zero level so diameter() reads naturally.
    HopPlot { pairs_within, sources_sampled: all.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::EdgeList;

    #[test]
    fn path_graph_distances() {
        // 0->1->2->3: from all 4 sources, pair distances are known.
        let g: EdgeList = [(0u64, 1u64), (1, 2), (2, 3)].into_iter().collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(1));
        let hp = hop_plot(&e, 4, 0);
        // pairs at distance ≤1: (0,1),(1,2),(2,3) = 3
        assert_eq!(hp.pairs_within[1], 3);
        // ≤2: +(0,2),(1,3) = 5 ; ≤3: +(0,3) = 6
        assert_eq!(hp.pairs_within[2], 5);
        assert_eq!(hp.pairs_within[3], 6);
        assert_eq!(hp.diameter(), 3);
    }

    #[test]
    fn effective_diameter_interpolates() {
        let hp = HopPlot { pairs_within: vec![0, 50, 100], sources_sampled: 10 };
        // cdf = [0, 0.5, 1.0]; δ₀.₅ = 1.0 exactly, δ₀.₇₅ = 1.5
        assert!((hp.effective_diameter(0.5) - 1.0).abs() < 1e-9);
        assert!((hp.effective_diameter(0.75) - 1.5).abs() < 1e-9);
        assert!((hp.effective_diameter(0.9) - 1.8).abs() < 1e-9);
    }

    #[test]
    fn small_world_has_small_effective_diameter() {
        let raw = cgraph_gen::small_world(2000, 8, 0.2, 42);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&raw);
        let g = b.build().edges;
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let hp = hop_plot(&e, 30, 7);
        let d90 = hp.effective_diameter(0.9);
        assert!(d90 < 8.0, "small-world δ₀.₉ = {d90}");
        assert!(hp.diameter() >= 3);
    }

    #[test]
    fn empty_plot_is_safe() {
        let hp = HopPlot { pairs_within: vec![], sources_sampled: 0 };
        assert_eq!(hp.effective_diameter(0.5), 0.0);
        assert!(hp.cumulative_fractions().is_empty());
    }
}
