//! Triangle counting.
//!
//! §1 motivates k-hop with "triangle counting, which is equivalent to
//! finding vertices that are within 1 and 2-hop neighbors of the same
//! vertex". Two implementations live here:
//!
//! * [`count_triangles`] — the production path: sorted-adjacency
//!   intersection over the symmetrized graph, parallel over vertices
//!   (rayon). Each undirected triangle is counted exactly once.
//! * [`count_triangles_khop`] — the paper's didactic formulation: for
//!   each vertex, intersect its 1-hop neighbourhood with the 1-hop
//!   neighbourhoods of its neighbours (i.e. its 2-hop structure).
//!   Quadratically slower; kept as a cross-check and an illustration
//!   of k-hop as an algorithmic building block.

use cgraph_graph::{Csr, EdgeList, VertexId};
use rayon::prelude::*;

/// Builds the symmetrized, deduplicated, loop-free CSR both counters
/// work on.
fn symmetric_csr(edges: &EdgeList) -> Csr {
    let mut b = cgraph_graph::GraphBuilder::with_options(cgraph_graph::BuildOptions {
        symmetrize: true,
        ..Default::default()
    });
    b.add_edge_list(edges);
    let built = b.build();
    Csr::from_edges(built.edges.num_vertices(), built.edges.edges())
}

fn intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Counts undirected triangles (each exactly once).
pub fn count_triangles(edges: &EdgeList) -> u64 {
    let csr = symmetric_csr(edges);
    let n = csr.num_vertices();
    (0..n)
        .into_par_iter()
        .map(|u| {
            // Only count (u < v < w) orderings: intersect u's higher
            // neighbours with each higher neighbour v's higher list.
            let nu = csr.neighbors(u);
            let hi_u_start = nu.partition_point(|&x| x <= u);
            let hi_u = &nu[hi_u_start..];
            hi_u.iter()
                .map(|&v| {
                    let nv = csr.neighbors(v);
                    let hi_v_start = nv.partition_point(|&x| x <= v);
                    intersection_count(hi_u, &nv[hi_v_start..])
                })
                .sum::<u64>()
        })
        .sum()
}

/// Triangle counting phrased as 1-hop/2-hop neighbourhood queries, the
/// paper's formulation. O(Σ deg²) — use only on small graphs.
pub fn count_triangles_khop(edges: &EdgeList) -> u64 {
    let csr = symmetric_csr(edges);
    let n = csr.num_vertices();
    let total: u64 = (0..n)
        .into_par_iter()
        .map(|u| {
            let one_hop = csr.neighbors(u);
            // A triangle through u = a vertex that is both a 1-hop
            // neighbour of u and a 1-hop neighbour of one of u's
            // neighbours (i.e. in u's 2-hop set via that neighbour).
            one_hop.iter().map(|&v| intersection_count(one_hop, csr.neighbors(v))).sum::<u64>()
        })
        .sum();
    // Each triangle was counted 6 times (3 apex choices × 2 neighbour
    // orders).
    total / 6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_triangle() {
        let g: EdgeList = [(0u64, 1u64), (1, 2), (2, 0)].into_iter().collect();
        assert_eq!(count_triangles(&g), 1);
        assert_eq!(count_triangles_khop(&g), 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let mut g = EdgeList::new();
        for i in 0..4u64 {
            for j in (i + 1)..4 {
                g.push_pair(i, j);
            }
        }
        assert_eq!(count_triangles(&g), 4);
        assert_eq!(count_triangles_khop(&g), 4);
    }

    #[test]
    fn tree_has_none() {
        let g: EdgeList = [(0u64, 1u64), (0, 2), (1, 3), (1, 4)].into_iter().collect();
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn methods_agree_on_random_graph() {
        let g = cgraph_gen::erdos_renyi(60, 400, 7);
        assert_eq!(count_triangles(&g), count_triangles_khop(&g));
    }

    #[test]
    fn duplicate_and_reverse_edges_do_not_inflate() {
        let g: EdgeList = [(0u64, 1u64), (1, 0), (1, 2), (2, 0), (0, 2)].into_iter().collect();
        assert_eq!(count_triangles(&g), 1);
    }
}
