//! # cgraph-analytics — graph algorithms on the C-Graph API
//!
//! The paper positions k-hop as "an intermediate operator between
//! low-level database and high-level algorithms" (§1). This crate is
//! that higher level: algorithms written against the cgraph-core
//! engine and the partition-centric model.
//!
//! * [`bfs`] / [`khop`] — traversal wrappers over the engine,
//! * [`sssp`](mod@sssp) — weighted shortest paths as a partition-centric program
//!   (Listing 1 API), with distance-constrained path queries (the
//!   SDN/QoS use case of the introduction),
//! * [`pagerank`](mod@pagerank) — Listing 3 GAS PageRank with a convergence driver,
//! * [`wcc`] — weakly connected components by partition-centric label
//!   propagation,
//! * [`triangles`] — triangle counting, "equivalent to finding vertices
//!   that are within 1 and 2-hop neighbors of the same vertex" (§1),
//! * [`hopplot`] — the hop plot / effective-diameter estimator behind
//!   Fig. 1,
//! * [`kcore`] — distributed k-core decomposition (iterative peeling
//!   on the partition-centric API),
//! * [`closeness`] — closeness-centrality estimation batched through
//!   the 64-lane concurrent traversal engine,
//! * [`vertex_programs`] — ready-made Pregel-style vertex programs for
//!   the vertex-centric model of §3.3.

#![warn(missing_docs)]

pub mod bfs;
pub mod closeness;
pub mod hopplot;
pub mod kcore;
pub mod khop;
pub mod pagerank;
pub mod sssp;
pub mod triangles;
pub mod vertex_programs;
pub mod wcc;

pub use bfs::{bfs_count, bfs_levels};
pub use closeness::{closeness_of, top_closeness, Closeness};
pub use hopplot::{hop_plot, HopPlot};
pub use kcore::kcore_decomposition;
pub use khop::{khop_count, khop_counts_batch};
pub use pagerank::{pagerank, pagerank_converged};
pub use sssp::{sssp, sssp_within};
pub use triangles::count_triangles;
pub use vertex_programs::{VcBfs, VcHopSssp, VcMinLabel};
pub use wcc::weakly_connected_components;
