//! Property-based tests for the generators and I/O.

use cgraph_graph::{Edge, EdgeList};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rmat_edges_stay_in_universe(scale in 3u32..10, edges in 1usize..500, seed: u64) {
        let g = cgraph_gen::rmat(scale, edges, cgraph_gen::RmatParams::GRAPH500, seed);
        let n = 1u64 << scale;
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.len(), edges);
        prop_assert!(g.edges().iter().all(|e| e.src < n && e.dst < n));
    }

    #[test]
    fn graph500_deterministic_per_seed(scale in 3u32..9, ef in 1usize..8, seed: u64) {
        let a = cgraph_gen::graph500(scale, ef, seed);
        let b = cgraph_gen::graph500(scale, ef, seed);
        prop_assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn binary_io_roundtrips_weighted(edges in prop::collection::vec(
        (0u64..1000, 0u64..1000, 0.0f32..100.0), 0..200), extra_universe in 0u64..5000) {
        let mut list = EdgeList::new();
        for (s, t, w) in &edges {
            list.push(Edge::weighted(*s, *t, *w));
        }
        list.set_num_vertices(extra_universe);
        let path = std::env::temp_dir().join(format!(
            "cgraph-prop-{}-{:x}.cg", std::process::id(),
            edges.len() as u64 * 31 + extra_universe));
        cgraph_gen::io::write_binary(&path, &list).unwrap();
        let back = cgraph_gen::io::read_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.edges(), list.edges());
        prop_assert_eq!(back.num_vertices(), list.num_vertices());
    }

    #[test]
    fn text_io_roundtrips(edges in prop::collection::vec((0u64..500, 0u64..500), 0..150)) {
        let mut list = EdgeList::new();
        for (s, t) in &edges {
            list.push_pair(*s, *t);
        }
        let path = std::env::temp_dir().join(format!(
            "cgraph-prop-text-{}-{}.el", std::process::id(), edges.len()));
        cgraph_gen::io::write_text(&path, &list).unwrap();
        let back = cgraph_gen::io::read_text(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.edges(), list.edges());
    }

    #[test]
    fn scaler_multiplies_vertices_exactly(scale in 4u32..8, m in 1u64..5, seed: u64) {
        let base = cgraph_gen::graph500(scale, 4, seed);
        let scaled = cgraph_gen::scale_graph(&base, m, seed ^ 1);
        prop_assert_eq!(scaled.num_vertices(), base.num_vertices() * m);
        // Ratio preserved within the documented 3% fill tolerance + rounding.
        let br = base.len() as f64 / base.num_vertices() as f64;
        let sr = scaled.len() as f64 / scaled.num_vertices() as f64;
        prop_assert!((sr - br).abs() / br < 0.08, "ratio drift {br} -> {sr}");
    }

    #[test]
    fn small_world_degree_regular(n in 10u64..200, k in 1usize..5, seed: u64) {
        let g = cgraph_gen::small_world(n, k, 0.3, seed);
        // Every vertex has exactly k out-edges by construction.
        let mut deg = vec![0usize; n as usize];
        for e in g.edges() {
            deg[e.src as usize] += 1;
        }
        prop_assert!(deg.iter().all(|&d| d == k));
    }

    #[test]
    fn pref_attach_edge_budget(n in 10u64..150, m in 1usize..4, seed: u64) {
        prop_assume!(n > m as u64 + 1);
        let g = cgraph_gen::pref_attach(n, m, seed);
        let clique = (m + 1) * m;
        let newcomers = (n - m as u64 - 1) as usize * m;
        prop_assert_eq!(g.len(), clique + newcomers);
        prop_assert!(g.edges().iter().all(|e| !e.is_loop()));
    }
}
