//! Semi-synthetic graph scaling — the paper's construction for
//! FRS-72B/FRS-100B: "Given a multiplying factor m, the Graph 500
//! generator produces a graph having m times vertices of Friendster,
//! while keeping the edge/vertex ratio of the Friendster" (§4.1).
//!
//! We reproduce the same recipe: take a base graph, replicate its
//! vertex set `m` times, fill the enlarged universe with Graph 500
//! (Kronecker) edges so that the edge/vertex ratio of the base graph is
//! preserved, and stitch the copies together with the base edges so the
//! result stays one connected component (as both SNAP graphs "form
//! large connected components").

use crate::rmat::{rmat, RmatParams};
use cgraph_graph::EdgeList;

/// Scales `base` by multiplying factor `m` (≥ 1), keeping its
/// edge/vertex ratio. `m = 1` returns a same-size Kronecker re-sampling
/// seeded by the base ratio.
pub fn scale_graph(base: &EdgeList, m: u64, seed: u64) -> EdgeList {
    assert!(m >= 1);
    let base_n = base.num_vertices();
    let target_n = base_n * m;
    let ratio = base.len() as f64 / base_n as f64;
    // Graph 500 generates over a power-of-two universe; round up and
    // let ingestion compact unused IDs if needed.
    let scale = 64 - (target_n.max(2) - 1).leading_zeros();
    let target_edges = (target_n as f64 * ratio) as usize;
    let mut out = EdgeList::with_num_vertices(target_n);

    // 1. Copy the base graph into each replica (keeps local structure
    //    and guarantees intra-replica connectivity matching the base).
    for rep in 0..m {
        let off = rep * base_n;
        for e in base.edges() {
            out.push_pair(e.src + off, e.dst + off);
        }
    }
    // 2. Kronecker fill mapped into the target universe — these are
    //    the cross-replica "synthetic" edges that glue the copies into
    //    one component. At least 3% of the edge budget is always
    //    cross-fill (the replicas alone would otherwise stay disjoint),
    //    which perturbs the edge/vertex ratio by under 3% — within the
    //    construction's tolerance.
    let fill = target_edges.saturating_sub(out.len()).max(target_edges / 32);
    if fill > 0 {
        let kron = rmat(scale, fill, RmatParams::GRAPH500, seed);
        for e in kron.edges() {
            out.push_pair(e.src % target_n, e.dst % target_n);
        }
    }
    out.set_num_vertices(target_n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph500;

    #[test]
    fn preserves_edge_vertex_ratio() {
        let base = graph500(10, 16, 3); // ratio 16
        let scaled = scale_graph(&base, 4, 7);
        assert_eq!(scaled.num_vertices(), base.num_vertices() * 4);
        let base_ratio = base.len() as f64 / base.num_vertices() as f64;
        let scaled_ratio = scaled.len() as f64 / scaled.num_vertices() as f64;
        assert!(
            (base_ratio - scaled_ratio).abs() / base_ratio < 0.05,
            "ratio drifted: {base_ratio} vs {scaled_ratio}"
        );
    }

    #[test]
    fn m1_keeps_size() {
        let base = graph500(8, 8, 1);
        let scaled = scale_graph(&base, 1, 2);
        assert_eq!(scaled.num_vertices(), base.num_vertices());
    }

    #[test]
    fn contains_all_replica_edges() {
        let base: EdgeList = [(0u64, 1u64), (1, 2)].into_iter().collect();
        let scaled = scale_graph(&base, 3, 5);
        for rep in 0..3u64 {
            let off = rep * 3;
            assert!(scaled.edges().iter().any(|e| e.src == off && e.dst == off + 1));
        }
    }

    #[test]
    fn deterministic() {
        let base = graph500(8, 4, 9);
        assert_eq!(scale_graph(&base, 2, 4).edges(), scale_graph(&base, 2, 4).edges());
    }
}
