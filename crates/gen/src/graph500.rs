//! Graph 500 style generator: R-MAT with the reference parameters plus
//! vertex scrambling.
//!
//! The raw R-MAT process correlates vertex ID with degree (hubs sit at
//! low IDs). Graph 500 permutes vertex labels so that data layouts
//! cannot exploit the generator's bias — important here because
//! C-Graph's *range-based* partitioning (§3.1) would otherwise get an
//! artificially easy, hub-concentrated layout.

use crate::rmat::{rmat, RmatParams};
use cgraph_graph::EdgeList;

/// Generates a Graph 500-style graph: `2^scale` vertices,
/// `edge_factor * 2^scale` directed edges, scrambled labels.
///
/// ```
/// let g = cgraph_gen::graph500(8, 4, 42);
/// assert_eq!(g.num_vertices(), 256);
/// assert_eq!(g.len(), 1024);
/// assert_eq!(g.edges(), cgraph_gen::graph500(8, 4, 42).edges()); // deterministic
/// ```
pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> EdgeList {
    let n = 1u64 << scale;
    let num_edges = edge_factor * n as usize;
    let mut list = rmat(scale, num_edges, RmatParams::GRAPH500, seed);
    scramble(&mut list, scale, seed ^ 0xD1B5_4A32_D192_ED03);
    list
}

/// Applies a deterministic pseudo-random permutation to vertex labels.
///
/// We use a 2-round Feistel-style bijection on `scale` bits instead of
/// materialising a permutation vector — O(1) memory, same effect.
fn scramble(list: &mut EdgeList, scale: u32, key: u64) {
    let n = list.num_vertices();
    for e in list.edges_mut() {
        e.src = permute(e.src, scale, key);
        e.dst = permute(e.dst, scale, key);
        debug_assert!(e.src < n && e.dst < n);
    }
}

/// Bijective mixing of `v` within `[0, 2^scale)`.
///
/// Each round applies an affine map with an odd multiplier (bijective
/// modulo a power of two) followed by a xorshift by half the width
/// (bijective on its own). Three rounds diffuse every input bit across
/// the output.
fn permute(v: u64, scale: u32, key: u64) -> u64 {
    let mask = if scale >= 64 { u64::MAX } else { (1u64 << scale) - 1 };
    let shift = (scale / 2).max(1);
    let mut x = v & mask;
    for round in 0..3u64 {
        let k = splitmix(key.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let mult = k | 1; // odd multiplier → bijective mod 2^scale
        x = x.wrapping_mul(mult).wrapping_add(k >> 32) & mask;
        x ^= x >> shift; // high-to-low diffusion, bijective
    }
    x & mask
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permute_is_bijective() {
        for scale in [1u32, 4, 7, 10] {
            let n = 1u64 << scale;
            let seen: HashSet<u64> = (0..n).map(|v| permute(v, scale, 0xABCD)).collect();
            assert_eq!(seen.len(), n as usize, "scale {scale} not bijective");
            assert!(seen.iter().all(|&v| v < n), "scale {scale} out of range");
        }
    }

    #[test]
    fn graph500_shape() {
        let g = graph500(10, 8, 99);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.len(), 8 * 1024);
    }

    #[test]
    fn graph500_deterministic() {
        let a = graph500(8, 4, 5);
        let b = graph500(8, 4, 5);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn scrambling_spreads_hubs() {
        // After scrambling, total degree mass in the low-ID half should
        // be near 50%, not concentrated like raw RMAT.
        let g = graph500(12, 10, 17);
        let n = g.num_vertices();
        let low: usize = g.edges().iter().filter(|e| e.src < n / 2).count();
        let frac = low as f64 / g.len() as f64;
        assert!((0.35..=0.65).contains(&frac), "low-half fraction {frac}");
    }
}
