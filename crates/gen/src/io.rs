//! Edge-list I/O: whitespace-separated text (the SNAP interchange
//! format the paper's datasets ship in) and a compact little-endian
//! binary format for fast reload of generated graphs.

use cgraph_graph::{Edge, EdgeList};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic header of the binary format.
const MAGIC: &[u8; 8] = b"CGRAPH01";

/// Writes `src dst [weight]` lines; weight is omitted when exactly 1.0.
/// Lines starting with `#` are comments on read.
pub fn write_text<P: AsRef<Path>>(path: P, list: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# cgraph edge list: {} vertices, {} edges", list.num_vertices(), list.len())?;
    for e in list.edges() {
        if e.weight == 1.0 {
            writeln!(w, "{} {}", e.src, e.dst)?;
        } else {
            writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
        }
    }
    w.flush()
}

/// Reads a text edge list (SNAP style): `src dst [weight]` per line,
/// `#`-prefixed comment lines skipped. Tabs and spaces both accepted.
pub fn read_text<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    let r = BufReader::new(File::open(path)?);
    let mut list = EdgeList::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> io::Result<f64> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing {what}", lineno + 1),
                )
            })?
            .parse::<f64>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad {what}: {e}", lineno + 1),
                )
            })
        };
        let src = parse(it.next(), "src")? as u64;
        let dst = parse(it.next(), "dst")? as u64;
        let weight = match it.next() {
            Some(tok) => parse(Some(tok), "weight")? as f32,
            None => 1.0,
        };
        list.push(Edge::weighted(src, dst, weight));
    }
    Ok(list)
}

/// Writes the compact binary format: header, vertex count, edge count,
/// then `(u64 src, u64 dst, f32 weight)` triples.
pub fn write_binary<P: AsRef<Path>>(path: P, list: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&list.num_vertices().to_le_bytes())?;
    w.write_all(&(list.len() as u64).to_le_bytes())?;
    for e in list.edges() {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        w.write_all(&e.weight.to_le_bytes())?;
    }
    w.flush()
}

/// Reads the binary format written by [`write_binary`].
pub fn read_binary<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8);
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8);
    let mut list = EdgeList::with_num_vertices(n);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf8)?;
        let src = u64::from_le_bytes(buf8);
        r.read_exact(&mut buf8)?;
        let dst = u64::from_le_bytes(buf8);
        r.read_exact(&mut buf4)?;
        let weight = f32::from_le_bytes(buf4);
        list.push(Edge::weighted(src, dst, weight));
    }
    list.set_num_vertices(n);
    Ok(list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos_renyi;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cgraph-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn text_roundtrip() {
        let g = erdos_renyi(50, 200, 3);
        let p = tmp("text.el");
        write_text(&p, &g).unwrap();
        let back = read_text(&p).unwrap();
        assert_eq!(back.edges(), g.edges());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_roundtrip_preserves_universe() {
        let mut g = erdos_renyi(50, 100, 4);
        g.set_num_vertices(1000); // trailing isolated vertices
        let p = tmp("bin.cg");
        write_binary(&p, &g).unwrap();
        let back = read_binary(&p).unwrap();
        assert_eq!(back.edges(), g.edges());
        assert_eq!(back.num_vertices(), 1000);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn text_skips_comments_and_weights() {
        let p = tmp("cmt.el");
        std::fs::write(&p, "# header\n0 1\n1 2 0.5\n\n# done\n").unwrap();
        let g = read_text(&p).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.edges()[1].weight, 0.5);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn malformed_line_is_error() {
        let p = tmp("bad.el");
        std::fs::write(&p, "0 x\n").unwrap();
        assert!(read_text(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("magic.cg");
        std::fs::write(&p, b"NOTMAGIC........").unwrap();
        assert!(read_binary(&p).is_err());
        std::fs::remove_file(p).ok();
    }
}
