//! Barabási–Albert preferential attachment generator.
//!
//! Grows a graph one vertex at a time, attaching each newcomer to `m`
//! existing vertices chosen proportionally to degree. Produces the
//! power-law degree distribution typical of real friendship networks;
//! used as an alternative social-graph stand-in in tests and examples.

use cgraph_graph::EdgeList;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a preferential-attachment graph of `num_vertices` vertices
/// with `m` out-edges per newcomer (the first `m + 1` vertices form a
/// seed clique).
pub fn pref_attach(num_vertices: u64, m: usize, seed: u64) -> EdgeList {
    assert!(m >= 1);
    assert!(num_vertices > m as u64, "need more vertices than m");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut list = EdgeList::with_num_vertices(num_vertices);
    // Repeated-endpoint urn: attaching proportionally to degree is
    // equivalent to sampling a uniform element of the endpoint list.
    let mut urn: Vec<u64> = Vec::new();
    // Seed clique over vertices 0..=m.
    for i in 0..=(m as u64) {
        for j in 0..=(m as u64) {
            if i != j {
                list.push_pair(i, j);
                urn.push(i);
                urn.push(j);
            }
        }
    }
    for v in (m as u64 + 1)..num_vertices {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = urn[rng.gen_range(0..urn.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            list.push_pair(v, t);
            urn.push(v);
            urn.push(t);
        }
    }
    list.set_num_vertices(num_vertices);
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::{Csr, DegreeStats};

    #[test]
    fn edge_count() {
        let g = pref_attach(100, 3, 1);
        // clique: 4*3 = 12 edges; newcomers: 96 * 3
        assert_eq!(g.len(), 12 + 96 * 3);
    }

    #[test]
    fn heavy_tail() {
        let g = pref_attach(2000, 2, 5);
        // In-degree skew: early vertices accumulate most attachments.
        let mut l = EdgeList::with_num_vertices(g.num_vertices());
        for e in g.edges() {
            l.push_pair(e.dst, e.src); // reverse to measure in-degree as out
        }
        let csr = Csr::from_edges(l.num_vertices(), l.edges());
        let s = DegreeStats::from_csr(&csr);
        assert!(s.max as f64 > 8.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn deterministic() {
        assert_eq!(pref_attach(200, 2, 9).edges(), pref_attach(200, 2, 9).edges());
    }

    #[test]
    fn no_self_loops() {
        let g = pref_attach(300, 3, 2);
        assert!(g.edges().iter().all(|e| e.src != e.dst));
    }
}
