//! Named dataset recipes mirroring Table 1 of the paper at laptop
//! scale.
//!
//! | Paper dataset | Paper size | Recipe here | Approx size |
//! |---|---|---|---|
//! | Orkut (OR-100M) | 3.07M V, 117M E | `OR` — Graph 500 scale 15, ef 32 | 33K V, ~1M E |
//! | Friendster (FR-1B) | 65.6M V, 1.8B E | `FR` — Graph 500 scale 17, ef 28 | 131K V, ~3.7M E |
//! | FRS-72B | 131M V, 72B E | `FRS-A` — FR scaled ×2 | 262K V, ~7.3M E |
//! | FRS-100B | 984M V, 106B E | `FRS-B` — FR scaled ×4 | 524K V, ~14.7M E |
//!
//! The scale-down keeps (a) heavy-tailed degree distributions,
//! (b) small effective diameter, and (c) the relative size ordering
//! OR < FR < FRS-A < FRS-B — the properties the paper's experiments
//! actually exercise. Absolute sizes are ~50× smaller so every
//! experiment runs on one machine in seconds.

use crate::graph500::graph500;
use crate::scaler::scale_graph;
use cgraph_graph::{BuildOptions, EdgeList, GraphBuilder, ReindexMode};

/// A named dataset recipe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Orkut analogue (smallest).
    Or,
    /// Friendster analogue.
    Fr,
    /// Friendster-Synthetic ×2 analogue (FRS-72B in the paper).
    FrsA,
    /// Friendster-Synthetic ×4 analogue (FRS-100B in the paper).
    FrsB,
    /// A tiny graph for smoke tests and examples.
    Tiny,
}

/// Parameters resolved from a [`Dataset`] name.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Human-readable name (paper's name for the analogue).
    pub name: &'static str,
    /// The paper's dataset this stands in for.
    pub paper_name: &'static str,
    /// Graph 500 scale of the base graph.
    pub scale: u32,
    /// Edge factor of the base graph.
    pub edge_factor: usize,
    /// Semi-synthetic multiplying factor (1 = base graph itself).
    pub multiply: u64,
    /// Generator seed.
    pub seed: u64,
}

impl Dataset {
    /// Resolves the recipe parameters.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Or => DatasetSpec {
                name: "OR",
                paper_name: "Orkut (OR-100M)",
                scale: 15,
                edge_factor: 32,
                multiply: 1,
                seed: 0xC0FFEE,
            },
            Dataset::Fr => DatasetSpec {
                name: "FR",
                paper_name: "Friendster (FR-1B)",
                scale: 17,
                edge_factor: 28,
                multiply: 1,
                seed: 0xFEED,
            },
            Dataset::FrsA => DatasetSpec {
                name: "FRS-A",
                paper_name: "Friendster-Synthetic (FRS-72B)",
                scale: 17,
                edge_factor: 28,
                multiply: 2,
                seed: 0xFEED,
            },
            Dataset::FrsB => DatasetSpec {
                name: "FRS-B",
                paper_name: "Friendster-Synthetic (FRS-100B)",
                scale: 17,
                edge_factor: 28,
                multiply: 4,
                seed: 0xFEED,
            },
            Dataset::Tiny => DatasetSpec {
                name: "TINY",
                paper_name: "(smoke test)",
                scale: 10,
                edge_factor: 16,
                multiply: 1,
                seed: 0xBEEF,
            },
        }
    }

    /// Generates the raw edge list (duplicates/loops not yet removed).
    pub fn generate_raw(self) -> EdgeList {
        let s = self.spec();
        let base = graph500(s.scale, s.edge_factor, s.seed);
        if s.multiply > 1 {
            scale_graph(&base, s.multiply, s.seed ^ 0xA5A5)
        } else {
            base
        }
    }

    /// Generates and ingests the dataset: dedup, drop loops,
    /// compact re-index — ready for partitioning.
    pub fn generate(self) -> EdgeList {
        let raw = self.generate_raw();
        let mut b = GraphBuilder::with_options(BuildOptions {
            reindex: ReindexMode::Compact,
            dedup: true,
            drop_loops: true,
            symmetrize: false,
        });
        b.add_edge_list(&raw);
        b.build().edges
    }
}

/// Looks a dataset up by its CLI name (`OR`, `FR`, `FRS-A`, `FRS-B`,
/// `TINY`; case-insensitive).
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    match name.to_ascii_uppercase().as_str() {
        "OR" => Some(Dataset::Or),
        "FR" => Some(Dataset::Fr),
        "FRS-A" | "FRSA" => Some(Dataset::FrsA),
        "FRS-B" | "FRSB" => Some(Dataset::FrsB),
        "TINY" => Some(Dataset::Tiny),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::{Csr, GraphStats};

    #[test]
    fn tiny_generates_clean() {
        let g = Dataset::Tiny.generate();
        assert!(g.len() > 1000);
        // no loops
        assert!(g.edges().iter().all(|e| e.src != e.dst));
        // no duplicates
        let mut pairs: Vec<_> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        pairs.sort_unstable();
        let before = pairs.len();
        pairs.dedup();
        assert_eq!(before, pairs.len());
    }

    #[test]
    fn size_ordering_matches_table1() {
        // Compare raw budgets without generating the big ones.
        let or = Dataset::Or.spec();
        let fr = Dataset::Fr.spec();
        let fa = Dataset::FrsA.spec();
        let fb = Dataset::FrsB.spec();
        let size = |s: &DatasetSpec| (1u64 << s.scale) * s.edge_factor as u64 * s.multiply;
        assert!(size(&or) < size(&fr));
        assert!(size(&fr) < size(&fa));
        assert!(size(&fa) < size(&fb));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset_by_name("or"), Some(Dataset::Or));
        assert_eq!(dataset_by_name("FRS-B"), Some(Dataset::FrsB));
        assert_eq!(dataset_by_name("nope"), None);
    }

    #[test]
    fn tiny_has_social_shape() {
        let g = Dataset::Tiny.generate();
        let csr = Csr::from_edges(g.num_vertices(), g.edges());
        let s = GraphStats::from_csr(&csr);
        assert!(s.degrees.max as f64 > 5.0 * s.degrees.mean, "no skew: {:?}", s.degrees);
    }
}
