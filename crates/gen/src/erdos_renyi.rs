//! Erdős–Rényi G(n, m) generator — `m` edges chosen uniformly at
//! random. Used by tests (it has no degree skew, making expected
//! behaviour easy to reason about) and as a locality *worst case* for
//! the edge-set ablation.

use cgraph_graph::EdgeList;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates `num_edges` uniform random directed edges over
/// `num_vertices` vertices. Self loops and duplicates may appear;
/// clean with [`cgraph_graph::GraphBuilder`].
pub fn erdos_renyi(num_vertices: u64, num_edges: usize, seed: u64) -> EdgeList {
    assert!(num_vertices > 0, "need at least one vertex");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut list = EdgeList::with_num_vertices(num_vertices);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..num_vertices);
        let t = rng.gen_range(0..num_vertices);
        list.push_pair(s, t);
    }
    list.set_num_vertices(num_vertices);
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = erdos_renyi(100, 500, 1);
        let b = erdos_renyi(100, 500, 1);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.len(), 500);
        assert!(a.edges().iter().all(|e| e.src < 100 && e.dst < 100));
    }

    #[test]
    fn roughly_uniform_degrees() {
        let g = erdos_renyi(64, 6400, 9);
        let mut deg = [0usize; 64];
        for e in g.edges() {
            deg[e.src as usize] += 1;
        }
        // mean 100; all within a generous 3-sigma-ish band
        assert!(deg.iter().all(|&d| (50..=150).contains(&d)), "{deg:?}");
    }
}
