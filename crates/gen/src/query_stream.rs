//! Seeded skewed query-stream generator.
//!
//! A service facing "heavy traffic from millions of users" does not
//! see uniform sources: popular vertices are re-queried constantly.
//! [`QueryStream`] produces the standard model of that skew — a
//! Zipf(α) distribution over a rank universe — deterministically from
//! a seed, so cache/coalescing experiments and tests replay the exact
//! same arrival sequence every run.
//!
//! Like every generator in this crate the stream is reproducible *for
//! a given RNG stream version*: each stream is stamped with
//! [`crate::RNG_STREAM_VERSION`] (see [`QueryStream::rng_stream_version`]),
//! and cached artifacts derived from one should carry that tag the way
//! the bench harness stamps dataset caches.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic stream of query source *ranks*, rank 0 hottest.
///
/// ```
/// use cgraph_gen::QueryStream;
/// let s = QueryStream::zipf(42, 1.0, 1000);
/// assert_eq!(s.len(), 1000);
/// // Same seed, same stream — always.
/// assert_eq!(s.ranks(), QueryStream::zipf(42, 1.0, 1000).ranks());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryStream {
    ranks: Vec<usize>,
    universe: usize,
}

impl QueryStream {
    /// Draws `n` ranks from a Zipf(α) distribution over the universe
    /// `{0, …, u-1}` where `u = min(n, 1024)` — rank `r` is sampled
    /// with probability proportional to `1 / (r + 1)^alpha`. `alpha =
    /// 0` is uniform; larger α concentrates the stream on hot ranks
    /// (α = 1.0 is the classic web/social-traffic skew). Sampling is
    /// inverse-CDF over the exact normalized weights, driven by a
    /// ChaCha8 stream seeded with `seed`.
    pub fn zipf(seed: u64, alpha: f64, n: usize) -> Self {
        Self::zipf_over(seed, alpha, n, n.clamp(1, 1024))
    }

    /// [`QueryStream::zipf`] with an explicit rank universe size.
    pub fn zipf_over(seed: u64, alpha: f64, n: usize, universe: usize) -> Self {
        assert!(universe > 0, "rank universe must be non-empty");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be finite and >= 0");
        // Cumulative normalized weights; cdf[r] = P(rank <= r).
        let mut cdf: Vec<f64> = Vec::with_capacity(universe);
        let mut total = 0.0f64;
        for r in 0..universe {
            total += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(total);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ranks = (0..n)
            .map(|_| {
                let x = rng.gen::<f64>() * total;
                // First rank whose cumulative weight covers x.
                cdf.partition_point(|&c| c < x).min(universe - 1)
            })
            .collect();
        Self { ranks, universe }
    }

    /// The sampled ranks, in arrival order.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Stream length (number of queries).
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True for an empty stream.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Size of the rank universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Maps the rank stream onto concrete source vertices: rank `r`
    /// becomes `candidates[r % candidates.len()]`, so the hottest rank
    /// is always the same vertex. `candidates` is typically a
    /// degree-filtered sample of the graph (see the bench harness's
    /// `random_sources`).
    pub fn sources(&self, candidates: &[u64]) -> Vec<u64> {
        assert!(!candidates.is_empty(), "need at least one candidate source");
        self.ranks.iter().map(|&r| candidates[r % candidates.len()]).collect()
    }

    /// The RNG stream version this stream was drawn from — stamp it
    /// into any cached artifact derived from the stream, exactly like
    /// dataset caches stamp [`crate::RNG_STREAM_VERSION`].
    pub fn rng_stream_version(&self) -> &'static str {
        crate::RNG_STREAM_VERSION
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = QueryStream::zipf(7, 1.0, 500);
        let b = QueryStream::zipf(7, 1.0, 500);
        assert_eq!(a, b);
        let c = QueryStream::zipf(8, 1.0, 500);
        assert_ne!(a.ranks(), c.ranks(), "different seeds must diverge");
    }

    #[test]
    fn zipf_skew_concentrates_on_hot_ranks() {
        let s = QueryStream::zipf_over(3, 1.0, 10_000, 256);
        let mut counts = vec![0usize; 256];
        for &r in s.ranks() {
            counts[r] += 1;
        }
        // Rank 0 draws ~1/H(256) ≈ 16% of the stream; uniform would be
        // ~0.4%. Loose band: clearly hot, not everything.
        assert!(counts[0] > 1000, "rank 0 too cold: {}", counts[0]);
        assert!(counts[0] < 4000, "rank 0 too hot: {}", counts[0]);
        assert!(counts[0] > counts[128] * 5, "no skew across ranks");
        // Repeat mass — what a result cache can harvest — dominates:
        // far fewer distinct ranks than queries.
        let repeats = s.len() - 256;
        assert!(repeats > s.len() / 2, "a skewed 10k stream over 256 ranks is mostly repeats");
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let s = QueryStream::zipf_over(9, 0.0, 12_800, 64);
        let mut counts = vec![0usize; 64];
        for &r in s.ranks() {
            counts[r] += 1;
        }
        // Mean 200 per rank; allow a generous band.
        assert!(counts.iter().all(|&c| (100..=320).contains(&c)), "{counts:?}");
    }

    #[test]
    fn ranks_respect_universe() {
        let s = QueryStream::zipf_over(1, 1.5, 1000, 17);
        assert!(s.ranks().iter().all(|&r| r < 17));
        assert_eq!(s.universe(), 17);
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn sources_map_ranks_stably() {
        let s = QueryStream::zipf(5, 1.0, 100);
        let candidates: Vec<u64> = (0..50u64).map(|v| v * 3).collect();
        let srcs = s.sources(&candidates);
        assert_eq!(srcs.len(), 100);
        for (r, src) in s.ranks().iter().zip(&srcs) {
            assert_eq!(*src, candidates[r % candidates.len()]);
        }
    }

    #[test]
    fn stream_carries_the_rng_version_stamp() {
        let s = QueryStream::zipf(1, 1.0, 1);
        assert_eq!(s.rng_stream_version(), crate::RNG_STREAM_VERSION);
    }
}
