//! # cgraph-gen — workload generators and graph I/O for C-Graph
//!
//! The paper evaluates on two real social networks (Orkut, Friendster)
//! and two *semi-synthetic* graphs produced by "the Graph 500 generator
//! with Friendster" (§4.1). This crate supplies deterministic,
//! seed-driven stand-ins for all of them:
//!
//! * [`fn@rmat`] — the recursive-matrix (Kronecker) generator underlying
//!   Graph 500; skewed degree distributions like real social graphs.
//! * [`fn@graph500`] — the Graph 500 parameterisation (A=.57, B=.19,
//!   C=.19, D=.05) with vertex scrambling.
//! * [`fn@erdos_renyi`], [`fn@small_world`], [`fn@pref_attach`] — classic models
//!   used by tests and the hop-plot experiment.
//! * [`scaler`] — the paper's semi-synthetic construction: scale a base
//!   graph by a multiplying factor `m`, keeping its edge/vertex ratio.
//! * [`query_stream`] — seeded Zipf/skewed query-source streams for
//!   serving-path (cache/coalescing) experiments.
//! * [`io`] — plain-text and binary edge-list readers/writers.
//! * [`datasets`] — named recipes (`OR`, `FR`, `FRS-A`, `FRS-B`)
//!   mirroring Table 1 at laptop scale.
//!
//! Every generator takes an explicit seed and is reproducible
//! bit-for-bit *for a given RNG stream version* — see
//! [`RNG_STREAM_VERSION`].

#![warn(missing_docs)]

/// Version tag of the pseudo-random streams behind every seeded
/// generator.
///
/// The workspace builds offline, so `rand`/`rand_chacha` are vendored
/// shims whose keystreams are **not bit-compatible with the upstream
/// crates** (see `vendor/rand_chacha`). A given `(generator, seed)`
/// pair therefore produces a different — but equally deterministic —
/// graph than a build linked against upstream, and datasets or figures
/// produced under a different stream version are not comparable
/// edge-for-edge. The bench harness stamps this tag into cached
/// dataset filenames so a stale cache from another stream version is
/// never silently reused; bump it if the vendored RNG ever changes its
/// output again.
pub const RNG_STREAM_VERSION: &str = "vendored-chacha8-v1";

pub mod datasets;
pub mod erdos_renyi;
pub mod graph500;
pub mod io;
pub mod pref_attach;
pub mod query_stream;
pub mod rmat;
pub mod scaler;
pub mod small_world;

pub use datasets::{dataset_by_name, Dataset, DatasetSpec};
pub use erdos_renyi::erdos_renyi;
pub use graph500::graph500;
pub use pref_attach::pref_attach;
pub use query_stream::QueryStream;
pub use rmat::{rmat, RmatParams};
pub use scaler::scale_graph;
pub use small_world::small_world;
