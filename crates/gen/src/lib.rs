//! # cgraph-gen — workload generators and graph I/O for C-Graph
//!
//! The paper evaluates on two real social networks (Orkut, Friendster)
//! and two *semi-synthetic* graphs produced by "the Graph 500 generator
//! with Friendster" (§4.1). This crate supplies deterministic,
//! seed-driven stand-ins for all of them:
//!
//! * [`rmat`] — the recursive-matrix (Kronecker) generator underlying
//!   Graph 500; skewed degree distributions like real social graphs.
//! * [`graph500`] — the Graph 500 parameterisation (A=.57, B=.19,
//!   C=.19, D=.05) with vertex scrambling.
//! * [`erdos_renyi`], [`small_world`], [`pref_attach`] — classic models
//!   used by tests and the hop-plot experiment.
//! * [`scaler`] — the paper's semi-synthetic construction: scale a base
//!   graph by a multiplying factor `m`, keeping its edge/vertex ratio.
//! * [`io`] — plain-text and binary edge-list readers/writers.
//! * [`datasets`] — named recipes (`OR`, `FR`, `FRS-A`, `FRS-B`)
//!   mirroring Table 1 at laptop scale.
//!
//! Every generator takes an explicit seed and is reproducible
//! bit-for-bit.

#![warn(missing_docs)]

pub mod datasets;
pub mod erdos_renyi;
pub mod graph500;
pub mod io;
pub mod pref_attach;
pub mod rmat;
pub mod scaler;
pub mod small_world;

pub use datasets::{dataset_by_name, Dataset, DatasetSpec};
pub use erdos_renyi::erdos_renyi;
pub use graph500::graph500;
pub use pref_attach::pref_attach;
pub use rmat::{rmat, RmatParams};
pub use scaler::scale_graph;
pub use small_world::small_world;
