//! R-MAT / Kronecker edge generator.
//!
//! The recursive-matrix model drops each edge into one quadrant of the
//! adjacency matrix with probabilities (A, B, C, D) and recurses on the
//! chosen quadrant. With the Graph 500 parameters it yields the heavy-
//! tailed degree distribution and small effective diameter of social
//! networks — the structural properties that govern k-hop query cost
//! and that our scaled-down stand-ins for Orkut/Friendster must keep.
//!
//! Generation is parallelised per-edge with rayon; each edge derives
//! its own RNG stream from `(seed, edge_index)` so the output is
//! deterministic regardless of thread schedule.

use cgraph_graph::{Edge, EdgeList};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Quadrant probabilities for the recursive matrix model.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Perturbation applied per level to avoid exact self-similarity
    /// (standard Graph 500 "noise" trick; 0.0 disables).
    pub noise: f64,
}

impl RmatParams {
    /// Graph 500 reference parameters.
    pub const GRAPH500: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19, noise: 0.1 };

    /// A milder skew closer to measured social networks.
    pub const SOCIAL: RmatParams = RmatParams { a: 0.45, b: 0.22, c: 0.22, noise: 0.05 };

    /// The implicit bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Validates that probabilities form a distribution.
    pub fn validate(&self) {
        assert!(self.a > 0.0 && self.b >= 0.0 && self.c >= 0.0, "bad rmat params {self:?}");
        assert!(self.d() >= 0.0, "quadrant probabilities exceed 1: {self:?}");
    }
}

/// Generates `num_edges` directed edges over `2^scale` vertices.
///
/// Duplicates and self loops are *not* removed — feed the result
/// through [`cgraph_graph::GraphBuilder`] (as real pipelines do) or use
/// [`crate::datasets`] which does it for you.
pub fn rmat(scale: u32, num_edges: usize, params: RmatParams, seed: u64) -> EdgeList {
    params.validate();
    assert!(scale < 63, "scale too large");
    let n = 1u64 << scale;
    let edges: Vec<Edge> = (0..num_edges)
        .into_par_iter()
        .map(|i| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let (src, dst) = rmat_one(scale, params, &mut rng);
            Edge::unweighted(src, dst)
        })
        .collect();
    let mut list = EdgeList::with_num_vertices(n);
    for e in edges {
        list.push(e);
    }
    list.set_num_vertices(n);
    list
}

/// Samples a single (src, dst) pair by recursive quadrant descent.
fn rmat_one(scale: u32, p: RmatParams, rng: &mut impl Rng) -> (u64, u64) {
    let mut src = 0u64;
    let mut dst = 0u64;
    let (mut a, mut b, mut c) = (p.a, p.b, p.c);
    for level in 0..scale {
        let d = 1.0 - a - b - c;
        let r: f64 = rng.gen();
        let bit = 1u64 << (scale - 1 - level);
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            dst |= bit;
        } else if r < a + b + c {
            src |= bit;
        } else {
            let _ = d;
            src |= bit;
            dst |= bit;
        }
        if p.noise > 0.0 {
            // Multiplicative noise, renormalised, keeps the marginal
            // distribution but breaks exact self-similarity.
            let na = a * (1.0 + p.noise * (rng.gen::<f64>() - 0.5));
            let nb = b * (1.0 + p.noise * (rng.gen::<f64>() - 0.5));
            let nc = c * (1.0 + p.noise * (rng.gen::<f64>() - 0.5));
            let nd = d * (1.0 + p.noise * (rng.gen::<f64>() - 0.5));
            let sum = na + nb + nc + nd;
            a = na / sum;
            b = nb / sum;
            c = nc / sum;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::{Csr, DegreeStats};

    #[test]
    fn deterministic() {
        let g1 = rmat(10, 5000, RmatParams::GRAPH500, 42);
        let g2 = rmat(10, 5000, RmatParams::GRAPH500, 42);
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat(10, 1000, RmatParams::GRAPH500, 1);
        let g2 = rmat(10, 1000, RmatParams::GRAPH500, 2);
        assert_ne!(g1.edges(), g2.edges());
    }

    #[test]
    fn vertex_universe_is_power_of_two() {
        let g = rmat(8, 100, RmatParams::GRAPH500, 7);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.edges().iter().all(|e| e.src < 256 && e.dst < 256));
    }

    #[test]
    fn skewed_degrees() {
        // Graph 500 parameters must produce a hub far above the mean.
        let g = rmat(12, 40_000, RmatParams::GRAPH500, 3);
        let csr = Csr::from_edges(g.num_vertices(), g.edges());
        let s = DegreeStats::from_csr(&csr);
        assert!(s.max as f64 > 10.0 * s.mean, "expected heavy tail: max {} mean {}", s.max, s.mean);
    }

    #[test]
    #[should_panic]
    fn invalid_params_rejected() {
        rmat(4, 10, RmatParams { a: 0.9, b: 0.2, c: 0.2, noise: 0.0 }, 0);
    }
}
