//! Watts–Strogatz small-world generator.
//!
//! A ring lattice with `k` neighbours per side, each edge rewired with
//! probability `beta`. Small-world graphs have the short-path-length
//! profile that Fig. 1 of the paper illustrates with the Slashdot Zoo
//! hop plot (δ₀.₅ ≈ 3.5, δ₀.₉ ≈ 4.7) — the `fig01_hopplot` experiment
//! uses this model.

use cgraph_graph::EdgeList;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a directed small-world graph: each vertex links to its
/// `k` clockwise ring successors; each link rewires to a uniform random
/// target with probability `beta`.
pub fn small_world(num_vertices: u64, k: usize, beta: f64, seed: u64) -> EdgeList {
    assert!(num_vertices > 1);
    assert!((k as u64) < num_vertices, "k must be < n");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut list = EdgeList::with_num_vertices(num_vertices);
    for v in 0..num_vertices {
        for j in 1..=k as u64 {
            let t = if rng.gen::<f64>() < beta {
                // rewire: uniform target other than v
                let mut t = rng.gen_range(0..num_vertices - 1);
                if t >= v {
                    t += 1;
                }
                t
            } else {
                (v + j) % num_vertices
            };
            list.push_pair(v, t);
        }
    }
    list.set_num_vertices(num_vertices);
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rewiring_gives_ring() {
        let g = small_world(10, 2, 0.0, 0);
        assert_eq!(g.len(), 20);
        assert!(g.edges().iter().all(|e| {
            let d = (e.dst + 10 - e.src) % 10;
            d == 1 || d == 2
        }));
    }

    #[test]
    fn full_rewiring_breaks_ring() {
        let g = small_world(1000, 2, 1.0, 3);
        let ring_edges = g
            .edges()
            .iter()
            .filter(|e| {
                let d = (e.dst + 1000 - e.src) % 1000;
                d == 1 || d == 2
            })
            .count();
        // Uniform targets hit ring positions rarely.
        assert!(ring_edges < g.len() / 20, "{ring_edges} ring edges of {}", g.len());
    }

    #[test]
    fn never_self_loop_when_rewired() {
        let g = small_world(50, 3, 1.0, 7);
        assert!(g.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn deterministic() {
        assert_eq!(small_world(64, 4, 0.1, 11).edges(), small_world(64, 4, 0.1, 11).edges());
    }
}
