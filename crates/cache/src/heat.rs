//! Cache-heat accounting for replicated front-ends.
//!
//! A [`HeatTable`] is a dense `(replica, partition)` grid of saturating
//! counters fed by query-plane events: every result-cache hit or
//! insertion on replica `r` for a source owned by partition `p` bumps
//! `heat(r, p)`. The serving tier's router reads the grid as a
//! tiebreak — a replica that has been serving a partition's sources
//! holds that partition's results in its cache, so steering the next
//! query for the partition to the same replica turns a would-be
//! traversal into a cache hit.
//!
//! Like the [`ResultCache`](crate::ResultCache) that feeds it, the
//! table is driven purely by *logical* events — no wall clock, no
//! randomness — so two runs that observe the same event sequence hold
//! identical heat and route identically. Epoch commits cool the whole
//! grid with [`HeatTable::halve`]: the caches they fence no longer
//! hold the entries the heat described.

use std::sync::Mutex;

/// Saturating per-`(replica, partition)` hit counters with halving
/// decay. All methods take `&self`; the grid is internally locked.
#[derive(Debug)]
pub struct HeatTable {
    replicas: usize,
    partitions: usize,
    grid: Mutex<Vec<u64>>,
}

impl HeatTable {
    /// An all-cold table for `replicas` front-ends over `partitions`
    /// graph partitions (both clamped to at least 1).
    pub fn new(replicas: usize, partitions: usize) -> Self {
        let replicas = replicas.max(1);
        let partitions = partitions.max(1);
        Self { replicas, partitions, grid: Mutex::new(vec![0; replicas * partitions]) }
    }

    /// Number of replica rows.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of partition columns.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    fn idx(&self, replica: usize, partition: usize) -> Option<usize> {
        (replica < self.replicas && partition < self.partitions)
            .then(|| replica * self.partitions + partition)
    }

    /// Records one cache event (hit or insertion) on `replica` for a
    /// source owned by `partition`. Out-of-range coordinates are
    /// ignored — a degraded engine can shrink the partition count
    /// below the table's width mid-run.
    pub fn bump(&self, replica: usize, partition: usize) {
        if let Some(i) = self.idx(replica, partition) {
            let mut g = self.grid.lock().unwrap_or_else(|e| e.into_inner());
            g[i] = g[i].saturating_add(1);
        }
    }

    /// Current heat of `(replica, partition)`; 0 when out of range.
    pub fn get(&self, replica: usize, partition: usize) -> u64 {
        match self.idx(replica, partition) {
            Some(i) => self.grid.lock().unwrap_or_else(|e| e.into_inner())[i],
            None => 0,
        }
    }

    /// Total heat accumulated by `replica` across every partition.
    pub fn total(&self, replica: usize) -> u64 {
        if replica >= self.replicas {
            return 0;
        }
        let g = self.grid.lock().unwrap_or_else(|e| e.into_inner());
        g[replica * self.partitions..(replica + 1) * self.partitions].iter().sum()
    }

    /// Halves every counter — the decay an epoch commit applies after
    /// fencing the caches the heat described.
    pub fn halve(&self) {
        let mut g = self.grid.lock().unwrap_or_else(|e| e.into_inner());
        for c in g.iter_mut() {
            *c /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_get_and_total_account_per_cell() {
        let h = HeatTable::new(2, 3);
        h.bump(0, 1);
        h.bump(0, 1);
        h.bump(1, 2);
        assert_eq!(h.get(0, 1), 2);
        assert_eq!(h.get(1, 2), 1);
        assert_eq!(h.get(1, 1), 0);
        assert_eq!(h.total(0), 2);
        assert_eq!(h.total(1), 1);
    }

    #[test]
    fn halve_decays_everything() {
        let h = HeatTable::new(1, 2);
        for _ in 0..5 {
            h.bump(0, 0);
        }
        h.bump(0, 1);
        h.halve();
        assert_eq!(h.get(0, 0), 2);
        assert_eq!(h.get(0, 1), 0);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let h = HeatTable::new(1, 1);
        h.bump(5, 0);
        h.bump(0, 9);
        assert_eq!(h.get(5, 0), 0);
        assert_eq!(h.get(0, 9), 0);
        assert_eq!(h.total(5), 0);
        assert_eq!(h.get(0, 0), 0);
    }

    #[test]
    fn zero_dimensions_clamp_to_one() {
        let h = HeatTable::new(0, 0);
        assert_eq!((h.replicas(), h.partitions()), (1, 1));
        h.bump(0, 0);
        assert_eq!(h.get(0, 0), 1);
    }
}
