//! Bounded, deterministic reachability result cache.
//!
//! Answers repeat `(source, k)` reachability queries from bounded
//! cached state instead of re-traversing (the direction Fan et al.'s
//! *Performance Guarantees for Distributed Reachability Queries*
//! motivates): a hit costs two hash probes, a miss costs nothing but
//! the probe. The cache is a plain data structure — callers wrap it in
//! whatever lock their concurrency story needs — and is deterministic
//! by construction: eviction order depends only on the sequence of
//! `get`/`insert` calls (a logical clock), never on wall time.

use std::collections::HashMap;

/// Identity of one cached traversal result.
///
/// The `epoch` component is the graph's logical version: results are
/// only valid for the graph they were computed on, so lookups always
/// carry the *current* epoch and a bumped epoch (after a mutation)
/// orphans every older entry without touching them individually.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Source vertex of the traversal.
    pub source: u64,
    /// Hop budget `k`.
    pub k: u32,
    /// Graph epoch the result was computed against.
    pub epoch: u64,
}

/// One cached traversal result — the per-lane outputs of a committed
/// batch, exactly what the service fans out to tickets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedTraversal {
    /// Distinct vertices reached (including the source).
    pub visited: u64,
    /// Vertices first reached at each hop (trailing zeros trimmed, the
    /// canonical packing-invariant form).
    pub per_level: Vec<u64>,
}

impl CachedTraversal {
    /// Bytes this entry charges against the capacity: key + fixed
    /// entry overhead (table slot, clock bit, visited count) plus the
    /// level profile payload.
    pub fn weight_bytes(&self) -> usize {
        ENTRY_OVERHEAD_BYTES + 8 * self.per_level.len()
    }
}

/// Fixed per-entry byte charge covering the key, the slot bookkeeping
/// and the `visited` word — the payload (`per_level`) is charged on
/// top. Kept deliberately round so capacity math is predictable.
pub const ENTRY_OVERHEAD_BYTES: usize = 64;

/// Lifetime counters of one [`ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a current-epoch entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the CLOCK hand to make room.
    pub evictions: u64,
    /// Entries dropped by epoch invalidation.
    pub invalidated: u64,
}

/// A CLOCK (second-chance) slot.
struct Slot {
    key: CacheKey,
    value: CachedTraversal,
    /// Second-chance bit: set on every hit, cleared (once) by the
    /// sweeping hand before the slot becomes an eviction candidate.
    referenced: bool,
}

/// Bounded reachability result cache with second-chance (CLOCK)
/// eviction over a logical access clock.
///
/// ```
/// use cgraph_cache::{CacheKey, CachedTraversal, ResultCache};
/// let mut cache = ResultCache::new(4096);
/// let key = CacheKey { source: 7, k: 3, epoch: 0 };
/// assert!(cache.get(&key).is_none());
/// cache.insert(key, CachedTraversal { visited: 4, per_level: vec![1, 1, 1, 1] });
/// assert_eq!(cache.get(&key).unwrap().visited, 4);
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct ResultCache {
    capacity_bytes: usize,
    used_bytes: usize,
    /// CLOCK ring: slots are appended while capacity lasts and reused
    /// in place after eviction, so the hand sweeps a stable ring.
    slots: Vec<Option<Slot>>,
    /// Reusable holes in `slots` left by eviction/invalidation.
    free: Vec<usize>,
    index: HashMap<CacheKey, usize>,
    hand: usize,
    stats: CacheStats,
}

impl ResultCache {
    /// Creates a cache bounded to `capacity_bytes` of entry weight.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            used_bytes: 0,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            hand: 0,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently charged by live entries.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks `key` up, granting the entry its second chance on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&CachedTraversal> {
        match self.index.get(key) {
            Some(&i) => {
                self.stats.hits += 1;
                let slot = self.slots[i].as_mut().expect("indexed slot is live");
                slot.referenced = true;
                Some(&slot.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key`, evicting with the CLOCK hand until
    /// it fits. Returns the number of entries evicted to make room.
    /// An entry wider than the whole capacity is rejected (returns 0,
    /// inserts nothing); re-inserting a live key replaces its value.
    pub fn insert(&mut self, key: CacheKey, value: CachedTraversal) -> u64 {
        let weight = value.weight_bytes();
        if weight > self.capacity_bytes {
            return 0;
        }
        if let Some(&i) = self.index.get(&key) {
            // Replace in place: re-charge the weight difference.
            let slot = self.slots[i].as_mut().expect("indexed slot is live");
            self.used_bytes -= slot.value.weight_bytes();
            self.used_bytes += weight;
            slot.value = value;
            slot.referenced = true;
            // A replacement may overshoot capacity; let the hand trim.
            let evicted = self.make_room(0);
            self.stats.evictions += evicted;
            return evicted;
        }
        let evicted = self.make_room(weight);
        self.stats.evictions += evicted;
        self.stats.insertions += 1;
        self.used_bytes += weight;
        let slot = Slot { key, value, referenced: false };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.index.insert(key, i);
        evicted
    }

    /// Drops every entry whose epoch is older than `epoch` (the
    /// explicit invalidation lever for dynamic-graph work). Returns
    /// the number of entries dropped.
    pub fn invalidate_before(&mut self, epoch: u64) -> u64 {
        let mut dropped = 0u64;
        for i in 0..self.slots.len() {
            let stale = matches!(&self.slots[i], Some(s) if s.key.epoch < epoch);
            if stale {
                let s = self.slots[i].take().expect("checked live");
                self.used_bytes -= s.value.weight_bytes();
                self.index.remove(&s.key);
                self.free.push(i);
                dropped += 1;
            }
        }
        self.stats.invalidated += dropped;
        dropped
    }

    /// Sweeps the CLOCK hand until `extra` more bytes fit. Referenced
    /// slots get their second chance (bit cleared, hand moves on);
    /// unreferenced slots are evicted.
    fn make_room(&mut self, extra: usize) -> u64 {
        let mut evicted = 0u64;
        while self.used_bytes + extra > self.capacity_bytes && !self.index.is_empty() {
            let n = self.slots.len();
            debug_assert!(n > 0);
            let i = self.hand % n;
            self.hand = (self.hand + 1) % n;
            match &mut self.slots[i] {
                Some(s) if s.referenced => s.referenced = false,
                Some(_) => {
                    let s = self.slots[i].take().expect("checked live");
                    self.used_bytes -= s.value.weight_bytes();
                    self.index.remove(&s.key);
                    self.free.push(i);
                    evicted += 1;
                }
                None => {}
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(source: u64, k: u32, epoch: u64) -> CacheKey {
        CacheKey { source, k, epoch }
    }

    fn val(visited: u64, levels: usize) -> CachedTraversal {
        CachedTraversal { visited, per_level: vec![1; levels] }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = ResultCache::new(1024);
        assert!(c.get(&key(1, 3, 0)).is_none());
        c.insert(key(1, 3, 0), val(9, 4));
        assert_eq!(c.get(&key(1, 3, 0)).unwrap().visited, 9);
        // Different k, source or epoch are distinct identities.
        assert!(c.get(&key(1, 2, 0)).is_none());
        assert!(c.get(&key(2, 3, 0)).is_none());
        assert!(c.get(&key(1, 3, 1)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 4, 1));
    }

    #[test]
    fn capacity_is_enforced_in_bytes() {
        // Room for exactly two minimal entries.
        let w = val(0, 0).weight_bytes();
        let mut c = ResultCache::new(2 * w);
        c.insert(key(1, 1, 0), val(1, 0));
        c.insert(key(2, 1, 0), val(2, 0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.used_bytes(), 2 * w);
        let evicted = c.insert(key(3, 1, 0), val(3, 0));
        assert_eq!(evicted, 1, "third entry must evict one");
        assert_eq!(c.len(), 2);
        assert!(c.used_bytes() <= c.capacity_bytes());
    }

    #[test]
    fn clock_grants_second_chance_to_hot_entries() {
        let w = val(0, 0).weight_bytes();
        let mut c = ResultCache::new(2 * w);
        c.insert(key(1, 1, 0), val(1, 0));
        c.insert(key(2, 1, 0), val(2, 0));
        // Touch entry 1: its referenced bit protects it from the first
        // sweep, so the insert evicts entry 2.
        assert!(c.get(&key(1, 1, 0)).is_some());
        c.insert(key(3, 1, 0), val(3, 0));
        assert!(c.get(&key(1, 1, 0)).is_some(), "hot entry must survive");
        assert!(c.get(&key(2, 1, 0)).is_none(), "cold entry must be the victim");
    }

    #[test]
    fn eviction_is_deterministic_for_identical_histories() {
        let run = || {
            let mut c = ResultCache::new(5 * val(0, 2).weight_bytes());
            for i in 0..50u64 {
                c.insert(key(i, 3, 0), val(i, 2));
                // A deterministic access pattern with reuse.
                let _ = c.get(&key(i / 2, 3, 0));
            }
            let mut live: Vec<u64> =
                (0..50).filter(|&i| c.index.contains_key(&key(i, 3, 0))).collect();
            live.sort_unstable();
            (live, c.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let mut c = ResultCache::new(ENTRY_OVERHEAD_BYTES + 8);
        c.insert(key(1, 1, 0), val(1, 0));
        assert_eq!(c.insert(key(2, 1, 0), val(2, 1000)), 0);
        assert!(c.get(&key(2, 1, 0)).is_none(), "oversized entry must not land");
        assert!(c.get(&key(1, 1, 0)).is_some(), "resident entry must not be collateral");
    }

    #[test]
    fn replacing_a_live_key_recharges_weight() {
        let mut c = ResultCache::new(1024);
        c.insert(key(1, 1, 0), val(1, 10));
        let used = c.used_bytes();
        c.insert(key(1, 1, 0), val(1, 2));
        assert_eq!(c.len(), 1);
        assert_eq!(used - c.used_bytes(), 8 * 8, "8 fewer levels at 8 bytes each");
        assert_eq!(c.get(&key(1, 1, 0)).unwrap().per_level.len(), 2);
    }

    #[test]
    fn epoch_invalidation_drops_only_older_entries() {
        let mut c = ResultCache::new(4096);
        c.insert(key(1, 3, 0), val(1, 1));
        c.insert(key(2, 3, 0), val(2, 1));
        c.insert(key(3, 3, 1), val(3, 1));
        assert_eq!(c.invalidate_before(1), 2);
        assert!(c.get(&key(1, 3, 0)).is_none());
        assert!(c.get(&key(2, 3, 0)).is_none());
        assert_eq!(c.get(&key(3, 3, 1)).unwrap().visited, 3);
        assert_eq!(c.stats().invalidated, 2);
        // Freed slots are reused; capacity accounting stays exact.
        let before = c.used_bytes();
        c.insert(key(4, 3, 1), val(4, 1));
        assert_eq!(c.used_bytes(), before + val(4, 1).weight_bytes());
    }

    #[test]
    fn zero_capacity_caches_nothing_and_never_panics() {
        let mut c = ResultCache::new(0);
        assert_eq!(c.insert(key(1, 1, 0), val(1, 0)), 0);
        assert!(c.get(&key(1, 1, 0)).is_none());
        assert!(c.is_empty());
    }
}
