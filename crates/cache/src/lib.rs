//! # cgraph-cache — the query plane in front of the engine
//!
//! The paper's concurrent-query optimizations (§3.5) share work
//! *within* a batch: up to 512 traversals ride one edge-set scan. A
//! serving deployment additionally sees massive redundancy *across*
//! batches and *across time* — popular sources are re-queried
//! constantly, and identical `(source, k)` queries burn one lane each.
//! This crate supplies the three cooperating components the streaming
//! service (`cgraph_core::service`) threads between admission and the
//! engine:
//!
//! * [`ResultCache`] — a bounded, deterministic reachability result
//!   cache keyed by `(source, k, graph_epoch)`. Capacity is accounted
//!   in **bytes** (the same currency as the scheduler's memory
//!   budget); eviction is second-chance/CLOCK driven purely by a
//!   **logical clock** of accesses — no wall time anywhere, so two
//!   runs with the same operation sequence evict identically and stay
//!   byte-reproducible under fixed seeds. The epoch component of the
//!   key gives dynamic-graph work an explicit invalidation lever:
//!   bumping the epoch orphans every older entry at once.
//! * [`Coalescer`] — an in-flight table that detects identical
//!   `(source, k)` queries while one execution is already running, and
//!   fans that single execution out to every waiting ticket, freeing
//!   lanes for distinct work.
//! * [`pack_locality`] — locality-aware batch formation: when more
//!   traversals wait than lanes exist, prefer queries whose sources
//!   land in the same partition range (maximising shared-subgraph
//!   traversal, the first-order win Q-Graph reports), bounded by a
//!   fairness rule so cold-partition queries cannot starve.
//! * [`HeatTable`] — per-`(replica, partition)` cache-heat counters
//!   fed by the hit/insertion events above; the serving tier's router
//!   reads them to keep steering a partition's queries at the replica
//!   whose cache already holds that partition's results.
//!
//! The crate is dependency-free and engine-agnostic: keys, values and
//! partition ids are plain integers, so it can sit in front of any
//! reachability engine.

#![warn(missing_docs)]

pub mod coalesce;
pub mod heat;
pub mod packer;
pub mod result_cache;

pub use coalesce::Coalescer;
pub use heat::HeatTable;
pub use packer::{pack_fifo, pack_locality, PackItem, PackPolicy};
pub use result_cache::{CacheKey, CacheStats, CachedTraversal, ResultCache};
