//! In-flight query coalescing.
//!
//! While one `(source, k)` traversal executes, every identical query
//! that arrives can wait for *that* execution instead of burning a
//! lane of its own. The [`Coalescer`] is the registry making this
//! safe: the dispatcher registers each lane's key before running the
//! batch, submitters attach their tickets to a registered key, and on
//! completion the dispatcher drains the attached waiters and fans the
//! single result (or the failure) out to all of them.
//!
//! The table is generic over the waiter type and key type so it can be
//! unit-tested without the service machinery.

use std::collections::HashMap;
use std::hash::Hash;

/// Registry of executions in flight, each with its attached waiters.
pub struct Coalescer<K, W> {
    inflight: HashMap<K, Vec<W>>,
    attached_total: u64,
}

impl<K: Eq + Hash + Clone, W> Default for Coalescer<K, W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, W> Coalescer<K, W> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self { inflight: HashMap::new(), attached_total: 0 }
    }

    /// Registers `key` as executing. Returns `false` (and registers
    /// nothing) if the key is already in flight — the caller should
    /// have coalesced into the running execution instead.
    pub fn begin(&mut self, key: K) -> bool {
        use std::collections::hash_map::Entry;
        match self.inflight.entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(Vec::new());
                true
            }
        }
    }

    /// Attaches `waiter` to a running execution of `key`. Returns the
    /// waiter back when the key is *not* in flight — the caller must
    /// then queue it for execution.
    pub fn attach(&mut self, key: &K, waiter: W) -> Option<W> {
        match self.inflight.get_mut(key) {
            Some(ws) => {
                ws.push(waiter);
                self.attached_total += 1;
                None
            }
            None => Some(waiter),
        }
    }

    /// Completes the execution of `key`, returning every waiter that
    /// attached while it ran. The caller fans the result out to them.
    pub fn complete(&mut self, key: &K) -> Vec<W> {
        self.inflight.remove(key).unwrap_or_default()
    }

    /// True when `key` currently has a registered execution.
    pub fn in_flight(&self, key: &K) -> bool {
        self.inflight.contains_key(key)
    }

    /// Number of executions currently registered.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Lifetime count of waiters that attached to a running execution
    /// (each one is a lane the coalescer freed for distinct work).
    pub fn attached_total(&self) -> u64 {
        self.attached_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_only_while_in_flight() {
        let mut c: Coalescer<(u64, u32), &str> = Coalescer::new();
        // Nothing in flight: the waiter comes straight back.
        assert_eq!(c.attach(&(7, 3), "early"), Some("early"));
        assert!(c.begin((7, 3)));
        assert_eq!(c.attach(&(7, 3), "a"), None);
        assert_eq!(c.attach(&(7, 3), "b"), None);
        assert_eq!(c.attach(&(8, 3), "other"), Some("other"));
        assert_eq!(c.complete(&(7, 3)), vec!["a", "b"]);
        assert!(!c.in_flight(&(7, 3)));
        assert_eq!(c.attached_total(), 2);
    }

    #[test]
    fn double_begin_is_rejected() {
        let mut c: Coalescer<u64, ()> = Coalescer::new();
        assert!(c.begin(1));
        assert!(!c.begin(1), "a key may have only one execution in flight");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn complete_without_waiters_is_empty() {
        let mut c: Coalescer<u64, ()> = Coalescer::new();
        c.begin(5);
        assert!(c.complete(&5).is_empty());
        assert!(c.complete(&5).is_empty(), "completing twice is harmless");
        assert!(c.is_empty());
    }
}
