//! Locality-aware batch formation.
//!
//! MS-BFS lane packing shares the per-machine edge-set scan across
//! every lane of a batch, so the scan work a batch triggers on a
//! machine is driven by the lanes whose frontiers touch that machine's
//! partition. Packing queries whose *sources* sit in the same
//! partition range concentrates the early (and usually heaviest)
//! supersteps on few machines and maximises shared-subgraph traversal
//! — the query-locality effect Q-Graph (Mayer et al.) reports as a
//! first-order win for multi-query batching.
//!
//! [`pack_locality`] selects up to `lanes` waiting traversals from a
//! FIFO queue, preferring the partitions already represented in the
//! batch, under a strict **fairness bound**: the oldest waiting
//! traversal is always taken, and any traversal that has been passed
//! over [`PackPolicy::fairness_bound`] times is promoted to mandatory
//! — so a query on a cold partition is delayed at most
//! `fairness_bound` batches, never starved.

/// One waiting traversal, as the packer sees it.
#[derive(Clone, Copy, Debug)]
pub struct PackItem {
    /// Partition range its source vertex lands in.
    pub partition: usize,
    /// Batches this traversal has already been passed over.
    pub skips: u32,
}

/// Fairness knob for [`pack_locality`].
#[derive(Clone, Copy, Debug)]
pub struct PackPolicy {
    /// Maximum times a traversal may be passed over before it becomes
    /// mandatory in the next batch. `0` makes every batch pure FIFO.
    pub fairness_bound: u32,
}

impl Default for PackPolicy {
    fn default() -> Self {
        Self { fairness_bound: 4 }
    }
}

/// Plain FIFO selection: the first `lanes` items, in queue order.
pub fn pack_fifo(len: usize, lanes: usize) -> Vec<usize> {
    (0..len.min(lanes)).collect()
}

/// Selects up to `lanes` indices from the FIFO queue `items`,
/// preferring partition locality under the fairness bound. The
/// returned indices are strictly ascending (queue order), so relative
/// arrival order is preserved within the batch.
///
/// Selection is a deterministic function of `(items, lanes, policy)`:
///
/// 1. **Mandatory pass** — the queue head, plus every item whose
///    `skips` already reached [`PackPolicy::fairness_bound`], in FIFO
///    order.
/// 2. **Locality passes** — walk the queue FIFO, taking items whose
///    partition is already represented in the batch; when a walk adds
///    no lane and lanes remain, admit the oldest unselected item
///    (opening its partition) and walk again.
pub fn pack_locality(items: &[PackItem], lanes: usize, policy: PackPolicy) -> Vec<usize> {
    if items.len() <= lanes {
        return (0..items.len()).collect();
    }
    if policy.fairness_bound == 0 {
        return pack_fifo(items.len(), lanes);
    }
    let mut selected = vec![false; items.len()];
    let mut n_selected = 0usize;
    let mut open: Vec<usize> = Vec::new(); // partitions represented
    let take = |i: usize, selected: &mut Vec<bool>, open: &mut Vec<usize>| {
        selected[i] = true;
        if !open.contains(&items[i].partition) {
            open.push(items[i].partition);
        }
    };

    // 1. Mandatory: queue head + fairness-bound breaches, FIFO order.
    for (i, item) in items.iter().enumerate() {
        if n_selected >= lanes {
            break;
        }
        if i == 0 || item.skips >= policy.fairness_bound {
            take(i, &mut selected, &mut open);
            n_selected += 1;
        }
    }

    // 2. Locality: FIFO walks over open partitions, opening the oldest
    // unselected item's partition whenever a walk stalls.
    while n_selected < lanes {
        let mut progressed = false;
        for (i, item) in items.iter().enumerate() {
            if n_selected >= lanes {
                break;
            }
            if !selected[i] && open.contains(&item.partition) {
                take(i, &mut selected, &mut open);
                n_selected += 1;
                progressed = true;
            }
        }
        if n_selected >= lanes {
            break;
        }
        if !progressed {
            match selected.iter().position(|&s| !s) {
                Some(i) => {
                    take(i, &mut selected, &mut open);
                    n_selected += 1;
                }
                None => break, // queue exhausted
            }
        }
    }
    selected.iter().enumerate().filter(|(_, &s)| s).map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(parts: &[usize]) -> Vec<PackItem> {
        parts.iter().map(|&p| PackItem { partition: p, skips: 0 }).collect()
    }

    #[test]
    fn short_queue_takes_everything() {
        let q = items(&[2, 0, 1]);
        assert_eq!(pack_locality(&q, 64, PackPolicy::default()), vec![0, 1, 2]);
    }

    #[test]
    fn groups_by_head_partition_first() {
        // Head is partition 0; the batch prefers the other partition-0
        // items over earlier-queued partition-1 items.
        let q = items(&[0, 1, 1, 0, 0, 1]);
        let sel = pack_locality(&q, 3, PackPolicy::default());
        assert_eq!(sel, vec![0, 3, 4]);
    }

    #[test]
    fn opens_next_partition_when_own_is_exhausted() {
        let q = items(&[0, 0, 1, 1, 2]);
        let sel = pack_locality(&q, 3, PackPolicy::default());
        // Both partition-0 items, then the oldest remaining (index 2)
        // opens partition 1.
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn fairness_bound_promotes_skipped_items() {
        let mut q = items(&[0, 1, 0, 0]);
        q[1].skips = 4; // passed over four batches already
        let sel = pack_locality(&q, 2, PackPolicy { fairness_bound: 4 });
        // The starving partition-1 item displaces a locality pick.
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn zero_fairness_degenerates_to_fifo() {
        let q = items(&[0, 1, 2, 0, 0]);
        assert_eq!(pack_locality(&q, 3, PackPolicy { fairness_bound: 0 }), vec![0, 1, 2]);
        assert_eq!(pack_fifo(5, 3), vec![0, 1, 2]);
    }

    #[test]
    fn starvation_is_bounded_under_adversarial_arrivals() {
        // Partition 9 sits behind an endless stream of partition-0
        // work. Simulate the service loop: unselected items age by one
        // skip per batch; the cold item must land within
        // fairness_bound + 1 batches.
        let bound = 3u32;
        let mut queue: Vec<PackItem> = items(&[0, 0, 9, 0, 0, 0, 0, 0]);
        let mut batches_waited = 0;
        loop {
            let sel = pack_locality(&queue, 2, PackPolicy { fairness_bound: bound });
            if sel.iter().any(|&i| queue[i].partition == 9) {
                break;
            }
            batches_waited += 1;
            assert!(batches_waited <= bound + 1, "cold-partition query starved");
            // Remove selected (descending), age the rest, refill with
            // fresh partition-0 arrivals at the tail.
            for &i in sel.iter().rev() {
                queue.remove(i);
            }
            for it in &mut queue {
                it.skips += 1;
            }
            while queue.len() < 8 {
                queue.push(PackItem { partition: 0, skips: 0 });
            }
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let q = items(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3]);
        let a = pack_locality(&q, 4, PackPolicy::default());
        let b = pack_locality(&q, 4, PackPolicy::default());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "indices must be ascending");
    }
}
