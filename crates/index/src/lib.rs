//! # cgraph-index — the reachability index tier
//!
//! Builds a per-partition reachability index over *boundary vertices*
//! (the targets of cross-partition edges) by reusing the batch
//! traversal engine itself: the boundary set is packed into MS-BFS
//! lanes ([`DistributedEngine::run_traversal_batch_probed`]) and one
//! bounded-hop sweep per chunk yields, simultaneously,
//!
//! * a [`LevelProfile`] per indexed source — the exact per-level visit
//!   counts a traversal would report, answering whole queries without
//!   traversing,
//! * a [`PartitionReach`] mask per (source, partition) — which BFS
//!   levels each partition gains first visits at, the input to the
//!   engine's superstep pruning, and
//! * first-visit levels between boundary vertices — the condensed
//!   boundary graph, labeled with pruned 2-hop landmark labels
//!   ([`TwoHopLabels`]) for boundary-to-boundary reachability.
//!
//! The index is an immutable value versioned by `graph_epoch`; the
//! query service rebuilds it inside every mutation commit fence and
//! consults it only when its epoch matches the engine's (see
//! `INDEXING.md` for the design contract and the pruning soundness
//! argument).
//!
//! An index-only answer is bit-identical to a traversal answer:
//!
//! ```
//! use cgraph_core::index_api::{IndexBuilder, IndexConfig, ReachIndex};
//! use cgraph_core::{DistributedEngine, EngineConfig};
//! use cgraph_graph::{Edge, EdgeList};
//! use cgraph_index::BoundaryIndexBuilder;
//!
//! // A 6-vertex path split over 2 machines; the cross-partition edge
//! // target is the (single) boundary vertex the index covers.
//! let mut edges = EdgeList::new();
//! for v in 0..5 {
//!     edges.push(Edge::unweighted(v, v + 1));
//! }
//! edges.set_num_vertices(6);
//! let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
//! let index = BoundaryIndexBuilder::new(IndexConfig::default()).build_tier(&engine).unwrap();
//!
//! let s = index.sources()[0];
//! let from_index = index.answer(s, 3).expect("complete sketch answers any k");
//! let from_traversal = engine.run_traversal_batch(&[s], &[3]).unwrap();
//! assert_eq!(from_index.visited, from_traversal.per_lane_visited[0]);
//! let column: Vec<u64> = from_traversal.per_level.iter().map(|row| row[0]).collect();
//! assert_eq!(from_index.per_level, column);
//! ```

#![warn(missing_docs)]

use cgraph_core::engine::{DistributedEngine, EngineError};
use cgraph_core::index_api::{IndexAnswer, IndexBuilder, IndexConfig, PrunePlan, ReachIndex};
use cgraph_graph::{
    BoundaryIndexMap, LevelProfile, PartitionReach, TwoHopLabels, VertexId, MAX_LANES,
};
use std::sync::Arc;

/// An immutable reachability index over one engine snapshot: distance
/// sketches and partition level-set masks for the indexed boundary
/// sources, plus 2-hop landmark labels over the condensed boundary
/// graph. Built by [`BoundaryIndexBuilder`]; consumed through the
/// [`ReachIndex`] trait by the scheduler and the query service.
pub struct IndexTier {
    epoch: u64,
    num_partitions: usize,
    hops: u32,
    /// Indexed sources, sorted ascending for binary-search lookup.
    sources: Vec<VertexId>,
    /// `profiles[i]` = the sketch of `sources[i]`.
    profiles: Vec<LevelProfile>,
    reach: PartitionReach,
    map: BoundaryIndexMap,
    labels: TwoHopLabels,
}

impl IndexTier {
    /// The indexed sources, ascending. Benches and tests draw their
    /// hot-source query streams from here.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// The sketch hop budget the index was built with.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// All boundary vertices of the partitioning (condensed-graph
    /// nodes), whether indexed as sources or not.
    pub fn boundary(&self) -> &[VertexId] {
        self.map.ids()
    }

    /// Total 2-hop label entries across the condensed boundary graph.
    pub fn label_entries(&self) -> usize {
        self.labels.num_entries()
    }
}

impl ReachIndex for IndexTier {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn answer(&self, source: VertexId, k: u32) -> Option<IndexAnswer> {
        let i = self.sources.binary_search(&source).ok()?;
        let (visited, per_level) = self.profiles[i].answer(k)?;
        Some(IndexAnswer { visited, per_level })
    }

    fn prune_plan(&self, sources: &[VertexId]) -> Option<PrunePlan> {
        let mut plan = PrunePlan::new(self.num_partitions, sources.len());
        for (lane, src) in sources.iter().enumerate() {
            if let Ok(i) = self.sources.binary_search(src) {
                let row = (0..self.num_partitions).map(|q| self.reach.mask(i, q)).collect();
                plan.set_lane(lane, row);
            }
        }
        (!plan.is_empty()).then_some(plan)
    }

    fn reaches(&self, u: VertexId, v: VertexId) -> Option<bool> {
        let un = self.map.index_of(u)?;
        let vn = self.map.index_of(v)?;
        if self.labels.reaches(un, vn) {
            return Some(true);
        }
        // A complete sketch saw *everything* reachable from `u`, so
        // the absence of a label path is a proof of unreachability;
        // an incomplete (budget-cut) sketch proves nothing negative.
        match self.sources.binary_search(&u) {
            Ok(i) if self.profiles[i].is_complete() => Some(false),
            _ => None,
        }
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.sources.capacity() * std::mem::size_of::<VertexId>()
            + self.profiles.iter().map(LevelProfile::size_bytes).sum::<usize>()
            + self.reach.size_bytes()
            + self.map.size_bytes()
            + self.labels.size_bytes()
    }

    fn num_sources(&self) -> usize {
        self.sources.len()
    }
}

/// Builds an [`IndexTier`] from an engine snapshot: ranks boundary
/// vertices by out-degree, caps them at
/// [`IndexConfig::max_sources`], and sweeps the survivors through the
/// probed batch-traversal path in [`MAX_LANES`]-wide chunks.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryIndexBuilder {
    config: IndexConfig,
}

impl BoundaryIndexBuilder {
    /// A builder with the given construction knobs.
    pub fn new(config: IndexConfig) -> Self {
        Self { config }
    }

    /// The construction knobs in force.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// Builds the concrete index value for `engine`'s current epoch.
    ///
    /// Runs one bounded-hop probed batch per [`MAX_LANES`]-wide chunk
    /// of indexed sources; the sketch budget is
    /// [`IndexConfig::effective_hops`] and each build BFS runs one
    /// hop further to observe completion (a lane that gains nothing
    /// at `hops + 1` has drained — its sketch is the full BFS).
    pub fn build_tier(&self, engine: &DistributedEngine) -> Result<IndexTier, EngineError> {
        let p = engine.num_machines();
        let hops = self.config.effective_hops();
        let map = BoundaryIndexMap::from_ids(
            engine.shards().iter().flat_map(|s| s.boundary_vertices().iter().copied()),
        );

        // Rank boundary vertices by out-degree (hubs first) and keep
        // the top `max_sources` as indexed sources, stored ascending.
        let mut ranked: Vec<(usize, VertexId)> = map
            .ids()
            .iter()
            .map(|&v| {
                let owner = engine.partition().owner(v);
                (engine.shards()[owner].out_neighbors_weighted(v).len(), v)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.truncate(self.config.max_sources);
        let mut sources: Vec<VertexId> = ranked.into_iter().map(|(_, v)| v).collect();
        sources.sort_unstable();

        let mut profiles: Vec<LevelProfile> = Vec::with_capacity(sources.len());
        let mut reach = PartitionReach::new(sources.len(), p);
        let mut fwd: Vec<Vec<(u32, u32)>> = vec![Vec::new(); map.len()];
        let probes = map.ids();
        let mut chunk_start = 0usize;
        while chunk_start < sources.len() {
            let chunk = &sources[chunk_start..(chunk_start + MAX_LANES).min(sources.len())];
            // One hop past the budget: completion detection (above).
            let ks = vec![hops + 1; chunk.len()];
            let pb = engine.run_traversal_batch_probed(chunk, &ks, probes)?;
            for (lane, &src) in chunk.iter().enumerate() {
                let src_idx = chunk_start + lane;
                let column: Vec<u64> = pb.result.per_level.iter().map(|row| row[lane]).collect();
                let complete =
                    column.len() <= (hops as usize) + 1 || column[(hops as usize) + 1] == 0;
                let mut levels: Vec<u64> =
                    column.iter().copied().take((hops as usize) + 1).collect();
                if complete {
                    while levels.len() > 1 && *levels.last().unwrap() == 0 {
                        levels.pop();
                    }
                }
                profiles.push(LevelProfile::new(levels, complete));
                // Level 0: the seed's own partition gains the source.
                reach.record_gain(src_idx, engine.partition().owner(src), 0);
                if !complete {
                    reach.mark_incomplete(src_idx, hops);
                }
            }
            for (m, rows) in pb.partition_gains.iter().enumerate() {
                for (h, row) in rows.iter().enumerate() {
                    let level = h as u32 + 1;
                    if level > hops {
                        // Gains at `hops + 1` only witness incompleteness,
                        // already folded in via `mark_incomplete`.
                        break;
                    }
                    for (lane, &gain) in row.iter().take(chunk.len()).enumerate() {
                        if gain > 0 {
                            reach.record_gain(chunk_start + lane, m, level);
                        }
                    }
                }
            }
            // Probe observations are exact first-visit distances —
            // condensed boundary-graph edges source → probe.
            for &(pi, lane, level) in &pb.probe_levels {
                if level == 0 {
                    continue; // the source itself
                }
                let src_node = self::node_of(&map, chunk[lane as usize]);
                fwd[src_node as usize].push((pi, level));
            }
            chunk_start += chunk.len();
        }
        for adj in &mut fwd {
            adj.sort_unstable();
            adj.dedup();
        }

        // Landmark order: condensed-graph degree, hubs first.
        let mut degree = vec![0u64; map.len()];
        for (u, adj) in fwd.iter().enumerate() {
            degree[u] += adj.len() as u64;
            for &(v, _) in adj {
                degree[v as usize] += 1;
            }
        }
        let mut order: Vec<u32> = (0..map.len() as u32).collect();
        order.sort_by(|&a, &b| degree[b as usize].cmp(&degree[a as usize]).then(a.cmp(&b)));
        let labels = TwoHopLabels::build(map.len(), &fwd, &order);

        Ok(IndexTier {
            epoch: engine.graph_epoch(),
            num_partitions: p,
            hops,
            sources,
            profiles,
            reach,
            map,
            labels,
        })
    }
}

/// A boundary vertex's condensed node index (sources are always in
/// the map — they were drawn from it).
fn node_of(map: &BoundaryIndexMap, v: VertexId) -> u32 {
    map.index_of(v).expect("indexed source is a boundary vertex")
}

impl IndexBuilder for BoundaryIndexBuilder {
    fn build(&self, engine: &DistributedEngine) -> Result<Arc<dyn ReachIndex>, EngineError> {
        Ok(Arc::new(self.build_tier(engine)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::EngineConfig;
    use cgraph_gen::rmat::{rmat, RmatParams};
    use cgraph_graph::{Edge, EdgeList};

    fn path_engine(n: u64, p: usize) -> DistributedEngine {
        let mut edges = EdgeList::new();
        for v in 0..n - 1 {
            edges.push(Edge::unweighted(v, v + 1));
        }
        edges.set_num_vertices(n);
        DistributedEngine::new(&edges, EngineConfig::new(p))
    }

    #[test]
    fn index_answers_match_traversal_on_path() {
        let engine = path_engine(24, 3);
        let tier = BoundaryIndexBuilder::new(IndexConfig::default()).build_tier(&engine).unwrap();
        assert!(tier.num_sources() > 0, "a 3-way path split has boundary vertices");
        for &s in tier.sources() {
            for k in [0u32, 1, 3, 16, u32::MAX] {
                let br = engine.run_traversal_batch(&[s], &[k]).unwrap();
                let column: Vec<u64> = br.per_level.iter().map(|r| r[0]).collect();
                if let Some(ans) = tier.answer(s, k) {
                    assert_eq!(ans.visited, br.per_lane_visited[0], "s={s} k={k}");
                    assert_eq!(ans.per_level, column, "s={s} k={k}");
                }
            }
        }
    }

    #[test]
    fn incomplete_sketches_refuse_deep_answers() {
        // hops=2 on a 24-vertex path: early boundary vertices reach
        // far past the budget, so their sketches are incomplete.
        let engine = path_engine(24, 3);
        let cfg = IndexConfig { hops: 2, max_sources: 1024 };
        let tier = BoundaryIndexBuilder::new(cfg).build_tier(&engine).unwrap();
        let deep = tier
            .sources()
            .iter()
            .find(|&&s| s + 10 < 24)
            .copied()
            .expect("some boundary vertex sits well before the path end");
        // Within the budget: exact and equal to traversal.
        let ans = tier.answer(deep, 2).expect("k within budget is exact");
        let br = engine.run_traversal_batch(&[deep], &[2]).unwrap();
        assert_eq!(ans.visited, br.per_lane_visited[0]);
        // Beyond the budget on an incomplete sketch: refused.
        assert_eq!(tier.answer(deep, 10), None);
    }

    #[test]
    fn answers_match_traversal_on_rmat() {
        let edges = rmat(9, 512 * 6, RmatParams::GRAPH500, 0xC0FFEE);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(4));
        let tier = BoundaryIndexBuilder::new(IndexConfig { hops: 8, max_sources: 64 })
            .build_tier(&engine)
            .unwrap();
        assert!(tier.num_sources() > 0);
        assert!(tier.size_bytes() > 0);
        for &s in tier.sources().iter().take(16) {
            for k in [1u32, 4, 8] {
                let ans = tier.answer(s, k).expect("k within budget is exact");
                let br = engine.run_traversal_batch(&[s], &[k]).unwrap();
                let column: Vec<u64> = br.per_level.iter().map(|r| r[0]).collect();
                assert_eq!(ans.visited, br.per_lane_visited[0], "s={s} k={k}");
                assert_eq!(ans.per_level, column, "s={s} k={k}");
            }
        }
    }

    #[test]
    fn reaches_is_sound_on_path() {
        let engine = path_engine(24, 4);
        let tier = BoundaryIndexBuilder::new(IndexConfig::default()).build_tier(&engine).unwrap();
        let b = tier.boundary().to_vec();
        assert!(b.len() >= 2, "4-way split yields several boundary vertices");
        for &u in &b {
            for &v in &b {
                match tier.reaches(u, v) {
                    // On a forward path, u reaches v iff u <= v.
                    Some(true) => assert!(u <= v, "claimed {u} -> {v}"),
                    Some(false) => assert!(u > v, "denied {u} -> {v}"),
                    None => {}
                }
            }
        }
        // Complete sketches decide every boundary pair on a small path.
        let lo = *b.first().unwrap();
        let hi = *b.last().unwrap();
        assert_eq!(tier.reaches(lo, hi), Some(true));
        assert_eq!(tier.reaches(hi, lo), Some(false));
        // Non-boundary vertices are not covered.
        assert_eq!(tier.reaches(0, hi), None);
    }

    #[test]
    fn prune_plan_covers_indexed_lanes_only() {
        let engine = path_engine(24, 3);
        let tier = BoundaryIndexBuilder::new(IndexConfig::default()).build_tier(&engine).unwrap();
        let s = tier.sources()[0];
        let plan = tier.prune_plan(&[s, 0]).expect("one covered lane");
        assert_eq!(plan.covered_lanes(), 1);
        assert_eq!(plan.num_partitions(), 3);
        // A batch of only unindexed sources compiles to no plan.
        assert!(tier.prune_plan(&[0, 1]).is_none());
    }

    #[test]
    fn empty_boundary_yields_empty_index() {
        // p=1: no cross-partition edges, no boundary, no sources.
        let engine = path_engine(8, 1);
        let tier = BoundaryIndexBuilder::new(IndexConfig::default()).build_tier(&engine).unwrap();
        assert_eq!(tier.num_sources(), 0);
        assert_eq!(tier.answer(3, 2), None);
        assert!(tier.prune_plan(&[3]).is_none());
        assert_eq!(tier.reaches(1, 2), None);
    }

    #[test]
    fn indexed_scheduler_is_bit_identical_to_plain() {
        use cgraph_core::{KhopQuery, QueryScheduler, SchedulerConfig};
        let mut edges = EdgeList::new();
        for v in 0..40u64 {
            edges.push(Edge::unweighted(v, (v + 1) % 40));
        }
        edges.set_num_vertices(40);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(4));
        let index = BoundaryIndexBuilder::new(IndexConfig::default()).build(&engine).unwrap();
        // Sources include every boundary vertex (indexed, fast-pathed)
        // plus interior ones (batched, with pruning masks applied).
        let queries: Vec<KhopQuery> =
            (0..20).map(|i| KhopQuery::single(i, (i as u64 * 2) % 40, 5)).collect();
        let plain = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);
        let fast = QueryScheduler::new(&engine, SchedulerConfig::default())
            .with_index(index)
            .execute(&queries);
        for (a, b) in plain.iter().zip(&fast) {
            assert_eq!(a.visited, b.visited, "query {}", a.id);
            assert_eq!(a.per_level, b.per_level, "query {}", a.id);
        }
    }

    #[test]
    fn max_sources_caps_the_sketch_set() {
        let engine = path_engine(40, 4);
        let tier = BoundaryIndexBuilder::new(IndexConfig { hops: 4, max_sources: 2 })
            .build_tier(&engine)
            .unwrap();
        assert!(tier.num_sources() <= 2);
        assert!(tier.boundary().len() >= tier.num_sources());
    }
}
