//! The persistent streaming query service — the serving-path
//! extension of §3.3.
//!
//! [`crate::scheduler::QueryScheduler`] answers one *closed* batch of
//! queries handed over all at once. A serving deployment instead sees
//! an **open stream**: queries arrive at arbitrary times from many
//! client threads and each wants an answer as soon as possible.
//! [`QueryService`] bridges the two worlds:
//!
//! * an **admission queue** collects incoming [`KhopQuery`]s from any
//!   number of submitter threads, applying queue-depth backpressure
//!   ([`ServiceConfig::max_queue_depth`]): submitters block while the
//!   queue is full, so an overloaded service slows producers instead
//!   of growing without bound;
//! * a **dispatcher thread** packs queued traversals into bit-frontier
//!   batches with a *fill-or-deadline* policy — a batch goes out as
//!   soon as [`QueryService::effective_lanes`] traversals are waiting,
//!   or when the oldest admitted traversal has waited
//!   [`ServiceConfig::max_batch_delay`], whichever comes first. The
//!   lane width honours [`SchedulerConfig::memory_budget_bytes`]
//!   exactly like the closed-batch scheduler;
//! * batches execute on a long-lived
//!   [`cgraph_comm::PersistentCluster`] via
//!   [`DistributedEngine::run_traversal_batch_on`], so no machine
//!   threads are spawned per batch — the serving path amortises thread
//!   start-up across the whole stream;
//! * per-query latency — admission wait plus batch execution — flows
//!   into [`ResponseStats`], the same distributions every figure of §4
//!   reports.
//!
//! # Query plane
//!
//! Between admission and the engine sits an optional **query plane**
//! ([`QueryPlaneConfig`]) exploiting the redundancy of real request
//! streams (the paper's "heavy traffic from millions of users" is
//! Zipf-skewed — the same hot sources are queried over and over):
//!
//! * a **result cache** ([`cgraph_cache::ResultCache`]) answers
//!   repeated `(source, k)` queries without burning a lane: bounded in
//!   bytes, CLOCK-evicted on a logical clock (no wall time — runs are
//!   reproducible), keyed by `(source, k, graph_epoch)` and
//!   invalidated wholesale by [`QueryService::invalidate_cache`].
//!   Only *committed* batches populate it: insertion happens exactly
//!   once, on the engine's `Ok` return, after every in-batch recovery
//!   and retry has resolved — a crashed or degraded attempt can never
//!   leak partial state into the cache;
//! * an **in-flight coalescer** ([`cgraph_cache::Coalescer`])
//!   single-flights identical traversals: while one executes, every
//!   duplicate — queued behind it or arriving mid-batch — attaches to
//!   that execution and shares its result (or its failure);
//! * a **locality-aware packer** ([`cgraph_cache::pack_locality`])
//!   fills batches with queries whose sources share partition ranges,
//!   under a strict fairness bound so cold-partition queries are
//!   delayed at most [`QueryPlaneConfig::locality_fairness`] batches;
//! * independent of all knobs, batch formation **never spends two
//!   lanes on identical `(source, k)` traversals**: duplicates inside
//!   one batch window always collapse into a single lane.
//!
//! # Index tier
//!
//! With [`ServiceConfig::index`] set, the service keeps a
//! [`ReachIndex`] built for the engine's current epoch (see
//! `INDEXING.md` for the design contract):
//!
//! * traversals whose `(source, k)` the index covers exactly are
//!   answered **index-only** — at admission or during batch
//!   formation, without spending a lane, bit-identical to what the
//!   traversal would have returned;
//! * traversals that do execute carry the index's per-partition
//!   level-set masks into the engine, which suppresses cross-machine
//!   frontier deliveries that are provably no-ops (sound pruning:
//!   answers are untouched, wire traffic and absorb work shrink);
//! * the index is versioned by graph epoch and consulted **only**
//!   while its epoch matches the serving snapshot's — every epoch
//!   commit (and every degradation) rebuilds it before the next batch
//!   forms, so a stale index can never answer or prune.
//!
//! # Mutation plane
//!
//! [`QueryService::apply_updates`] buffers edge insertions/deletions
//! ([`cgraph_graph::UpdateBatch`]) without touching the serving
//! snapshot; [`QueryService::commit_epoch`] — or crossing
//! [`MutationConfig::commit_threshold`] — asks the dispatcher to fold
//! them in **between batches**: batch formation is naturally quiesced
//! (the dispatcher is single-threaded), the buffered updates become a
//! new engine snapshot via [`DistributedEngine::with_updates`]
//! (delta-overlay publish, or a full CSR/CSC fold past
//! [`MutationConfig::fold_threshold`]), the graph epoch advances, and
//! stale cache entries are fenced with
//! [`cgraph_cache::ResultCache::invalidate_before`]. Batches already
//! dispatched finish against their admission-epoch snapshot — every
//! [`QueryResult::epoch`] names the snapshot that produced it. There
//! is exactly one epoch-advancement path:
//! [`QueryService::invalidate_cache`] is a commit with no pending
//! updates.
//!
//! # Fault-tolerance policy
//!
//! The service layers *policy* over the engine's recovery *mechanism*
//! ([`DistributedEngine::run_traversal_batch_recoverable`]):
//!
//! * **chaos plane** — [`ServiceConfig::fault_plan`] installs a
//!   deterministic [`FaultPlan`]; each dispatched batch becomes one
//!   chaos *job* (`job = batch sequence number`), so a plan armed for
//!   a job window poisons exactly those batches and no others;
//! * **retry with backoff** — a batch that still fails after the
//!   engine's in-batch recoveries is retried up to
//!   [`ServiceConfig::max_retries`] times with exponential backoff
//!   plus deterministic jitter; retry attempts are salted
//!   (`first_attempt = retry × (max_recoveries + 1)`) so a healing
//!   plan sees monotone attempt numbers across the whole batch life;
//! * **failure isolation** — a batch that exhausts its retries fails
//!   only its own lanes ([`ServiceError::BatchFailed`]); queued and
//!   future queries keep flowing on the surviving cluster;
//! * **per-query deadlines** — [`ServiceConfig::query_deadline`]
//!   bounds each query's end-to-end latency: expired traversals are
//!   failed with [`ServiceError::DeadlineExceeded`] before dispatch,
//!   and [`QueryTicket::wait`] enforces the same bound client-side;
//! * **graceful degradation** — when the same machine is blamed for
//!   [`ServiceConfig::degrade_after`] panics, the dispatcher
//!   re-partitions the graph onto `p - 1` machines
//!   ([`DistributedEngine::repartitioned`]) and replaces the cluster;
//!   degrading does not consume a retry.
//!
//! # Example
//!
//! ```
//! use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryService, ServiceConfig};
//! use std::sync::Arc;
//!
//! let ring: cgraph_graph::EdgeList = (0..12u64).map(|v| (v, (v + 1) % 12)).collect();
//! let engine = Arc::new(DistributedEngine::new(&ring, EngineConfig::new(2)));
//! let service = QueryService::start(engine, ServiceConfig::default());
//! // `query` = submit + wait; any number of threads may call it.
//! let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
//! assert_eq!(r.visited, 4); // vertices 0..=3 on the ring
//! assert_eq!(service.stats().queries_completed, 1);
//! service.shutdown();
//! ```

use crate::config::EngineConfig;
use crate::durability::{
    recover, DurabilityConfig, DurabilityPlane, DurabilityStats, RecoveryOutcome,
};
use crate::engine::{DistributedEngine, EngineError, FaultInjection};
use crate::index_api::{IndexBuilder, ReachIndex};
use crate::metrics::ResponseStats;
use crate::query::{KhopQuery, QueryResult};
use crate::recovery::RecoveryConfig;
use crate::scheduler::{QueryScheduler, SchedulerConfig};
use cgraph_cache::{
    pack_fifo, pack_locality, CacheKey, CachedTraversal, Coalescer, PackItem, PackPolicy,
    ResultCache,
};
use cgraph_comm::chaos::FaultPlan;
use cgraph_comm::{ClusterError, PersistentCluster};
use cgraph_graph::delta::{EdgeUpdate, UpdateBatch};
use cgraph_graph::snapshot::DiskFaults;
use cgraph_graph::{EdgeList, LaneWidth};
use cgraph_obs::{
    log2_edges, Counter, Gauge, Histogram, Obs, TraceCtx, Tracer, COORD, PAPER_LATENCY_EDGES_SECS,
};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a submitted query could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has been shut down (or its dispatcher is gone); no
    /// further queries are accepted.
    ShutDown,
    /// The batch carrying this query failed — a machine of the
    /// persistent cluster panicked mid-execution and every recovery
    /// and retry was exhausted. The message is the underlying cluster
    /// error; the service itself keeps serving.
    BatchFailed(String),
    /// The query's [`ServiceConfig::query_deadline`] elapsed before a
    /// result was produced.
    DeadlineExceeded,
    /// The query was rejected at admission: a source vertex lies
    /// outside the graph's vertex range. Caught before batching so a
    /// malformed query can never take down the batch it would have
    /// shared lanes with.
    InvalidQuery(String),
    /// The service configuration is invalid — a knob holds a value the
    /// service cannot run with (zero checkpoint interval, zero commit
    /// threshold, zero snapshot cadence). Caught at construction by
    /// [`QueryService::try_start`] / [`QueryService::open_or_recover`],
    /// before any thread is spawned or file is touched.
    InvalidConfig(String),
    /// The durability plane failed: the data directory could not be
    /// opened, the WAL could not be appended, or recovery found
    /// internally inconsistent durable state.
    Durability(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShutDown => write!(f, "query service is shut down"),
            ServiceError::BatchFailed(msg) => {
                write!(f, "batch execution failed: {msg}")
            }
            ServiceError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ServiceError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            ServiceError::InvalidConfig(msg) => {
                write!(f, "invalid service configuration: {msg}")
            }
            ServiceError::Durability(msg) => write!(f, "durability failure: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Knobs of the query plane sitting between admission and the engine:
/// result caching, in-flight coalescing and locality-aware packing.
/// Everything defaults to *off*, in which case batch formation is
/// byte-identical to the plain FIFO fill-or-deadline service (except
/// that identical traversals never occupy two lanes of one batch —
/// that de-duplication is unconditional).
#[derive(Clone, Debug)]
pub struct QueryPlaneConfig {
    /// Result-cache capacity in bytes (`None` — the default — disables
    /// the cache). Entries are charged their real payload size plus a
    /// fixed overhead; eviction is deterministic CLOCK on a logical
    /// clock, so a given admission order always evicts the same keys.
    pub cache_capacity_bytes: Option<usize>,
    /// Coalesce identical `(source, k)` traversals onto executions
    /// already in flight, and let one lane answer every queued
    /// duplicate of its key.
    pub coalesce: bool,
    /// Pack batches by source partition locality instead of plain
    /// FIFO when the queue overflows one batch.
    pub pack_locality: bool,
    /// Fairness bound for locality packing: a traversal passed over
    /// this many batches is promoted to mandatory, so cold-partition
    /// queries are delayed at most this many batches, never starved.
    /// `0` degenerates locality packing to FIFO.
    pub locality_fairness: u32,
}

impl Default for QueryPlaneConfig {
    fn default() -> Self {
        Self {
            cache_capacity_bytes: None,
            coalesce: false,
            pack_locality: false,
            locality_fairness: 4,
        }
    }
}

/// Knobs of the mutation plane: when buffered edge updates are folded
/// into a new serving snapshot.
#[derive(Clone, Copy, Debug)]
pub struct MutationConfig {
    /// Buffered-update count at which the dispatcher commits a new
    /// epoch on its own, without waiting for an explicit
    /// [`QueryService::commit_epoch`]. `None` (the default) commits
    /// only on explicit request.
    pub commit_threshold: Option<usize>,
    /// Delta-overlay entry count above which a commit folds the
    /// overlay into fresh base CSR/CSC edge-sets instead of publishing
    /// the overlay next to the base (see
    /// [`DistributedEngine::with_updates`]).
    pub fold_threshold: usize,
}

impl Default for MutationConfig {
    fn default() -> Self {
        Self { commit_threshold: None, fold_threshold: 1 << 16 }
    }
}

/// Tuning knobs for a [`QueryService`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Batch shaping shared with the closed-batch scheduler: lane
    /// width, subgraph sharing, and the memory budget that narrows the
    /// effective lane count. (`use_sim_time` is ignored — a serving
    /// latency is inherently wall clock.)
    pub scheduler: SchedulerConfig,
    /// How long the oldest admitted traversal may wait before a
    /// partially-filled batch is flushed anyway. Trades per-query
    /// latency against batch fill (throughput).
    pub max_batch_delay: Duration,
    /// Admission-queue depth, in traversals, above which submitters
    /// block. A query's traversals are always admitted together, so
    /// the queue may transiently overshoot by one query's source count.
    pub max_queue_depth: usize,
    /// Deterministic chaos plan injected into every dispatched batch
    /// (the batch sequence number is the chaos *job*, so
    /// [`FaultPlan::arm_jobs`] selects which batches are poisoned).
    /// `None` (the default) runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// End-to-end deadline applied to every query from its submission
    /// instant. Expired traversals fail with
    /// [`ServiceError::DeadlineExceeded`] instead of being dispatched,
    /// and [`QueryTicket::wait`] stops waiting at the same instant.
    /// `None` (the default) means queries wait indefinitely.
    pub query_deadline: Option<Duration>,
    /// Query-plane knobs: result cache, in-flight coalescing and
    /// locality-aware packing. All off by default.
    pub query_plane: QueryPlaneConfig,
    /// Reachability-index builder (see `INDEXING.md`). `None` — the
    /// default — serves without an index. When set, the builder runs
    /// once at start-up and again inside every epoch commit and
    /// degradation, so the live index always matches the serving
    /// snapshot; covered queries are answered index-only and executed
    /// batches are pruned. A failed build logs and serves unindexed —
    /// the index is an accelerator, never a correctness dependency.
    pub index: Option<Arc<dyn IndexBuilder>>,
    /// Mutation-plane knobs: commit trigger and delta fold threshold.
    pub mutation: MutationConfig,
    /// Durability-plane knobs: data directory, snapshot cadence and
    /// retention. `None` (the default) serves purely in memory; set it
    /// and start with [`QueryService::open_or_recover`] to survive
    /// `kill -9` — every update batch is WAL-logged before it is
    /// buffered and every epoch commit is fenced on disk.
    pub durability: Option<DurabilityConfig>,
    /// Whole-batch resubmissions after the engine's in-batch
    /// recoveries are exhausted on a recoverable error.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per retry, plus a
    /// deterministic jitter in `[0, retry_backoff)`.
    pub retry_backoff: Duration,
    /// Checkpointing/in-batch recovery knobs handed to
    /// [`DistributedEngine::run_traversal_batch_recoverable`].
    pub recovery: RecoveryConfig,
    /// Degrade to `p - 1` machines once the same machine has been
    /// blamed for this many panics (`None` — the default — never
    /// degrades). Degrading re-partitions the graph, replaces the
    /// persistent cluster, resets blame, and does not consume a retry.
    pub degrade_after: Option<u32>,
    /// Observability bundle shared across the whole stack. When set,
    /// the service registers its own metrics (queue depth, lane
    /// occupancy, latency histograms, query/batch counters), installs
    /// the bundle on the persistent cluster (comm-layer link/chaos
    /// counters and per-machine tracers, re-installed across
    /// degradations), and emits dispatcher trace events on the
    /// coordinator ring. `None` (the default) runs unobserved at zero
    /// cost.
    pub obs: Option<Arc<Obs>>,
    /// Fault-injection seam predating the chaos plane: called with the
    /// machine id at the start of every machine's share of every
    /// batch. When set, batches run on the legacy non-recoverable path
    /// (no checkpoints, no retries).
    #[deprecated(since = "0.2.0", note = "use `fault_plan` (a deterministic FaultPlan) instead")]
    pub fault_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl Default for ServiceConfig {
    #[allow(deprecated)]
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            max_batch_delay: Duration::from_millis(2),
            max_queue_depth: 1024,
            fault_plan: None,
            query_deadline: None,
            query_plane: QueryPlaneConfig::default(),
            index: None,
            mutation: MutationConfig::default(),
            durability: None,
            max_retries: 2,
            retry_backoff: Duration::from_micros(200),
            recovery: RecoveryConfig::default(),
            degrade_after: None,
            obs: None,
            fault_hook: None,
        }
    }
}

impl fmt::Debug for ServiceConfig {
    #[allow(deprecated)]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("scheduler", &self.scheduler)
            .field("max_batch_delay", &self.max_batch_delay)
            .field("max_queue_depth", &self.max_queue_depth)
            .field("fault_plan", &self.fault_plan)
            .field("query_deadline", &self.query_deadline)
            .field("query_plane", &self.query_plane)
            .field("index", &self.index.is_some())
            .field("mutation", &self.mutation)
            .field("durability", &self.durability)
            .field("max_retries", &self.max_retries)
            .field("retry_backoff", &self.retry_backoff)
            .field("recovery", &self.recovery)
            .field("degrade_after", &self.degrade_after)
            .field("obs", &self.obs.is_some())
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

/// Handle to one in-flight query: redeem it with
/// [`QueryTicket::wait`] for the result.
pub struct QueryTicket {
    rx: crossbeam_channel::Receiver<Result<QueryResult, ServiceError>>,
    /// The query's absolute deadline (admission instant plus
    /// [`ServiceConfig::query_deadline`]), enforced by `wait`.
    deadline: Option<Instant>,
}

impl fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryTicket").field("deadline", &self.deadline).finish_non_exhaustive()
    }
}

impl QueryTicket {
    /// Blocks until the query's batch (or batches) completed and
    /// returns its result. With a [`ServiceConfig::query_deadline`]
    /// configured, waits at most until the query's deadline and then
    /// returns [`ServiceError::DeadlineExceeded`].
    pub fn wait(self) -> Result<QueryResult, ServiceError> {
        match self.deadline {
            None => self.rx.recv().unwrap_or(Err(ServiceError::ShutDown)),
            Some(d) => match self.rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                Ok(reply) => reply,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    Err(ServiceError::DeadlineExceeded)
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    Err(ServiceError::ShutDown)
                }
            },
        }
    }

    /// Non-blocking poll; `None` while the query is still in flight.
    /// A dead dispatcher (result channel disconnected before a reply
    /// arrived) yields `Some(Err(ServiceError::ShutDown))`, so pollers
    /// never spin on a query that can no longer complete; likewise an
    /// expired deadline yields `Some(Err(ServiceError::DeadlineExceeded))`.
    pub fn try_wait(&self) -> Option<Result<QueryResult, ServiceError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(crossbeam_channel::TryRecvError::Empty) => {
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    Some(Err(ServiceError::DeadlineExceeded))
                } else {
                    None
                }
            }
            Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Err(ServiceError::ShutDown)),
        }
    }
}

/// Latency and volume counters accumulated over the service lifetime.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries_completed: u64,
    /// Queries failed by a dying batch.
    pub queries_failed: u64,
    /// Queries failed because their deadline elapsed (included in
    /// `queries_failed`).
    pub queries_deadline_exceeded: u64,
    /// Batches dispatched to the persistent cluster (successful ones).
    pub batches_dispatched: u64,
    /// Whole-batch resubmissions by the service retry policy.
    pub retries: u64,
    /// In-batch recoveries performed by the engine (confined replays
    /// plus global rollbacks).
    pub recoveries: u64,
    /// Superstep checkpoints committed across all batches.
    pub checkpoints_taken: u64,
    /// Checkpoint restores (confined replays and global rollbacks that
    /// resumed from a committed checkpoint).
    pub checkpoints_restored: u64,
    /// Failed partitions replayed confined, without re-executing
    /// healthy partitions.
    pub partitions_replayed: u64,
    /// Whole-batch rollbacks (the fallback when confined recovery's
    /// preconditions fail, and the only recovery mode in async).
    pub full_rollbacks: u64,
    /// Times the service degraded onto a smaller cluster after
    /// repeated same-machine failures.
    pub degraded_generations: u64,
    /// Traversals answered from the result cache (no lane spent).
    /// Each admitted traversal records at most one hit over its life.
    pub cache_hits: u64,
    /// Admission-time cache lookups that found nothing (zero while the
    /// cache is disabled). A traversal that misses at admission may
    /// still hit at pack time if an earlier batch committed its key.
    pub cache_misses: u64,
    /// Entries committed into the result cache (one per lane of each
    /// successfully committed batch, minus epoch-stale lanes).
    pub cache_insertions: u64,
    /// Entries the CLOCK hand evicted to make room.
    pub cache_evictions: u64,
    /// Entries currently resident in the result cache.
    pub cache_entries: u64,
    /// Bytes currently charged against the cache capacity.
    pub cache_bytes: u64,
    /// Traversals that shared another traversal's execution instead of
    /// occupying a lane: in-batch duplicates (always collapsed),
    /// queued duplicates and mid-flight attaches (with coalescing on).
    pub coalesced_traversals: u64,
    /// Reachability-index builds: the start-up build plus one rebuild
    /// per epoch commit and per degradation (zero without
    /// [`ServiceConfig::index`], like every index counter below).
    pub index_builds: u64,
    /// Traversals answered index-only — straight from a distance
    /// sketch, bit-identical to a traversal, no lane spent.
    pub index_only_answers: u64,
    /// Cross-machine frontier entries suppressed by index pruning
    /// (provably no-op deliveries dropped before the wire).
    pub index_pruned_sends: u64,
    /// Whole per-partition frontier messages index pruning emptied —
    /// `(superstep, partition)` deliveries that never left the sender.
    pub index_pruned_partitions: u64,
    /// Boundary sources the live index holds sketches for.
    pub index_sources: u64,
    /// Estimated resident bytes of the live index.
    pub index_bytes: u64,
    /// Edge updates folded into a committed epoch (accepted by
    /// [`QueryService::apply_updates`] and since committed).
    pub updates_applied: u64,
    /// Edge insertions among the committed updates.
    pub updates_inserted: u64,
    /// Edge deletions among the committed updates.
    pub updates_deleted: u64,
    /// Epoch commits performed: explicit [`QueryService::commit_epoch`]
    /// calls, threshold-triggered commits, and
    /// [`QueryService::invalidate_cache`] bumps.
    pub epoch_commits: u64,
    /// Commits that folded the delta overlay into fresh base CSR/CSC
    /// edge-sets (subset of `epoch_commits`).
    pub epoch_folds: u64,
    /// Edge updates buffered but not yet committed.
    pub pending_updates: u64,
    /// Delta-overlay adjacency rows live in the serving snapshot
    /// (committed updates not yet folded into the base).
    pub delta_entries: u64,
    /// Estimated bytes of the live delta overlays.
    pub delta_bytes: u64,
    /// WAL records appended — update batches plus commit fences (zero
    /// with durability off, like every durability counter below).
    pub wal_records: u64,
    /// Bytes appended to the update WAL.
    pub wal_bytes: u64,
    /// Epoch snapshots that reached their final name on disk.
    pub snapshots_written: u64,
    /// Bytes of encoded snapshot data written (including writes whose
    /// rename was lost to fault injection).
    pub snapshot_bytes: u64,
    /// WAL records replayed by recovery when this service opened.
    pub wal_replayed: u64,
    /// Snapshot files rejected by checksum/decode during recovery.
    pub snapshots_corrupt: u64,
    /// Crash recoveries performed (1 when this service was rebuilt
    /// from durable state by [`QueryService::open_or_recover`]).
    pub durable_recoveries: u64,
    /// Epoch of the newest snapshot on disk.
    pub last_snapshot_epoch: u64,
    /// Per-query admission wait: submission → batch dispatch (mean
    /// over the query's traversals).
    pub admission_wait: ResponseStats,
    /// Per-query execution time: the lane-completion share of its
    /// batch, exactly as the closed-batch scheduler accounts it.
    pub exec: ResponseStats,
    /// Per-query end-to-end response: admission wait + execution —
    /// what a client of the service observes.
    pub response: ResponseStats,
}

/// One admitted traversal (queries are exploded on admission, exactly
/// like [`QueryScheduler::execute`] explodes its closed batch).
struct Traversal {
    source: u64,
    k: u32,
    submitted: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketState>,
    /// Batches this traversal has been passed over by locality
    /// packing — the packer's fairness bound caps it.
    skips: u32,
}

impl Traversal {
    /// The query-plane identity of this traversal under `epoch`.
    fn key(&self, epoch: u64) -> CacheKey {
        CacheKey { source: self.source, k: self.k, epoch }
    }
}

/// One lane of a formed batch: the `primary` traversal executes; every
/// `follower` is an identical `(source, k)` traversal sharing its
/// result — in-batch duplicates, queued duplicates, and (while the
/// batch runs) coalesced late arrivals.
struct LaneGroup {
    key: CacheKey,
    primary: Traversal,
    followers: Vec<Traversal>,
}

/// Shared completion state of one query across its traversals.
struct TicketState {
    id: usize,
    total: usize,
    acc: Mutex<TicketAcc>,
    reply: crossbeam_channel::Sender<Result<QueryResult, ServiceError>>,
}

#[derive(Default)]
struct TicketAcc {
    done: usize,
    failed: Option<ServiceError>,
    visited: u64,
    per_level: Vec<u64>,
    wait_sum: Duration,
    exec_sum: Duration,
    resp_sum: Duration,
    /// Newest epoch any traversal of the query answered against (the
    /// traversals of one query can straddle a commit; the folded
    /// result is labelled conservatively with the newest).
    epoch: u64,
}

struct QueueState {
    queue: VecDeque<Traversal>,
    closed: bool,
}

/// Buffered edge updates awaiting the next epoch commit, plus the
/// commit-request handshake between mutators and the dispatcher.
#[derive(Default)]
struct PendingUpdates {
    updates: Vec<EdgeUpdate>,
    /// Waiters blocked in [`QueryService::commit_epoch`]; each receives
    /// the new epoch once the dispatcher performs the commit.
    waiters: Vec<crossbeam_channel::Sender<u64>>,
    /// A commit is due — an explicit request or a crossed
    /// [`MutationConfig::commit_threshold`]. Cleared when the
    /// dispatcher takes the batch.
    requested: bool,
}

#[derive(Default)]
struct MetricsAcc {
    completed: u64,
    failed: u64,
    deadline_exceeded: u64,
    batches: u64,
    retries: u64,
    recoveries: u64,
    checkpoints_taken: u64,
    checkpoints_restored: u64,
    partitions_replayed: u64,
    full_rollbacks: u64,
    degraded_generations: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_insertions: u64,
    cache_evictions: u64,
    coalesced: u64,
    index_builds: u64,
    index_only: u64,
    index_pruned_sends: u64,
    index_pruned_partitions: u64,
    updates_applied: u64,
    updates_inserted: u64,
    updates_deleted: u64,
    epoch_commits: u64,
    epoch_folds: u64,
    /// Mirrored from the dispatcher's engine at each commit — the
    /// dispatcher owns the live engine, so [`QueryService::stats`]
    /// reads the last committed value here.
    delta_entries: u64,
    delta_bytes: u64,
    wait: Vec<Duration>,
    exec: Vec<Duration>,
    response: Vec<Duration>,
}

/// The service's cached observability handles: registered once at
/// start-up, then only atomic operations on the submit/complete paths.
/// Counter increments sit exactly next to the matching [`MetricsAcc`]
/// field updates, so a registry snapshot always agrees with
/// [`QueryService::stats`].
struct ServiceObs {
    tracer: Tracer,
    queries_submitted: Arc<Counter>,
    queries_completed: Arc<Counter>,
    queries_failed: Arc<Counter>,
    queries_deadline_exceeded: Arc<Counter>,
    batches_dispatched: Arc<Counter>,
    retries: Arc<Counter>,
    degraded_generations: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    batch_width: Arc<Gauge>,
    batch_lanes: Arc<Histogram>,
    admission_wait: Arc<Histogram>,
    exec: Arc<Histogram>,
    response: Arc<Histogram>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_insertions: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_coalesced: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    cache_bytes: Arc<Gauge>,
    index_builds: Arc<Counter>,
    index_build_seconds: Arc<Histogram>,
    index_only_answers: Arc<Counter>,
    index_pruned_sends: Arc<Counter>,
    index_pruned_partitions: Arc<Counter>,
    index_sources: Arc<Gauge>,
    index_bytes: Arc<Gauge>,
    mutation_updates_applied: Arc<Counter>,
    mutation_edges_inserted: Arc<Counter>,
    mutation_edges_deleted: Arc<Counter>,
    mutation_commits: Arc<Counter>,
    mutation_folds: Arc<Counter>,
    mutation_pending: Arc<Gauge>,
    mutation_delta_entries: Arc<Gauge>,
    mutation_delta_bytes: Arc<Gauge>,
    durability_wal_records: Arc<Counter>,
    durability_wal_bytes: Arc<Counter>,
    durability_snapshots_written: Arc<Counter>,
    durability_snapshot_bytes: Arc<Counter>,
    durability_wal_replayed: Arc<Counter>,
    durability_snapshots_corrupt: Arc<Counter>,
    durability_recoveries: Arc<Counter>,
    durability_last_snapshot_epoch: Arc<Gauge>,
}

impl ServiceObs {
    fn new(obs: &Obs, lanes: usize) -> Self {
        let m = &obs.metrics;
        Self {
            tracer: obs.trace.tracer(COORD),
            queries_submitted: m.counter(
                "cgraph_service_queries_submitted_total",
                "Queries admitted to the service (before batching).",
            ),
            queries_completed: m.counter(
                "cgraph_service_queries_completed_total",
                "Queries answered successfully.",
            ),
            queries_failed: m.counter(
                "cgraph_service_queries_failed_total",
                "Queries failed by a dying batch or an expired deadline.",
            ),
            queries_deadline_exceeded: m.counter(
                "cgraph_service_queries_deadline_exceeded_total",
                "Queries failed because their deadline elapsed (subset of failures).",
            ),
            batches_dispatched: m.counter(
                "cgraph_service_batches_dispatched_total",
                "Batches the dispatcher completed on the persistent cluster.",
            ),
            retries: m.counter(
                "cgraph_service_retries_total",
                "Whole-batch resubmissions by the service retry policy.",
            ),
            degraded_generations: m.counter(
                "cgraph_service_degraded_generations_total",
                "Times the service re-partitioned onto a smaller cluster.",
            ),
            queue_depth: m.gauge(
                "cgraph_service_queue_depth",
                "Traversals currently in the admission queue.",
            ),
            batch_width: m.gauge(
                "cgraph_service_batch_width",
                "Bit width of the packed traversal state (64/128/256/512); \
                 fixed at start-up by the lane count and memory budget.",
            ),
            batch_lanes: m.histogram(
                "cgraph_service_batch_lanes",
                "Lane occupancy of dispatched batches (fill-or-deadline packing).",
                &log2_edges(lanes.next_power_of_two().trailing_zeros() + 1),
            ),
            admission_wait: m.histogram(
                "cgraph_service_admission_wait_seconds",
                "Per-query admission wait: submission to batch dispatch.",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            exec: m.histogram(
                "cgraph_service_exec_seconds",
                "Per-query execution time: the lane-completion share of its batch.",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            response: m.histogram(
                "cgraph_service_response_seconds",
                "Per-query end-to-end response time (admission wait + execution).",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            cache_hits: m.counter(
                "cgraph_cache_hits_total",
                "Traversals answered from the result cache (no lane spent).",
            ),
            cache_misses: m.counter(
                "cgraph_cache_misses_total",
                "Admission-time cache lookups that found nothing.",
            ),
            cache_insertions: m.counter(
                "cgraph_cache_insertions_total",
                "Entries committed into the result cache by successful batches.",
            ),
            cache_evictions: m.counter(
                "cgraph_cache_evictions_total",
                "Entries the CLOCK hand evicted to make room.",
            ),
            cache_coalesced: m.counter(
                "cgraph_cache_coalesced_total",
                "Traversals that shared another traversal's execution \
                 (in-batch duplicates, queued duplicates, mid-flight attaches).",
            ),
            cache_entries: m
                .gauge("cgraph_cache_entries", "Entries currently resident in the result cache."),
            cache_bytes: m.gauge(
                "cgraph_cache_bytes",
                "Bytes currently charged against the result-cache capacity.",
            ),
            index_builds: m.counter(
                "cgraph_index_builds_total",
                "Reachability-index builds (start-up, epoch commits, degradations).",
            ),
            index_build_seconds: m.histogram(
                "cgraph_index_build_seconds",
                "Wall time of each reachability-index build.",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            index_only_answers: m.counter(
                "cgraph_index_only_answers_total",
                "Traversals answered index-only from a distance sketch (no lane spent).",
            ),
            index_pruned_sends: m.counter(
                "cgraph_index_pruned_sends_total",
                "Cross-machine frontier entries suppressed by index pruning.",
            ),
            index_pruned_partitions: m.counter(
                "cgraph_index_pruned_partitions_total",
                "Whole per-partition frontier messages index pruning emptied.",
            ),
            index_sources: m.gauge(
                "cgraph_index_sources",
                "Boundary sources the live reachability index holds sketches for.",
            ),
            index_bytes: m.gauge(
                "cgraph_index_bytes",
                "Estimated resident bytes of the live reachability index.",
            ),
            mutation_updates_applied: m.counter(
                "cgraph_mutation_updates_applied_total",
                "Edge updates folded into a committed epoch.",
            ),
            mutation_edges_inserted: m.counter(
                "cgraph_mutation_edges_inserted_total",
                "Edge insertions among the committed updates.",
            ),
            mutation_edges_deleted: m.counter(
                "cgraph_mutation_edges_deleted_total",
                "Edge deletions among the committed updates.",
            ),
            mutation_commits: m.counter(
                "cgraph_mutation_commits_total",
                "Epoch commits (explicit, threshold-triggered, and cache invalidations).",
            ),
            mutation_folds: m.counter(
                "cgraph_mutation_folds_total",
                "Commits that folded the delta overlay into fresh base edge-sets.",
            ),
            mutation_pending: m.gauge(
                "cgraph_mutation_pending_updates",
                "Edge updates buffered but not yet committed.",
            ),
            mutation_delta_entries: m.gauge(
                "cgraph_mutation_delta_entries",
                "Delta-overlay adjacency rows live in the serving snapshot.",
            ),
            mutation_delta_bytes: m.gauge(
                "cgraph_mutation_delta_bytes",
                "Estimated bytes of the live delta overlays.",
            ),
            durability_wal_records: m.counter(
                "cgraph_durability_wal_records_total",
                "WAL records appended (update batches plus commit fences).",
            ),
            durability_wal_bytes: m
                .counter("cgraph_durability_wal_bytes_total", "Bytes appended to the update WAL."),
            durability_snapshots_written: m.counter(
                "cgraph_durability_snapshots_total",
                "Epoch snapshots that reached their final name on disk.",
            ),
            durability_snapshot_bytes: m.counter(
                "cgraph_durability_snapshot_bytes_total",
                "Bytes of encoded snapshot data written.",
            ),
            durability_wal_replayed: m.counter(
                "cgraph_durability_wal_replayed_total",
                "WAL records replayed by crash recovery.",
            ),
            durability_snapshots_corrupt: m.counter(
                "cgraph_durability_snapshots_corrupt_total",
                "Snapshot files rejected by checksum/decode during recovery.",
            ),
            durability_recoveries: m.counter(
                "cgraph_durability_recoveries_total",
                "Crash recoveries performed (service rebuilt from durable state).",
            ),
            durability_last_snapshot_epoch: m.gauge(
                "cgraph_durability_last_snapshot_epoch",
                "Epoch of the newest snapshot on disk.",
            ),
        }
    }

    /// Folds a durability-stats snapshot into the counters — used once
    /// at start-up to seed recovery-time and initial-snapshot counts
    /// accumulated before the metric handles existed.
    fn seed_durability(&self, d: &DurabilityStats) {
        self.durability_wal_records.add(d.wal_records);
        self.durability_wal_bytes.add(d.wal_bytes);
        self.durability_snapshots_written.add(d.snapshots_written);
        self.durability_snapshot_bytes.add(d.snapshot_bytes);
        self.durability_wal_replayed.add(d.wal_replayed);
        self.durability_snapshots_corrupt.add(d.snapshots_corrupt);
        self.durability_recoveries.add(d.recoveries);
        self.durability_last_snapshot_epoch.set(d.last_snapshot_epoch as i64);
    }

    /// Trace context for dispatcher events of batch `job`, attempt
    /// `retry` (service retry ordinal, not the chaos attempt salt).
    fn ctx(&self, job: u64, retry: u32) -> TraceCtx {
        TraceCtx { job, attempt: retry, superstep: 0, machine: COORD }
    }
}

/// Runtime state of the query plane. Always present; the cache and
/// coalescer members are `None` when the matching knob is off. Both
/// are leaf locks: never acquire [`Shared::state`] while holding one.
struct QueryPlane {
    cache: Option<Mutex<ResultCache>>,
    coalescer: Option<Mutex<Coalescer<CacheKey, Traversal>>>,
    /// Monotone graph epoch baked into every cache key; bumping it
    /// (see [`QueryService::invalidate_cache`]) makes every existing
    /// entry unreachable and blocks stale in-flight batches from
    /// committing results.
    epoch: AtomicU64,
    pack_locality: bool,
    fairness: u32,
}

impl QueryPlane {
    fn new(cfg: &QueryPlaneConfig, epoch: u64) -> Self {
        Self {
            cache: cfg.cache_capacity_bytes.map(|b| Mutex::new(ResultCache::new(b))),
            coalescer: cfg.coalesce.then(|| Mutex::new(Coalescer::new())),
            epoch: AtomicU64::new(epoch),
            pack_locality: cfg.pack_locality,
            fairness: cfg.locality_fairness,
        }
    }
}

/// Rejects configuration values the service cannot run with — caught
/// here, at construction, instead of surfacing later as a stuck
/// dispatcher (a zero commit threshold would commit on every update)
/// or a batch-time engine error (a zero checkpoint interval).
fn validate_config(config: &ServiceConfig) -> Result<(), ServiceError> {
    if config.recovery.checkpoint_interval == 0 {
        return Err(ServiceError::InvalidConfig(
            "recovery.checkpoint_interval must be non-zero (a zero interval can never \
             commit a checkpoint)"
                .into(),
        ));
    }
    if config.mutation.commit_threshold == Some(0) {
        return Err(ServiceError::InvalidConfig(
            "mutation.commit_threshold must be non-zero; use None for explicit-only commits".into(),
        ));
    }
    if let Some(d) = &config.durability {
        if d.snapshot_every == 0 {
            return Err(ServiceError::InvalidConfig(
                "durability.snapshot_every must be non-zero (the cadence counts commits \
                 between snapshots)"
                    .into(),
            ));
        }
        if d.keep_snapshots == 0 {
            return Err(ServiceError::InvalidConfig(
                "durability.keep_snapshots must be at least 1 (retaining zero snapshots \
                 would prune the recovery point itself)"
                    .into(),
            ));
        }
    }
    Ok(())
}

/// The disk-fault injector selected by the service's chaos plan, if
/// any of its disk probabilities are armed. Disk faults are seeded by
/// the plan but scoped by operation count, not by chaos job — WAL
/// appends and snapshot writes are not batches.
fn disk_faults(config: &ServiceConfig) -> Option<DiskFaults> {
    config.fault_plan.as_ref().filter(|p| p.disk_faulty()).map(|p| {
        DiskFaults::new(
            p.seed,
            p.torn_write_prob,
            p.short_write_prob,
            p.bit_flip_prob,
            p.rename_lost_prob,
        )
    })
}

struct Shared {
    engine: Arc<DistributedEngine>,
    config: ServiceConfig,
    lanes: usize,
    plane: QueryPlane,
    state: Mutex<QueueState>,
    /// Buffered mutations. Acquired *after* [`Shared::state`] whenever
    /// both are held; [`Shared::durability`] nests inside it in turn.
    pending: Mutex<PendingUpdates>,
    /// The durability plane (WAL + snapshots); `None` runs in memory
    /// only. Strict leaf lock: acquired *inside* [`Shared::pending`]
    /// on the write-ahead path, so WAL order always equals buffer
    /// order; never acquire [`Shared::pending`] while holding it.
    durability: Option<Mutex<DurabilityPlane>>,
    /// Wakes the dispatcher (work arrived / commit due / service
    /// closed).
    work: Condvar,
    /// Wakes blocked submitters (queue space freed / service closed).
    space: Condvar,
    metrics: Mutex<MetricsAcc>,
    /// Cached metric handles + coordinator tracer; `None` when
    /// [`ServiceConfig::obs`] is unset.
    obs: Option<ServiceObs>,
    /// The live reachability index (leaf lock, like the cache): built
    /// at start-up and rebuilt by the dispatcher inside every epoch
    /// commit and degradation; `None` without [`ServiceConfig::index`]
    /// or after a failed build.
    index: Mutex<Option<Arc<dyn ReachIndex>>>,
}

impl Shared {
    /// The live index iff it matches `epoch` — the fence that keeps a
    /// stale index (pre-commit, or mid-rebuild) out of the query path.
    fn current_index(&self, epoch: u64) -> Option<Arc<dyn ReachIndex>> {
        lock(&self.index).as_ref().filter(|ix| ix.epoch() == epoch).cloned()
    }
}

/// Runs the configured index builder against `engine`'s current
/// snapshot, recording build count, duration and size. A failed build
/// logs and returns `None`: the service keeps serving unindexed.
fn build_index(
    builder: &dyn IndexBuilder,
    engine: &DistributedEngine,
    metrics: &Mutex<MetricsAcc>,
    obs: Option<&ServiceObs>,
) -> Option<Arc<dyn ReachIndex>> {
    let started = Instant::now();
    let built = builder.build(engine);
    let dur = started.elapsed();
    lock(metrics).index_builds += 1;
    if let Some(o) = obs {
        o.index_builds.inc();
        o.index_build_seconds.observe_duration(dur);
    }
    match built {
        Ok(ix) => {
            if let Some(o) = obs {
                o.index_sources.set(ix.num_sources() as i64);
                o.index_bytes.set(ix.size_bytes() as i64);
            }
            Some(ix)
        }
        Err(e) => {
            eprintln!("cgraph index: build failed, serving unindexed: {e}");
            if let Some(o) = obs {
                o.index_sources.set(0);
                o.index_bytes.set(0);
            }
            None
        }
    }
}

/// Rebuilds the live index for `engine`'s (new) epoch — called by the
/// dispatcher inside epoch commits and degradations, strictly between
/// batches. Without a configured builder this is a no-op and the
/// epoch fence alone retires the old index.
fn rebuild_index(shared: &Shared, engine: &DistributedEngine) {
    if let Some(b) = &shared.config.index {
        let ix = build_index(&**b, engine, &shared.metrics, shared.obs.as_ref());
        *lock(&shared.index) = ix;
    }
}

/// A long-running query-serving front end over a
/// [`DistributedEngine`] and a [`cgraph_comm::PersistentCluster`].
///
/// ```
/// use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery,
///                   QueryService, ServiceConfig};
/// use std::sync::Arc;
/// let edges: cgraph_graph::EdgeList = (0..20u64).map(|v| (v, (v + 1) % 20)).collect();
/// let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(2)));
/// let service = QueryService::start(engine, ServiceConfig::default());
/// let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
/// assert_eq!(r.visited, 4); // ring: k hops reach k + 1 vertices
/// service.shutdown();
/// ```
pub struct QueryService {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl QueryService {
    /// Spawns the persistent cluster (one parked thread per engine
    /// machine) and the dispatcher, then starts accepting queries.
    ///
    /// # Panics
    ///
    /// On an invalid configuration or a durability failure — this is
    /// the infallible-signature convenience over
    /// [`QueryService::try_start`], which returns the error instead.
    pub fn start(engine: Arc<DistributedEngine>, config: ServiceConfig) -> Self {
        Self::try_start(engine, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`QueryService::start`] with the failure modes surfaced:
    /// rejects invalid knob values ([`ServiceError::InvalidConfig`])
    /// before any thread is spawned, and — with
    /// [`ServiceConfig::durability`] set — opens the data directory
    /// for a *fresh* durable run, writing the initial epoch snapshot.
    /// A directory already holding durable state is refused
    /// ([`ServiceError::Durability`]): restarting over existing state
    /// is what [`QueryService::open_or_recover`] is for, and silently
    /// overwriting it would discard committed updates.
    pub fn try_start(
        engine: Arc<DistributedEngine>,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        validate_config(&config)?;
        let plane = match &config.durability {
            Some(dcfg) => {
                let scan = crate::durability::scan_for_start(&dcfg.dir)
                    .map_err(|e| ServiceError::Durability(e.to_string()))?;
                if scan.has_state() {
                    return Err(ServiceError::Durability(format!(
                        "data directory {} already holds durable state; \
                         use QueryService::open_or_recover to resume from it",
                        dcfg.dir.display()
                    )));
                }
                let mut plane =
                    DurabilityPlane::open(dcfg.clone(), &scan, disk_faults(&config), false)
                        .map_err(|e| ServiceError::Durability(e.to_string()))?;
                plane
                    .write_snapshot(&engine)
                    .map_err(|e| ServiceError::Durability(e.to_string()))?;
                Some(plane)
            }
            None => None,
        };
        Ok(Self::start_inner(engine, config, plane, Vec::new(), None))
    }

    /// Opens (or creates) the durable data directory and resumes from
    /// whatever committed state survives there: the newest snapshot
    /// whose every frame checksums, plus the WAL tail replayed past
    /// its sequence number. Logged-but-uncommitted updates return to
    /// the pending buffer; a torn WAL tail is truncated; the recovered
    /// epoch fences the result cache, so no answer from a pre-crash
    /// epoch can ever be served. On a directory with no usable state
    /// this *is* the fresh durable start, ingesting `edges` at epoch
    /// 0 — so one call site handles first boot and every restart:
    ///
    /// `edges` must be the same base graph the original run started
    /// from (recovery replays the WAL from sequence 0 onto it when no
    /// snapshot survived).
    pub fn open_or_recover(
        edges: &EdgeList,
        engine_config: EngineConfig,
        config: ServiceConfig,
    ) -> Result<(Self, RecoveryOutcome), ServiceError> {
        validate_config(&config)?;
        let dcfg = config.durability.clone().ok_or_else(|| {
            ServiceError::InvalidConfig(
                "open_or_recover needs ServiceConfig::durability set".into(),
            )
        })?;
        std::fs::create_dir_all(&dcfg.dir).map_err(|e| ServiceError::Durability(e.to_string()))?;
        let (state, scan) =
            recover(&dcfg.dir, engine_config, config.mutation.fold_threshold, || {
                DistributedEngine::new(edges, engine_config)
            })
            .map_err(|e| ServiceError::Durability(e.to_string()))?;
        let mut plane =
            DurabilityPlane::open(dcfg, &scan, disk_faults(&config), state.outcome.recovered)
                .map_err(|e| ServiceError::Durability(e.to_string()))?;
        plane.note_recovery(&state.outcome);
        // Checkpoint the recovered (or fresh) state right away: the
        // next restart resumes from here instead of replaying the
        // whole WAL, and a fresh directory gets its base snapshot.
        plane.write_snapshot(&state.engine).map_err(|e| ServiceError::Durability(e.to_string()))?;
        let outcome = state.outcome.clone();
        let service = Self::start_inner(
            Arc::new(state.engine),
            config,
            Some(plane),
            state.pending,
            Some(&outcome),
        );
        Ok((service, outcome))
    }

    /// The one construction path: wires the shared state and spawns
    /// the dispatcher. `restored_pending` updates are already in the
    /// WAL (recovery restored them) — they enter the buffer without
    /// being re-appended.
    fn start_inner(
        engine: Arc<DistributedEngine>,
        config: ServiceConfig,
        durability: Option<DurabilityPlane>,
        restored_pending: Vec<EdgeUpdate>,
        recovery: Option<&RecoveryOutcome>,
    ) -> Self {
        let lanes = QueryScheduler::new(&engine, config.scheduler).effective_lanes();
        let cluster =
            PersistentCluster::with_model(engine.num_machines(), engine.config().net_model);
        let obs = config.obs.as_ref().map(|o| {
            cluster.set_obs(Arc::clone(o));
            let so = ServiceObs::new(o, lanes);
            so.batch_width.set(LaneWidth::for_lanes(lanes).bits() as i64);
            if let Some(p) = &durability {
                so.seed_durability(&p.stats());
            }
            so.mutation_pending.set(restored_pending.len() as i64);
            if let Some(rec) = recovery.filter(|r| r.recovered) {
                // Emitted before the dispatcher exists, so its position
                // in the coordinator trace is deterministic.
                so.tracer.instant("durable_recover", so.ctx(0, 0), rec.epoch);
            }
            so
        });
        let plane = QueryPlane::new(&config.query_plane, engine.graph_epoch());
        let metrics = Mutex::new(MetricsAcc::default());
        // Initial index build, before the first query can be admitted.
        let index = match &config.index {
            Some(b) => build_index(&**b, &engine, &metrics, obs.as_ref()),
            None => None,
        };
        let shared = Arc::new(Shared {
            engine,
            config,
            lanes,
            plane,
            state: Mutex::new(QueueState { queue: VecDeque::new(), closed: false }),
            pending: Mutex::new(PendingUpdates {
                updates: restored_pending,
                ..PendingUpdates::default()
            }),
            durability: durability.map(Mutex::new),
            work: Condvar::new(),
            space: Condvar::new(),
            metrics,
            obs,
            index: Mutex::new(index),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cgraph-dispatcher".into())
                .spawn(move || dispatch_loop(&shared, cluster))
                .expect("spawn dispatcher thread")
        };
        Self { shared, dispatcher: Mutex::new(Some(dispatcher)) }
    }

    /// Lanes per batch after the memory budget (fixed at start-up).
    pub fn effective_lanes(&self) -> usize {
        self.shared.lanes
    }

    /// Admits `query`, blocking while the admission queue is full.
    /// Returns a ticket redeemable for the result, or
    /// [`ServiceError::ShutDown`] once the service is closed.
    pub fn submit(&self, query: KhopQuery) -> Result<QueryTicket, ServiceError> {
        let shared = &self.shared;
        let mut st = lock(&shared.state);
        while !st.closed && st.queue.len() >= shared.config.max_queue_depth {
            st = wait(&shared.space, st);
        }
        if st.closed {
            return Err(ServiceError::ShutDown);
        }
        if query.sources.is_empty() {
            // Nothing to traverse: complete immediately instead of
            // enqueueing zero traversals (whose ticket would otherwise
            // never be replied to and read as a shutdown).
            drop(st);
            let (tx, rx) = crossbeam_channel::unbounded();
            lock(&shared.metrics).completed += 1;
            if let Some(o) = &shared.obs {
                o.queries_submitted.inc();
                o.queries_completed.inc();
            }
            let _ = tx.send(Ok(QueryResult {
                id: query.id,
                visited: 0,
                per_level: Vec::new(),
                response_time: Duration::ZERO,
                exec_time: Duration::ZERO,
                epoch: shared.plane.epoch.load(Ordering::SeqCst),
            }));
            return Ok(QueryTicket { rx, deadline: None });
        }
        // Admission-time shape validation: the closed-batch scheduler
        // panics on an out-of-range source, but a *service* must reject
        // the one bad query and keep serving everyone else.
        let n = shared.engine.num_vertices();
        if let Some(&bad) = query.sources.iter().find(|&&s| s >= n) {
            return Err(ServiceError::InvalidQuery(format!(
                "source {bad} out of range for a graph of {n} vertices"
            )));
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        let ticket = Arc::new(TicketState {
            id: query.id,
            total: query.sources.len(),
            acc: Mutex::new(TicketAcc::default()),
            reply: tx,
        });
        let now = Instant::now();
        let deadline = shared.config.query_deadline.map(|d| now + d);
        let epoch = shared.plane.epoch.load(Ordering::SeqCst);
        for &source in &query.sources {
            let t = Traversal {
                source,
                k: query.k,
                submitted: now,
                deadline,
                ticket: Arc::clone(&ticket),
                skips: 0,
            };
            let key = t.key(epoch);
            // 1. Result cache: a hit completes the traversal right at
            // admission — zero queue wait, zero lane time.
            if let Some(cm) = &shared.plane.cache {
                let hit = lock(cm).get(&key).cloned();
                match hit {
                    Some(v) => {
                        lock(&shared.metrics).cache_hits += 1;
                        if let Some(o) = &shared.obs {
                            o.cache_hits.inc();
                        }
                        complete_traversal(
                            shared,
                            &t.ticket,
                            Ok((v.visited, v.per_level, Duration::ZERO, Duration::ZERO, epoch)),
                        );
                        continue;
                    }
                    None => {
                        lock(&shared.metrics).cache_misses += 1;
                        if let Some(o) = &shared.obs {
                            o.cache_misses.inc();
                        }
                    }
                }
            }
            // 2. Index-only fast path: a current-epoch reachability
            // index whose sketch covers `(source, k)` exactly answers
            // at admission — bit-identical to the traversal, no lane
            // spent (see INDEXING.md).
            if let Some(ans) = shared.current_index(epoch).and_then(|ix| ix.answer(t.source, t.k)) {
                lock(&shared.metrics).index_only += 1;
                if let Some(o) = &shared.obs {
                    o.index_only_answers.inc();
                }
                complete_traversal(
                    shared,
                    &t.ticket,
                    Ok((ans.visited, ans.per_level, Duration::ZERO, Duration::ZERO, epoch)),
                );
                continue;
            }
            // 3. In-flight coalescing: an identical traversal already
            // executing answers this one too.
            let t = if let Some(co) = &shared.plane.coalescer {
                match lock(co).attach(&key, t) {
                    None => {
                        lock(&shared.metrics).coalesced += 1;
                        if let Some(o) = &shared.obs {
                            o.cache_coalesced.inc();
                        }
                        continue;
                    }
                    Some(t) => t,
                }
            } else {
                t
            };
            st.queue.push_back(t);
        }
        if let Some(o) = &shared.obs {
            o.queries_submitted.inc();
            o.queue_depth.set(st.queue.len() as i64);
        }
        shared.work.notify_all();
        Ok(QueryTicket { rx, deadline })
    }

    /// Submits `query` and blocks for its result (submit + wait).
    pub fn query(&self, query: KhopQuery) -> Result<QueryResult, ServiceError> {
        self.submit(query)?.wait()
    }

    /// Buffers `batch`'s edge updates for the next epoch commit. The
    /// serving snapshot is untouched until [`QueryService::commit_epoch`]
    /// runs (explicitly, or automatically once the buffer crosses
    /// [`MutationConfig::commit_threshold`]) — queries keep answering
    /// against the current epoch meanwhile. Out-of-range endpoints are
    /// rejected whole-batch with [`ServiceError::InvalidQuery`], so a
    /// malformed update can never poison a commit.
    pub fn apply_updates(&self, batch: UpdateBatch) -> Result<(), ServiceError> {
        let shared = &self.shared;
        let n = shared.engine.num_vertices();
        if let Some(bad) = batch.updates().iter().find(|u| u.src() >= n || u.dst() >= n) {
            return Err(ServiceError::InvalidQuery(format!(
                "edge update {bad:?} out of range for a graph of {n} vertices"
            )));
        }
        let st = lock(&shared.state);
        if st.closed {
            return Err(ServiceError::ShutDown);
        }
        let mut p = lock(&shared.pending);
        let updates = batch.into_updates();
        // Write-ahead: the batch is in the WAL before it is buffered
        // anywhere. Appending under the pending lock keeps WAL order
        // identical to buffer order, so replay reconstructs the exact
        // commit contents. A failed append refuses the batch whole —
        // accepting updates a crash would lose is the one thing a
        // durable service must never do.
        if !updates.is_empty() {
            if let Some(dm) = &shared.durability {
                match lock(dm).append_updates(&updates) {
                    Ok((_seq, bytes)) => {
                        if let Some(o) = &shared.obs {
                            o.durability_wal_records.inc();
                            o.durability_wal_bytes.add(bytes);
                        }
                    }
                    Err(e) => return Err(ServiceError::Durability(e.to_string())),
                }
            }
        }
        p.updates.extend(updates);
        let depth = p.updates.len();
        let threshold_hit =
            shared.config.mutation.commit_threshold.is_some_and(|t| depth >= t) && !p.requested;
        if threshold_hit {
            p.requested = true;
        }
        drop(p);
        drop(st);
        if let Some(o) = &shared.obs {
            o.mutation_pending.set(depth as i64);
        }
        if threshold_hit {
            shared.work.notify_all();
        }
        Ok(())
    }

    /// Asks the dispatcher to fold every buffered update into a new
    /// serving snapshot and blocks until it has: batch formation is
    /// quiesced (commits run between batches on the dispatcher
    /// thread), the buffered updates become a new engine snapshot, the
    /// graph epoch advances by one, and cached results of older epochs
    /// are fenced. Returns the new epoch. An empty buffer still
    /// commits — the epoch bump alone invalidates the cache, which is
    /// exactly what [`QueryService::invalidate_cache`] does.
    pub fn commit_epoch(&self) -> Result<u64, ServiceError> {
        let shared = &self.shared;
        let rx = {
            let st = lock(&shared.state);
            if st.closed {
                return Err(ServiceError::ShutDown);
            }
            let (tx, rx) = crossbeam_channel::unbounded();
            let mut p = lock(&shared.pending);
            p.waiters.push(tx);
            p.requested = true;
            drop(p);
            drop(st);
            shared.work.notify_all();
            rx
        };
        rx.recv().map_err(|_| ServiceError::ShutDown)
    }

    /// Current graph epoch (bumped by [`QueryService::commit_epoch`]).
    pub fn graph_epoch(&self) -> u64 {
        self.shared.plane.epoch.load(Ordering::SeqCst)
    }

    /// Runs the **full commit protocol** with whatever updates happen
    /// to be buffered (usually none) and returns the new epoch. This
    /// *is* [`QueryService::commit_epoch`] — there is exactly one
    /// epoch-advancement path, and it performs every fence step, not
    /// just the cache drop the name suggests:
    ///
    /// 1. the dispatcher quiesces batch formation (commits run
    ///    strictly between batches on the dispatcher thread), and —
    ///    with durability on — a commit fence is appended and synced
    ///    to the WAL *before* the in-memory commit;
    /// 2. buffered updates (if any) become a new engine snapshot and
    ///    the graph epoch advances by one;
    /// 3. the result cache is fenced: entries keyed to older epochs
    ///    are dropped, new queries key against the new epoch, and a
    ///    batch still in flight for an old epoch is barred from
    ///    committing its results;
    /// 4. the reachability index is **rebuilt** for the new snapshot
    ///    (with [`ServiceConfig::index`] set) — until the rebuild
    ///    lands, the epoch fence keeps the old index from answering
    ///    or pruning anything.
    ///
    /// Batches already dispatched finish against their admission-epoch
    /// snapshot and carry that epoch in their results. On a shut-down
    /// service the epoch is frozen and returned unchanged.
    pub fn invalidate_cache(&self) -> u64 {
        self.commit_epoch().unwrap_or_else(|_| self.graph_epoch())
    }

    /// Snapshot of the lifetime latency/volume counters.
    pub fn stats(&self) -> ServiceStats {
        let (cache_entries, cache_bytes) = match &self.shared.plane.cache {
            Some(cm) => {
                let c = lock(cm);
                (c.len() as u64, c.used_bytes() as u64)
            }
            None => (0, 0),
        };
        let pending_updates = lock(&self.shared.pending).updates.len() as u64;
        let (index_sources, index_bytes) = lock(&self.shared.index)
            .as_ref()
            .map(|ix| (ix.num_sources() as u64, ix.size_bytes() as u64))
            .unwrap_or((0, 0));
        let dur = self.shared.durability.as_ref().map(|dm| lock(dm).stats()).unwrap_or_default();
        let m = lock(&self.shared.metrics);
        ServiceStats {
            queries_completed: m.completed,
            queries_failed: m.failed,
            queries_deadline_exceeded: m.deadline_exceeded,
            batches_dispatched: m.batches,
            retries: m.retries,
            recoveries: m.recoveries,
            checkpoints_taken: m.checkpoints_taken,
            checkpoints_restored: m.checkpoints_restored,
            partitions_replayed: m.partitions_replayed,
            full_rollbacks: m.full_rollbacks,
            degraded_generations: m.degraded_generations,
            cache_hits: m.cache_hits,
            cache_misses: m.cache_misses,
            cache_insertions: m.cache_insertions,
            cache_evictions: m.cache_evictions,
            cache_entries,
            cache_bytes,
            coalesced_traversals: m.coalesced,
            index_builds: m.index_builds,
            index_only_answers: m.index_only,
            index_pruned_sends: m.index_pruned_sends,
            index_pruned_partitions: m.index_pruned_partitions,
            index_sources,
            index_bytes,
            updates_applied: m.updates_applied,
            updates_inserted: m.updates_inserted,
            updates_deleted: m.updates_deleted,
            epoch_commits: m.epoch_commits,
            epoch_folds: m.epoch_folds,
            pending_updates,
            delta_entries: m.delta_entries,
            delta_bytes: m.delta_bytes,
            wal_records: dur.wal_records,
            wal_bytes: dur.wal_bytes,
            snapshots_written: dur.snapshots_written,
            snapshot_bytes: dur.snapshot_bytes,
            wal_replayed: dur.wal_replayed,
            snapshots_corrupt: dur.snapshots_corrupt,
            durable_recoveries: dur.recoveries,
            last_snapshot_epoch: dur.last_snapshot_epoch,
            admission_wait: ResponseStats::new(m.wait.clone()),
            exec: ResponseStats::new(m.exec.clone()),
            response: ResponseStats::new(m.response.clone()),
        }
    }

    /// Stops admission, drains every already-admitted query, then
    /// parks the cluster and joins all service threads. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.shared.state);
            st.closed = true;
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        if let Some(h) = lock(&self.dispatcher).take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Lock helper that survives a poisoned mutex (a dispatcher panic must
/// not cascade into every submitter).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// The dispatcher's mutable view of the cluster: replaced wholesale
/// when the service degrades onto fewer machines.
struct DispatchCtx {
    engine: Arc<DistributedEngine>,
    cluster: PersistentCluster,
    /// Per-machine panic blame since the last degradation.
    blame: Vec<u32>,
    /// Monotone batch sequence number — the chaos *job* identity, so a
    /// [`FaultPlan`] armed for a job window poisons specific batches.
    batch_seq: u64,
}

/// The dispatcher: block for work, pack a batch under the
/// fill-or-deadline policy, execute it on the persistent cluster,
/// fan results back out to tickets. Epoch commits run here too,
/// strictly *between* batches — serial dispatch is the quiesce.
/// Exits once closed *and* drained (queries and pending commits).
fn dispatch_loop(shared: &Shared, cluster: PersistentCluster) {
    let mut ctx = DispatchCtx {
        engine: Arc::clone(&shared.engine),
        cluster,
        blame: vec![0; shared.engine.num_machines()],
        batch_seq: 0,
    };
    loop {
        let formed = {
            let mut st = lock(&shared.state);
            let mut commit_due = false;
            loop {
                // A due commit preempts batch formation: queued
                // traversals are keyed (and executed) under the *new*
                // epoch once the commit lands.
                if lock(&shared.pending).requested {
                    commit_due = true;
                    break;
                }
                if st.queue.is_empty() {
                    if st.closed {
                        // `requested` was false just now and admission
                        // is closed (commit_epoch refuses after close),
                        // so no waiter can be stranded by exiting.
                        drop(st);
                        // Shutdown barrier: buffered-but-uncommitted
                        // updates are already WAL-logged (write-ahead);
                        // the sync makes them crash-proof before
                        // shutdown() returns to the caller.
                        if let Some(dm) = &shared.durability {
                            if let Err(e) = lock(dm).sync() {
                                eprintln!("cgraph durability: WAL sync at shutdown failed: {e}");
                            }
                        }
                        ctx.cluster.shutdown();
                        return;
                    }
                    st = wait(&shared.work, st);
                    continue;
                }
                if st.queue.len() >= shared.lanes || st.closed {
                    break; // filled (or draining after shutdown)
                }
                let age = st.queue.front().expect("non-empty").submitted.elapsed();
                if age >= shared.config.max_batch_delay {
                    break; // deadline: flush the partial batch
                }
                let (g, _) = shared
                    .work
                    .wait_timeout(st, shared.config.max_batch_delay - age)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
            if commit_due {
                None
            } else {
                let formed = form_batch(shared, &mut st, &ctx);
                if let Some(o) = &shared.obs {
                    o.queue_depth.set(st.queue.len() as i64);
                }
                shared.space.notify_all();
                Some(formed)
            }
        };
        let Some(formed) = formed else {
            let next_epoch = ctx.engine.graph_epoch() + 1;
            if let Some((updates, waiters, wal_seq)) = take_commit_request(shared, next_epoch) {
                perform_commit(shared, &mut ctx, updates, waiters, wal_seq);
            }
            continue;
        };
        for t in formed.expired {
            complete_traversal(shared, &t.ticket, Err(ServiceError::DeadlineExceeded));
        }
        if let Some(o) = &shared.obs {
            if !formed.hits.is_empty() {
                o.tracer.instant("cache_hit", o.ctx(ctx.batch_seq, 0), formed.hits.len() as u64);
            }
            if shared.plane.cache.is_some() && !formed.groups.is_empty() {
                // The lanes actually dispatched are the misses that
                // stayed misses all the way to batch formation.
                o.tracer.instant("cache_miss", o.ctx(ctx.batch_seq, 0), formed.groups.len() as u64);
            }
        }
        for (t, v) in formed.hits {
            let wait = t.submitted.elapsed();
            complete_traversal(
                shared,
                &t.ticket,
                Ok((v.visited, v.per_level, wait, Duration::ZERO, formed.epoch)),
            );
        }
        for (t, ans) in formed.index_hits {
            let wait = t.submitted.elapsed();
            complete_traversal(
                shared,
                &t.ticket,
                Ok((ans.visited, ans.per_level, wait, Duration::ZERO, formed.epoch)),
            );
        }
        if !formed.groups.is_empty() {
            execute_batch(shared, &mut ctx, formed.groups);
        }
    }
}

/// Output of one batch-formation pass over the admission queue.
struct FormedBatch {
    /// Lanes to execute (primary + identical-key followers each).
    groups: Vec<LaneGroup>,
    /// Traversals answered by the result cache at pack time (their key
    /// was committed by an earlier batch while they sat queued).
    hits: Vec<(Traversal, CachedTraversal)>,
    /// Traversals answered by the reachability index at pack time
    /// (admitted before the current index existed — e.g. across an
    /// epoch commit that rebuilt it).
    index_hits: Vec<(Traversal, crate::index_api::IndexAnswer)>,
    /// Traversals whose query deadline elapsed while queued.
    expired: Vec<Traversal>,
    /// Graph epoch the batch was formed under — its admission epoch:
    /// the snapshot it executes against and the epoch its answers
    /// carry, regardless of commits that land afterwards.
    epoch: u64,
}

/// Forms one batch under the state lock: sweeps the queue against the
/// result cache, selects up to [`Shared::lanes`] distinct keys (FIFO
/// or locality-packed), collapses identical-key duplicates into
/// followers, and — with coalescing on — registers every selected key
/// as in flight so late arrivals can attach mid-batch.
fn form_batch(shared: &Shared, st: &mut QueueState, ctx: &DispatchCtx) -> FormedBatch {
    let epoch = shared.plane.epoch.load(Ordering::SeqCst);

    // 1. Cache sweep: keys committed since these traversals were
    // admitted are answered now, before they cost a lane. The whole
    // queue is swept, not just this batch's window — a hit behind the
    // window frees queue space all the same.
    let mut hits = Vec::new();
    if let Some(cm) = &shared.plane.cache {
        let mut c = lock(cm);
        let mut i = 0;
        while i < st.queue.len() {
            let key = st.queue[i].key(epoch);
            if let Some(v) = c.get(&key) {
                let v = v.clone();
                let t = st.queue.remove(i).expect("index in range");
                hits.push((t, v));
            } else {
                i += 1;
            }
        }
        if !hits.is_empty() {
            lock(&shared.metrics).cache_hits += hits.len() as u64;
            if let Some(o) = &shared.obs {
                o.cache_hits.add(hits.len() as u64);
            }
        }
    }

    // 1b. Index sweep: same shape as the cache sweep, against the
    // current-epoch reachability index. Catches traversals admitted
    // before this index existed (it is rebuilt at every commit).
    let mut index_hits = Vec::new();
    if let Some(ix) = shared.current_index(epoch) {
        let mut i = 0;
        while i < st.queue.len() {
            match ix.answer(st.queue[i].source, st.queue[i].k) {
                Some(ans) => {
                    let t = st.queue.remove(i).expect("index in range");
                    index_hits.push((t, ans));
                }
                None => i += 1,
            }
        }
        if !index_hits.is_empty() {
            lock(&shared.metrics).index_only += index_hits.len() as u64;
            if let Some(o) = &shared.obs {
                o.index_only_answers.add(index_hits.len() as u64);
            }
        }
    }

    // 2. Lane selection: which queue positions anchor this batch.
    let sel: Vec<usize> = if shared.plane.pack_locality && st.queue.len() > shared.lanes {
        let part = ctx.engine.partition();
        let items: Vec<PackItem> = st
            .queue
            .iter()
            .map(|t| PackItem { partition: part.owner(t.source), skips: t.skips })
            .collect();
        pack_locality(&items, shared.lanes, PackPolicy { fairness_bound: shared.plane.fairness })
    } else {
        pack_fifo(st.queue.len(), shared.lanes)
    };

    // 3. Grouping walk. Identical `(source, k)` traversals never take
    // two lanes: within the selection window duplicates always
    // collapse into followers; with coalescing on, the walk extends
    // over the whole queue, attaching every queued duplicate of a
    // selected key and refilling lanes duplicates freed.
    let deep = shared.plane.coalescer.is_some();
    let mut in_sel = vec![false; st.queue.len()];
    for &i in &sel {
        in_sel[i] = true;
    }
    let scan: Vec<usize> = if deep {
        sel.iter().copied().chain((0..st.queue.len()).filter(|&i| !in_sel[i])).collect()
    } else {
        sel
    };
    let mut group_of: HashMap<CacheKey, usize> = HashMap::new();
    // (queue index, group ordinal) of every traversal leaving the queue.
    let mut assign: Vec<(usize, usize)> = Vec::new();
    let mut n_groups = 0usize;
    for i in scan {
        let key = st.queue[i].key(epoch);
        if let Some(&g) = group_of.get(&key) {
            assign.push((i, g));
        } else if n_groups < shared.lanes {
            group_of.insert(key, n_groups);
            assign.push((i, n_groups));
            n_groups += 1;
        }
    }
    let coalesced_in_queue = (assign.len() - n_groups) as u64;
    if coalesced_in_queue > 0 {
        lock(&shared.metrics).coalesced += coalesced_in_queue;
        if let Some(o) = &shared.obs {
            o.cache_coalesced.add(coalesced_in_queue);
        }
    }

    // Pull assigned traversals out (descending index keeps the
    // remaining indices valid), then rebuild FIFO order per group.
    assign.sort_by_key(|&(i, _)| std::cmp::Reverse(i));
    let mut pulled: Vec<(usize, usize, Traversal)> = assign
        .into_iter()
        .map(|(i, g)| (g, i, st.queue.remove(i).expect("index in range")))
        .collect();
    pulled.sort_by_key(|&(g, i, _)| (g, i));
    let mut groups: Vec<LaneGroup> = Vec::with_capacity(n_groups);
    for (g, _, t) in pulled {
        if g == groups.len() {
            let key = t.key(epoch);
            groups.push(LaneGroup { key, primary: t, followers: Vec::new() });
        } else {
            groups[g].followers.push(t);
        }
    }

    // 4. Deadline policy: members whose query deadline already passed
    // are failed up front rather than spending cluster time on them.
    let now = Instant::now();
    let mut expired = Vec::new();
    let live = |t: &Traversal| t.deadline.is_none_or(|d| now < d);
    let mut surviving = Vec::with_capacity(groups.len());
    for g in groups {
        let LaneGroup { key, primary, followers } = g;
        let (keep, dead): (Vec<_>, Vec<_>) = followers.into_iter().partition(live);
        expired.extend(dead);
        if live(&primary) {
            surviving.push(LaneGroup { key, primary, followers: keep });
        } else {
            // The primary expired: promote the oldest live follower,
            // or drop the lane entirely.
            expired.push(primary);
            let mut members = keep.into_iter();
            if let Some(p) = members.next() {
                surviving.push(LaneGroup { key, primary: p, followers: members.collect() });
            }
        }
    }
    let groups = surviving;

    // 5. Register surviving keys as in flight so identical queries
    // submitted while the batch runs attach instead of re-queueing.
    if let Some(co) = &shared.plane.coalescer {
        let mut co = lock(co);
        for g in &groups {
            co.begin(g.key);
        }
    }

    // 6. Age everything left behind — locality packing's fairness
    // bound counts these skips.
    for t in st.queue.iter_mut() {
        t.skips = t.skips.saturating_add(1);
    }

    FormedBatch { groups, hits, index_hits, expired, epoch }
}

/// Exponential backoff with deterministic jitter (splitmix64 of the
/// batch's job id and the retry ordinal) — reproducible under a fixed
/// chaos seed, yet de-synchronised across batches.
fn backoff_delay(base: Duration, retry: u32, job: u64) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let exp = base.saturating_mul(1u32 << retry.min(16));
    let mut z = job ^ (u64::from(retry) + 1).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    exp + Duration::from_nanos(z % (base.as_nanos().max(1) as u64))
}

/// What [`take_commit_request`] hands the dispatcher: the drained
/// update buffer, the commit waiters to reply to, and — with
/// durability on — the sequence number of the fence appended to the
/// WAL.
type CommitRequest = (Vec<EdgeUpdate>, Vec<crossbeam_channel::Sender<u64>>, Option<u64>);

/// Takes the pending commit request, if one is due: the buffered
/// updates, the waiters to reply to, and — with durability on — the
/// sequence number of the commit fence appended (and synced) to the
/// WAL. Clears the request flag so a request enqueued *during* the
/// commit is seen as a fresh one. The fence is written under the
/// pending lock, in the same critical section that drains the buffer:
/// every update record logged before it is exactly the drained batch,
/// so replay reconstructs this commit bit-identically.
fn take_commit_request(shared: &Shared, next_epoch: u64) -> Option<CommitRequest> {
    let mut p = lock(&shared.pending);
    if !p.requested {
        return None;
    }
    p.requested = false;
    let updates = std::mem::take(&mut p.updates);
    let waiters = std::mem::take(&mut p.waiters);
    let mut wal_seq = None;
    if let Some(dm) = &shared.durability {
        match lock(dm).append_commit(next_epoch) {
            Ok((seq, bytes)) => {
                wal_seq = Some(seq);
                if let Some(o) = &shared.obs {
                    o.durability_wal_records.inc();
                    o.durability_wal_bytes.add(bytes);
                }
            }
            // The in-memory commit still proceeds: durability degrades
            // (this epoch may replay short after a crash) but serving
            // must not stall on a sick disk.
            Err(e) => eprintln!("cgraph durability: commit fence append failed: {e}"),
        }
    }
    Some((updates, waiters, wal_seq))
}

/// Performs one epoch commit on the dispatcher thread, between
/// batches: folds `updates` into a new engine snapshot
/// ([`DistributedEngine::with_updates`]), swaps it in (the same move
/// as [`degrade`] — the persistent cluster is reused, machine count is
/// unchanged), publishes the new epoch, fences stale cache entries,
/// and replies the new epoch to every [`QueryService::commit_epoch`]
/// waiter. In-flight work is unaffected by construction — nothing is
/// in flight while the dispatcher runs this.
fn perform_commit(
    shared: &Shared,
    ctx: &mut DispatchCtx,
    updates: Vec<EdgeUpdate>,
    waiters: Vec<crossbeam_channel::Sender<u64>>,
    wal_seq: Option<u64>,
) {
    let (engine, folded) = ctx.engine.with_updates(&updates, shared.config.mutation.fold_threshold);
    let new_epoch = engine.graph_epoch();
    ctx.engine = Arc::new(engine);
    shared.plane.epoch.store(new_epoch, Ordering::SeqCst);
    // Fence the cache: entries of epochs before `new_epoch` are
    // unreachable anyway (keys embed the epoch) — dropping them frees
    // their bytes immediately.
    let cache_sizes = shared.plane.cache.as_ref().map(|cm| {
        let mut c = lock(cm);
        c.invalidate_before(new_epoch);
        (c.len() as i64, c.used_bytes() as i64)
    });
    // The old index is already fenced (its epoch no longer matches);
    // rebuild for the new snapshot before the next batch forms.
    rebuild_index(shared, &ctx.engine);
    let inserted = updates.iter().filter(|u| u.is_insert()).count() as u64;
    let deleted = updates.len() as u64 - inserted;
    let delta_entries = ctx.engine.delta_entries() as u64;
    let delta_bytes = ctx.engine.delta_bytes() as u64;
    {
        let mut m = lock(&shared.metrics);
        m.updates_applied += updates.len() as u64;
        m.updates_inserted += inserted;
        m.updates_deleted += deleted;
        m.epoch_commits += 1;
        m.epoch_folds += u64::from(folded);
        m.delta_entries = delta_entries;
        m.delta_bytes = delta_bytes;
    }
    if let Some(o) = &shared.obs {
        o.mutation_updates_applied.add(updates.len() as u64);
        o.mutation_edges_inserted.add(inserted);
        o.mutation_edges_deleted.add(deleted);
        o.mutation_commits.inc();
        if folded {
            o.mutation_folds.inc();
        }
        o.mutation_pending.set(lock(&shared.pending).updates.len() as i64);
        o.mutation_delta_entries.set(delta_entries as i64);
        o.mutation_delta_bytes.set(delta_bytes as i64);
        if let Some((entries, bytes)) = cache_sizes {
            o.cache_entries.set(entries);
            o.cache_bytes.set(bytes);
        }
        o.tracer.instant("epoch_commit", o.ctx(ctx.batch_seq, 0), new_epoch);
        if let Some(seq) = wal_seq {
            o.tracer.instant("wal_commit", o.ctx(ctx.batch_seq, 0), seq);
        }
    }
    // Snapshot cadence: every `snapshot_every`-th commit persists the
    // whole new engine value, bounding how much WAL a restart replays.
    // A failed or rename-lost write is survivable — the WAL alone
    // recovers this epoch; the cadence counter stays primed so the
    // next commit retries.
    if let Some(dm) = &shared.durability {
        let mut d = lock(dm);
        if d.snapshot_due() {
            match d.write_snapshot(&ctx.engine) {
                Ok((bytes, renamed)) => {
                    if let Some(o) = &shared.obs {
                        o.durability_snapshot_bytes.add(bytes);
                        if renamed {
                            o.durability_snapshots_written.inc();
                            o.durability_last_snapshot_epoch.set(new_epoch as i64);
                            o.tracer.instant("snapshot_write", o.ctx(ctx.batch_seq, 0), new_epoch);
                        }
                    }
                }
                Err(e) => eprintln!("cgraph durability: snapshot write failed: {e}"),
            }
        }
    }
    for w in waiters {
        let _ = w.send(new_epoch);
    }
}

/// Re-partitions onto one fewer machine and swaps in a fresh
/// persistent cluster; the old cluster (which may hold a poisoned or
/// repeatedly-failing machine) is parked and shut down.
fn degrade(shared: &Shared, ctx: &mut DispatchCtx) {
    let p = ctx.engine.num_machines() - 1;
    let engine = Arc::new(ctx.engine.repartitioned(p));
    let cluster = PersistentCluster::with_model(p, engine.config().net_model);
    if let Some(o) = &shared.config.obs {
        // The replacement cluster must keep feeding the same registry.
        cluster.set_obs(Arc::clone(o));
    }
    let old = std::mem::replace(&mut ctx.cluster, cluster);
    old.shutdown();
    ctx.engine = engine;
    ctx.blame = vec![0; p];
    // The partition count changed: the index's per-partition masks are
    // meaningless on the new layout. Rebuild (or drop) before any
    // further batch can consult it.
    rebuild_index(shared, &ctx.engine);
    lock(&shared.metrics).degraded_generations += 1;
    if let Some(o) = &shared.obs {
        o.degraded_generations.inc();
        o.tracer.instant("degrade", o.ctx(ctx.batch_seq.saturating_sub(1), 0), p as u64);
    }
}

fn execute_batch(shared: &Shared, ctx: &mut DispatchCtx, groups: Vec<LaneGroup>) {
    let job = ctx.batch_seq;
    ctx.batch_seq += 1;

    let sources: Vec<u64> = groups.iter().map(|g| g.primary.source).collect();
    let ks: Vec<u32> = groups.iter().map(|g| g.primary.k).collect();

    if let Some(o) = &shared.obs {
        o.batch_lanes.observe(groups.len() as f64);
        o.tracer.instant("batch_dispatch", o.ctx(job, 0), groups.len() as u64);
    }

    // Legacy seam: an installed fault hook runs the old single-shot,
    // non-recoverable path with its original semantics.
    #[allow(deprecated)]
    if let Some(hook) = shared.config.fault_hook.as_ref() {
        let dispatched = Instant::now();
        let hook = Some(&**hook as &(dyn Fn(usize) + Sync));
        match ctx.engine.run_traversal_batch_on_hooked(&ctx.cluster, &sources, &ks, hook) {
            Ok(br) => {
                lock(&shared.metrics).batches += 1;
                if let Some(o) = &shared.obs {
                    o.batches_dispatched.inc();
                }
                commit_batch(shared, groups, &br, dispatched, job, 0);
            }
            Err(e) => fail_groups(shared, groups, &e),
        }
        return;
    }

    // Index pruning: lanes whose source the current-epoch index
    // sketches carry per-partition level-set masks into the engine,
    // suppressing provably no-op cross-machine deliveries. Computed
    // once — retries re-run the same (sound) plan. Note degradation
    // changes the partition count, so the plan is recomputed below
    // whenever the engine generation moves.
    let mut plan =
        shared.current_index(ctx.engine.graph_epoch()).and_then(|ix| ix.prune_plan(&sources));

    // Recoverable path: in-batch checkpoint/replay first (inside the
    // engine), then whole-batch retries with backoff, then degradation
    // once the same machine keeps dying.
    let mut retry = 0u32;
    loop {
        let fault = shared.config.fault_plan.as_ref().map(|plan| FaultInjection {
            plan,
            job,
            // Salt retries past the engine's own recovery attempts so a
            // healing plan sees monotone attempt numbers.
            first_attempt: retry * (shared.config.recovery.max_recoveries + 1),
        });
        let dispatched = Instant::now();
        let run = ctx.engine.run_traversal_batch_recoverable_pruned(
            &ctx.cluster,
            &sources,
            &ks,
            &shared.config.recovery,
            fault,
            plan.as_ref(),
        );
        match run {
            Ok((br, report)) => {
                let mut m = lock(&shared.metrics);
                m.batches += 1;
                m.retries += u64::from(retry);
                m.recoveries += u64::from(report.recoveries);
                m.checkpoints_taken += report.checkpoints_taken;
                m.checkpoints_restored += report.checkpoints_restored;
                m.partitions_replayed += report.partitions_replayed;
                m.full_rollbacks += u64::from(report.full_rollbacks);
                m.index_pruned_sends += br.pruned_sends;
                m.index_pruned_partitions += br.pruned_partitions;
                drop(m);
                if let Some(o) = &shared.obs {
                    // The engine folded the same `report` into the
                    // `cgraph_recovery_*` counters on this Ok return.
                    o.batches_dispatched.inc();
                    o.retries.add(u64::from(retry));
                    o.index_pruned_sends.add(br.pruned_sends);
                    o.index_pruned_partitions.add(br.pruned_partitions);
                    o.tracer.instant("batch_done", o.ctx(job, retry), br.supersteps as u64);
                }
                commit_batch(shared, groups, &br, dispatched, job, retry);
                return;
            }
            Err(e) => {
                if let EngineError::Cluster(ClusterError::MachinePanicked { machine, .. }) = &e {
                    if let Some(b) = ctx.blame.get_mut(*machine) {
                        *b += 1;
                        let threshold = shared.config.degrade_after;
                        if threshold.is_some_and(|th| *b >= th) && ctx.engine.num_machines() > 1 {
                            degrade(shared, ctx);
                            // The partition count changed: the old plan's
                            // per-partition masks no longer apply. Degrade
                            // rebuilt the index, so recompute.
                            plan = shared
                                .current_index(ctx.engine.graph_epoch())
                                .and_then(|ix| ix.prune_plan(&sources));
                            continue; // degrading does not consume a retry
                        }
                    }
                }
                if e.is_recoverable() && retry < shared.config.max_retries {
                    std::thread::sleep(backoff_delay(shared.config.retry_backoff, retry, job));
                    retry += 1;
                    if let Some(o) = &shared.obs {
                        o.tracer.instant("batch_retry", o.ctx(job, retry), 0);
                    }
                    continue;
                }
                lock(&shared.metrics).retries += u64::from(retry);
                if let Some(o) = &shared.obs {
                    o.retries.add(u64::from(retry));
                    o.tracer.instant("batch_failed", o.ctx(job, retry), 0);
                }
                fail_groups(shared, groups, &e);
                return;
            }
        }
    }
}

/// Commits a successful batch: populates the result cache (this is
/// the *only* insertion point — the engine returned `Ok`, so the
/// result is the committed, bit-identical answer; crashed, retried or
/// degraded attempts never reach here with partial state), drains
/// coalesced mid-flight waiters, and fans the result out to every
/// member of every lane group.
fn commit_batch(
    shared: &Shared,
    mut groups: Vec<LaneGroup>,
    br: &crate::engine::BatchResult,
    dispatched: Instant,
    job: u64,
    retry: u32,
) {
    if let Some(cm) = &shared.plane.cache {
        let current = shared.plane.epoch.load(Ordering::SeqCst);
        let mut inserted = 0u64;
        let mut evicted = 0u64;
        let (entries, bytes) = {
            let mut c = lock(cm);
            for (lane, g) in groups.iter().enumerate() {
                // An epoch bump while the batch ran bars its results
                // from the cache: they may predate the invalidation.
                if g.key.epoch != current {
                    continue;
                }
                let mut per_level: Vec<u64> = br.per_level.iter().map(|row| row[lane]).collect();
                while per_level.last() == Some(&0) {
                    per_level.pop();
                }
                evicted += c.insert(
                    g.key,
                    CachedTraversal { visited: br.per_lane_visited[lane], per_level },
                );
                inserted += 1;
            }
            (c.len() as i64, c.used_bytes() as i64)
        };
        let mut m = lock(&shared.metrics);
        m.cache_insertions += inserted;
        m.cache_evictions += evicted;
        drop(m);
        if let Some(o) = &shared.obs {
            o.cache_insertions.add(inserted);
            o.cache_evictions.add(evicted);
            o.cache_entries.set(entries);
            o.cache_bytes.set(bytes);
            if inserted > 0 {
                o.tracer.instant("cache_insert", o.ctx(job, retry), inserted);
            }
            if evicted > 0 {
                o.tracer.instant("cache_evict", o.ctx(job, retry), evicted);
            }
        }
    }
    if let Some(co) = &shared.plane.coalescer {
        let mut co = lock(co);
        for g in &mut groups {
            g.followers.extend(co.complete(&g.key));
        }
    }
    fan_out(shared, groups, br, dispatched);
}

/// Fans a successful batch result back out to its lane groups'
/// tickets — the primary and every follower of a lane share the same
/// per-lane counts and execution share; waits stay per-traversal.
fn fan_out(
    shared: &Shared,
    groups: Vec<LaneGroup>,
    br: &crate::engine::BatchResult,
    dispatched: Instant,
) {
    let batch_dur = br.exec_time;
    for (lane, g) in groups.into_iter().enumerate() {
        // The lane's cache key carries its admission epoch — the
        // snapshot the batch actually ran against.
        let epoch = g.key.epoch;
        // A lane finishes after its completion point within the
        // batch — the same accounting as the closed-batch
        // scheduler's per-lane fraction.
        let done = br.lane_completion[lane].min(br.exec_time);
        let frac = if br.exec_time.is_zero() {
            1.0
        } else {
            done.as_secs_f64() / br.exec_time.as_secs_f64()
        };
        let exec = batch_dur.mul_f64(frac);
        let levels: Vec<u64> = br.per_level.iter().map(|row| row[lane]).collect();
        let visited = br.per_lane_visited[lane];
        for t in std::iter::once(g.primary).chain(g.followers) {
            // A follower that attached mid-flight has `submitted`
            // after `dispatched`; its wait saturates to zero.
            let wait = dispatched.duration_since(t.submitted);
            complete_traversal(shared, &t.ticket, Ok((visited, levels.clone(), wait, exec, epoch)));
        }
    }
}

/// Fails every member of every lane group of a batch whose retries
/// are exhausted — including coalesced waiters that attached while it
/// ran (their keys leave the in-flight table, so resubmission gets a
/// fresh execution). Isolation means *only* these traversals fail;
/// the service keeps serving. Nothing enters the result cache.
fn fail_groups(shared: &Shared, mut groups: Vec<LaneGroup>, e: &EngineError) {
    if let Some(co) = &shared.plane.coalescer {
        let mut co = lock(co);
        for g in &mut groups {
            g.followers.extend(co.complete(&g.key));
        }
    }
    let err = ServiceError::BatchFailed(e.to_string());
    for g in groups {
        for t in std::iter::once(g.primary).chain(g.followers) {
            complete_traversal(shared, &t.ticket, Err(err.clone()));
        }
    }
}

/// `(visited, per_level, wait, exec, epoch)` of one finished traversal.
type TraversalOutcome = (u64, Vec<u64>, Duration, Duration, u64);

/// Folds one traversal's outcome into its query; when the last
/// traversal lands, emits the query result (scheduler fold semantics:
/// visited = sum, per-level = elementwise sum, times = mean) and
/// records latency into the service metrics.
fn complete_traversal(
    shared: &Shared,
    ticket: &TicketState,
    outcome: Result<TraversalOutcome, ServiceError>,
) {
    let mut acc = lock(&ticket.acc);
    acc.done += 1;
    match outcome {
        Ok((visited, levels, wait, exec, epoch)) => {
            acc.visited += visited;
            acc.epoch = acc.epoch.max(epoch);
            if acc.per_level.len() < levels.len() {
                acc.per_level.resize(levels.len(), 0);
            }
            for (h, c) in levels.into_iter().enumerate() {
                acc.per_level[h] += c;
            }
            acc.wait_sum += wait;
            acc.exec_sum += exec;
            acc.resp_sum += wait + exec;
        }
        Err(e) => {
            acc.failed.get_or_insert(e);
        }
    }
    if acc.done < ticket.total {
        return;
    }
    let n = ticket.total as u32;
    let mut metrics = lock(&shared.metrics);
    let reply = match acc.failed.take() {
        Some(e) => {
            metrics.failed += 1;
            if let Some(o) = &shared.obs {
                o.queries_failed.inc();
            }
            if e == ServiceError::DeadlineExceeded {
                metrics.deadline_exceeded += 1;
                if let Some(o) = &shared.obs {
                    o.queries_deadline_exceeded.inc();
                }
            }
            Err(e)
        }
        None => {
            // Canonical level profile: a lane's level vector is padded
            // to its *batch's* depth, which depends on how the stream
            // happened to pack — trim so results are packing-invariant.
            while acc.per_level.last() == Some(&0) {
                acc.per_level.pop();
            }
            let wait = acc.wait_sum / n;
            let exec = acc.exec_sum / n;
            let response = acc.resp_sum / n;
            metrics.completed += 1;
            metrics.wait.push(wait);
            metrics.exec.push(exec);
            metrics.response.push(response);
            if let Some(o) = &shared.obs {
                o.queries_completed.inc();
                o.admission_wait.observe_duration(wait);
                o.exec.observe_duration(exec);
                o.response.observe_duration(response);
            }
            Ok(QueryResult {
                id: ticket.id,
                visited: acc.visited,
                per_level: std::mem::take(&mut acc.per_level),
                response_time: response,
                exec_time: exec,
                epoch: acc.epoch,
            })
        }
    };
    // The submitter may have dropped its ticket; that is fine.
    let _ = ticket.reply.send(reply);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use cgraph_graph::EdgeList;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn ring_engine(n: u64, p: usize) -> Arc<DistributedEngine> {
        let g: EdgeList = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Arc::new(DistributedEngine::new(&g, EngineConfig::new(p)))
    }

    #[test]
    fn service_matches_scheduler_counts() {
        let engine = ring_engine(60, 2);
        let queries: Vec<KhopQuery> =
            (0..12).map(|i| KhopQuery::single(i, (i * 5) as u64, 4)).collect();
        let expected = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);

        let service = QueryService::start(Arc::clone(&engine), ServiceConfig::default());
        let tickets: Vec<QueryTicket> =
            queries.iter().map(|q| service.submit(q.clone()).unwrap()).collect();
        for (ticket, exp) in tickets.into_iter().zip(&expected) {
            let got = ticket.wait().unwrap();
            assert_eq!(got.id, exp.id);
            assert_eq!(got.visited, exp.visited);
            assert_eq!(got.per_level, exp.per_level);
        }
        let stats = service.stats();
        assert_eq!(stats.queries_completed, 12);
        assert_eq!(stats.queries_failed, 0);
        assert!(stats.batches_dispatched >= 1);
        assert_eq!(stats.response.len(), 12);
        service.shutdown();
    }

    #[test]
    fn multi_source_query_folds_traversals() {
        let engine = ring_engine(40, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let r = service.query(KhopQuery::multi(3, vec![0, 20], 2)).unwrap();
        assert_eq!(r.visited, 6); // two independent 3-vertex traversals
        assert_eq!(r.per_level, vec![2, 2, 2]);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let engine = ring_engine(30, 1);
        let config =
            ServiceConfig { max_batch_delay: Duration::from_millis(1), ..Default::default() };
        let service = QueryService::start(engine, config);
        // One traversal nowhere near 64 lanes: only the deadline can
        // flush it.
        let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
        assert_eq!(r.visited, 4);
        assert!(r.response_time >= r.exec_time);
    }

    #[test]
    fn backpressure_blocks_but_everything_completes() {
        let engine = ring_engine(50, 2);
        let config = ServiceConfig {
            max_queue_depth: 2,
            max_batch_delay: Duration::from_micros(200),
            ..Default::default()
        };
        let service = Arc::new(QueryService::start(engine, config));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    (0..8)
                        .map(|i| {
                            let q = KhopQuery::single(t * 8 + i, ((t * 8 + i) % 50) as u64, 2);
                            service.query(q).unwrap().visited
                        })
                        .sum::<u64>()
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 4 * 8 * 3); // every 2-hop ring query reaches 3
        assert_eq!(service.stats().queries_completed, 32);
    }

    #[test]
    fn empty_source_query_completes_immediately() {
        let engine = ring_engine(20, 1);
        // `KhopQuery::multi` rejects empty sources, but the fields are
        // public, so the service must still handle the case.
        let empty = KhopQuery { id: 9, sources: Vec::new(), k: 3 };
        // Scheduler semantics for zero sources: an all-zero result.
        let expected = QueryScheduler::new(&engine, SchedulerConfig::default())
            .execute(std::slice::from_ref(&empty));
        let service = QueryService::start(engine, ServiceConfig::default());
        let ticket = service.submit(empty).unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.id, expected[0].id);
        assert_eq!(got.visited, expected[0].visited);
        assert_eq!(got.per_level, expected[0].per_level);
        assert_eq!(got.response_time, Duration::ZERO);
        assert_eq!(service.stats().queries_completed, 1);
        service.shutdown();
    }

    /// A deterministic index for fence/fast-path plumbing tests: it
    /// answers exactly `(source 5, k 3)` with a sentinel value no ring
    /// traversal could produce, so a sentinel in a result *proves* the
    /// index-only path served it.
    struct SentinelIndex {
        epoch: u64,
    }
    impl crate::index_api::ReachIndex for SentinelIndex {
        fn epoch(&self) -> u64 {
            self.epoch
        }
        fn answer(&self, source: u64, k: u32) -> Option<crate::index_api::IndexAnswer> {
            (source == 5 && k == 3)
                .then(|| crate::index_api::IndexAnswer { visited: 42, per_level: vec![42] })
        }
        fn prune_plan(&self, _: &[u64]) -> Option<crate::index_api::PrunePlan> {
            None
        }
        fn reaches(&self, _: u64, _: u64) -> Option<bool> {
            None
        }
        fn size_bytes(&self) -> usize {
            64
        }
        fn num_sources(&self) -> usize {
            1
        }
    }

    /// Builds a [`SentinelIndex`] at the engine's current epoch (so
    /// rebuilds track commits) or, with `stale` set, at an epoch no
    /// engine will ever reach (so the fence must reject it).
    struct SentinelBuilder {
        stale: bool,
    }
    impl crate::index_api::IndexBuilder for SentinelBuilder {
        fn build(
            &self,
            engine: &DistributedEngine,
        ) -> Result<Arc<dyn crate::index_api::ReachIndex>, EngineError> {
            let epoch = if self.stale { u64::MAX } else { engine.graph_epoch() };
            Ok(Arc::new(SentinelIndex { epoch }))
        }
    }

    #[test]
    fn index_fast_path_answers_covered_queries_only() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            index: Some(Arc::new(SentinelBuilder { stale: false })),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        // Covered: the sentinel proves the index answered, not a lane.
        let covered = service.query(KhopQuery::single(0, 5, 3)).unwrap();
        assert_eq!(covered.visited, 42);
        assert_eq!(covered.per_level, vec![42]);
        // Uncovered: traverses as usual.
        let uncovered = service.query(KhopQuery::single(1, 6, 3)).unwrap();
        assert_eq!(uncovered.visited, 4);
        let stats = service.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_only_answers, 1);
        assert_eq!(stats.index_sources, 1);
        assert_eq!(stats.index_bytes, 64);
        assert_eq!(stats.queries_completed, 2);
        service.shutdown();
    }

    #[test]
    fn index_rebuilds_inside_commit_fence() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            index: Some(Arc::new(SentinelBuilder { stale: false })),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        assert_eq!(service.query(KhopQuery::single(0, 5, 3)).unwrap().visited, 42);
        let e1 = service.commit_epoch().unwrap();
        assert_eq!(e1, 1);
        // The rebuilt index carries the new epoch, so it still answers.
        assert_eq!(service.query(KhopQuery::single(1, 5, 3)).unwrap().visited, 42);
        let stats = service.stats();
        assert_eq!(stats.index_builds, 2, "start-up build + commit rebuild");
        assert_eq!(stats.index_only_answers, 2);
        service.shutdown();
    }

    #[test]
    fn stale_index_never_answers() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            index: Some(Arc::new(SentinelBuilder { stale: true })),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        // The epoch fence rejects the stale index: the covered query
        // traverses and gets the *real* answer, not the sentinel.
        let r = service.query(KhopQuery::single(0, 5, 3)).unwrap();
        assert_eq!(r.visited, 4);
        let stats = service.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_only_answers, 0);
        service.shutdown();
    }

    #[test]
    fn try_wait_polls_to_completion() {
        let engine = ring_engine(20, 1);
        let config =
            ServiceConfig { max_batch_delay: Duration::from_micros(100), ..Default::default() };
        let service = QueryService::start(engine, config);
        let ticket = service.submit(KhopQuery::single(0, 0, 3)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let got = loop {
            match ticket.try_wait() {
                Some(reply) => break reply.unwrap(),
                None => {
                    assert!(Instant::now() < deadline, "query never completed");
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(got.visited, 4);
        service.shutdown();
    }

    #[test]
    fn try_wait_reports_shutdown_on_disconnect() {
        // A ticket whose reply channel died without a reply must not
        // read as "still in flight" — pollers would spin forever.
        let (tx, rx) = crossbeam_channel::unbounded();
        drop(tx);
        let ticket = QueryTicket { rx, deadline: None };
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::ShutDown)));
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let engine = ring_engine(20, 1);
        let service = QueryService::start(engine, ServiceConfig::default());
        service.shutdown();
        let err = service.submit(KhopQuery::single(0, 0, 2)).unwrap_err();
        assert_eq!(err, ServiceError::ShutDown);
        service.shutdown(); // idempotent
    }

    #[test]
    fn out_of_range_source_rejected_at_admission() {
        let engine = ring_engine(20, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let err = service.submit(KhopQuery::single(0, 99, 2)).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidQuery(_)), "{err:?}");
        // Rejection is per-query: the service keeps serving.
        let ok = service.query(KhopQuery::single(1, 3, 2)).unwrap();
        assert_eq!(ok.visited, 3);
        service.shutdown();
    }

    #[test]
    fn chaos_crash_recovers_with_zero_failed_queries() {
        // The acceptance scenario: a machine crash mid-batch in sync
        // mode recovers via confined partition replay from a
        // checkpoint — no query fails, no full rollback happens.
        let engine = ring_engine(64, 4);
        let plan = FaultPlan::new(11).crash(2, 7).heal_after(1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            recovery: RecoveryConfig { checkpoint_interval: 3, max_recoveries: 2 },
            ..Default::default()
        };
        let expected = ring_engine(64, 4).run_traversal_batch(&[0, 16], &[20, 20]).unwrap();
        let service = QueryService::start(engine, config);
        // One multi-source query: both traversals are admitted under a
        // single lock, so they land in exactly one batch (one chaos job).
        let r = service.query(KhopQuery::multi(7, vec![0, 16], 20)).unwrap();
        assert_eq!(r.visited, expected.per_lane_visited.iter().sum::<u64>());
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.queries_completed, 1);
        assert!(stats.recoveries >= 1, "the crash must trigger a recovery");
        assert!(stats.checkpoints_restored >= 1, "recovery must restore from a checkpoint");
        assert_eq!(stats.partitions_replayed, 1, "only the crashed partition replays");
        assert_eq!(stats.full_rollbacks, 0, "confined replay must not roll back globally");
        assert_eq!(stats.retries, 0, "in-batch recovery must not consume service retries");
        service.shutdown();
    }

    #[test]
    fn unrecoverable_plan_fails_only_poisoned_batch() {
        // A never-healing crash armed for job 0 only: the first batch's
        // lanes fail after retries are exhausted, while later queries
        // complete on the same service.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(3).crash(1, 1).arm_jobs(0..1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 1,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let err = service.query(KhopQuery::single(0, 0, 5)).unwrap_err();
        assert!(matches!(err, ServiceError::BatchFailed(_)), "{err:?}");
        // Batch 1 is outside the armed window: it must succeed.
        let ok = service.query(KhopQuery::single(1, 0, 5)).unwrap();
        assert_eq!(ok.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 1);
        assert_eq!(stats.queries_completed, 1);
        assert_eq!(stats.retries, 1, "the poisoned batch consumed its retry");
        service.shutdown();
    }

    #[test]
    fn retry_rescues_batch_that_heals_on_resubmission() {
        // The plan heals only after the engine's own recoveries are
        // exhausted (first_attempt of retry 1 = 1 × (0 + 1) = 1), so
        // success requires a service-level retry.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(8).crash(0, 1).heal_after(1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 2,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 5)).unwrap();
        assert_eq!(r.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recoveries, 0, "max_recoveries = 0 leaves recovery to the retry");
        service.shutdown();
    }

    #[test]
    fn repeated_machine_failures_degrade_to_smaller_cluster() {
        // Machine 1 dies on every attempt, forever. With degrade_after
        // = 2 the service re-partitions onto one machine — where the
        // plan's machine-1 crash can no longer fire — and the query
        // completes without ever failing.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(5).crash(1, 1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 4,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
            degrade_after: Some(2),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 5)).unwrap();
        assert_eq!(r.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.degraded_generations, 1);
        service.shutdown();
    }

    #[test]
    fn expired_queries_fail_with_deadline_exceeded() {
        let engine = ring_engine(30, 1);
        let config = ServiceConfig {
            // The dispatcher flushes only after 50 ms, far past the
            // 1 ms query deadline — every query expires pre-dispatch.
            max_batch_delay: Duration::from_millis(50),
            query_deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let ticket = service.submit(KhopQuery::single(0, 0, 3)).unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        // The dispatcher eventually drains the expired traversal and
        // records it.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = service.stats();
            if stats.queries_deadline_exceeded == 1 {
                assert_eq!(stats.queries_failed, 1);
                break;
            }
            assert!(Instant::now() < deadline, "expiry never recorded");
            std::thread::yield_now();
        }
        service.shutdown();
    }

    #[test]
    fn generous_deadline_does_not_affect_results() {
        let engine = ring_engine(30, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_deadline: Some(Duration::from_secs(60)),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 4)).unwrap();
        assert_eq!(r.visited, 5);
        assert_eq!(service.stats().queries_deadline_exceeded, 0);
        service.shutdown();
    }

    #[test]
    fn try_wait_reports_expired_deadline() {
        let (_tx, rx) = crossbeam_channel::unbounded();
        let ticket = QueryTicket { rx, deadline: Some(Instant::now() - Duration::from_millis(1)) };
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::DeadlineExceeded)));
    }

    fn plane(cache_mb: Option<usize>, coalesce: bool, locality: bool) -> QueryPlaneConfig {
        QueryPlaneConfig {
            cache_capacity_bytes: cache_mb.map(|mb| mb << 20),
            coalesce,
            pack_locality: locality,
            ..Default::default()
        }
    }

    #[test]
    fn cache_hit_serves_repeat_query_without_a_lane() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_plane: plane(Some(1), false, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let a = service.query(KhopQuery::single(0, 4, 3)).unwrap();
        let b = service.query(KhopQuery::single(1, 4, 3)).unwrap();
        assert_eq!((a.visited, &a.per_level), (b.visited, &b.per_level));
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1, "second identical query must hit");
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_insertions, 1);
        assert_eq!(stats.cache_entries, 1);
        assert!(stats.cache_bytes > 0);
        assert_eq!(stats.batches_dispatched, 1, "the hit must not dispatch a batch");
        assert_eq!(stats.queries_completed, 2);
        // A cache hit costs zero execution time by definition.
        assert_eq!(b.exec_time, Duration::ZERO);
        service.shutdown();
    }

    #[test]
    fn in_batch_duplicates_never_take_two_lanes() {
        // Regression: even with the whole query plane OFF, identical
        // (source, k) traversals inside one batch window must collapse
        // into a single lane — while still folding per scheduler
        // semantics (each duplicate contributes its own counts).
        let engine = ring_engine(40, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let r = service.query(KhopQuery::multi(0, vec![5, 5, 5, 7], 3)).unwrap();
        assert_eq!(r.visited, 16); // 4 traversals × 4 vertices each
        assert_eq!(r.per_level, vec![4, 4, 4, 4]); // levels 0..=3, all 4 folded

        let stats = service.stats();
        assert_eq!(stats.coalesced_traversals, 2, "both duplicate 5s must share the first lane");
        assert_eq!(stats.queries_completed, 1);
        service.shutdown();
    }

    #[test]
    fn coalescing_single_flights_a_queued_burst() {
        let engine = ring_engine(60, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_millis(2),
            query_plane: plane(None, true, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        // A burst of identical queries admitted together: exactly one
        // lane executes, everyone shares its result.
        let tickets: Vec<_> =
            (0..16).map(|i| service.submit(KhopQuery::single(i, 30, 4)).unwrap()).collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap().visited, 5);
        }
        let stats = service.stats();
        assert_eq!(stats.queries_completed, 16);
        assert_eq!(stats.coalesced_traversals, 15, "15 of 16 must share the one execution");
        service.shutdown();
    }

    #[test]
    fn epoch_invalidation_blocks_stale_hits() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_plane: plane(Some(1), false, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        service.query(KhopQuery::single(0, 2, 3)).unwrap();
        assert_eq!(service.stats().cache_entries, 1);
        assert_eq!(service.graph_epoch(), 0);
        assert_eq!(service.invalidate_cache(), 1);
        assert_eq!(service.graph_epoch(), 1);
        assert_eq!(service.stats().cache_entries, 0, "invalidation must drop old-epoch entries");
        // The repeat query is a miss under the new epoch and re-executes.
        service.query(KhopQuery::single(1, 2, 3)).unwrap();
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.batches_dispatched, 2);
        // ... and is cached again under the new epoch.
        service.query(KhopQuery::single(2, 2, 3)).unwrap();
        assert_eq!(service.stats().cache_hits, 1);
        service.shutdown();
    }

    #[test]
    fn failed_batches_never_populate_the_cache() {
        // A never-healing crash armed for job 0: the poisoned batch
        // must leave the cache untouched; the retried identical query
        // then executes cleanly and commits.
        let engine = ring_engine(40, 2);
        let fault = FaultPlan::new(3).crash(1, 1).arm_jobs(0..1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(fault),
            max_retries: 1,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            query_plane: plane(Some(1), false, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let err = service.query(KhopQuery::single(0, 0, 5)).unwrap_err();
        assert!(matches!(err, ServiceError::BatchFailed(_)), "{err:?}");
        let stats = service.stats();
        assert_eq!(stats.cache_insertions, 0, "a failed batch must not commit results");
        assert_eq!(stats.cache_entries, 0);
        // Job 1 is clean: the same query succeeds and only now commits.
        let ok = service.query(KhopQuery::single(1, 0, 5)).unwrap();
        assert_eq!(ok.visited, 6);
        assert_eq!(service.stats().cache_insertions, 1);
        service.shutdown();
    }

    #[test]
    fn coalesced_waiters_share_a_batch_failure() {
        // Identical queries coalesced onto a poisoned execution must
        // all observe its failure (and none may hang).
        let engine = ring_engine(40, 2);
        let fault = FaultPlan::new(3).crash(1, 1).arm_jobs(0..1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_millis(2),
            fault_plan: Some(fault),
            max_retries: 0,
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
            query_plane: plane(None, true, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let tickets: Vec<_> =
            (0..4).map(|i| service.submit(KhopQuery::single(i, 9, 4)).unwrap()).collect();
        for t in tickets {
            let err = t.wait().unwrap_err();
            assert!(matches!(err, ServiceError::BatchFailed(_)), "{err:?}");
        }
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 4);
        // After the failure the key left the in-flight table: a fresh
        // identical query gets a fresh (clean, job 1) execution.
        assert_eq!(service.query(KhopQuery::single(9, 9, 4)).unwrap().visited, 5);
        service.shutdown();
    }

    #[test]
    fn locality_packing_preserves_results() {
        let engine = ring_engine(120, 4);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(200),
            query_plane: plane(None, false, true),
            ..Default::default()
        };
        let service = Arc::new(QueryService::start(engine, config));
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    for i in 0..20u64 {
                        let src = (t * 40 + i * 7) % 120;
                        let r = service.query(KhopQuery::single(0, src, 3)).unwrap();
                        assert_eq!(r.visited, 4, "ring 3-hop from {src}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(service.stats().queries_completed, 60);
        service.shutdown();
    }

    #[test]
    #[allow(deprecated)]
    fn fault_hook_fails_batch_but_service_survives() {
        let engine = ring_engine(40, 2);
        let blow_once = Arc::new(AtomicBool::new(true));
        let hook = {
            let blow_once = Arc::clone(&blow_once);
            Arc::new(move |machine: usize| {
                if machine == 1 && blow_once.swap(false, Ordering::SeqCst) {
                    panic!("injected machine fault");
                }
            })
        };
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_hook: Some(hook),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);

        let err = service.query(KhopQuery::single(0, 0, 3)).unwrap_err();
        match err {
            ServiceError::BatchFailed(msg) => {
                assert!(msg.contains("injected machine fault"), "{msg}")
            }
            other => panic!("expected BatchFailed, got {other:?}"),
        }
        // The hook disarmed itself: the very next query succeeds on the
        // same (surviving) persistent cluster.
        let ok = service.query(KhopQuery::single(1, 0, 3)).unwrap();
        assert_eq!(ok.visited, 4);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 1);
        assert_eq!(stats.queries_completed, 1);
        service.shutdown();
    }
}
