//! The persistent streaming query service — the serving-path
//! extension of §3.3.
//!
//! [`crate::scheduler::QueryScheduler`] answers one *closed* batch of
//! queries handed over all at once. A serving deployment instead sees
//! an **open stream**: queries arrive at arbitrary times from many
//! client threads and each wants an answer as soon as possible.
//! [`QueryService`] bridges the two worlds:
//!
//! * an **admission queue** collects incoming [`KhopQuery`]s from any
//!   number of submitter threads, applying queue-depth backpressure
//!   ([`ServiceConfig::max_queue_depth`]): submitters block while the
//!   queue is full, so an overloaded service slows producers instead
//!   of growing without bound;
//! * a **dispatcher thread** packs queued traversals into bit-frontier
//!   batches with a *fill-or-deadline* policy — a batch goes out as
//!   soon as [`QueryService::effective_lanes`] traversals are waiting,
//!   or when the oldest admitted traversal has waited
//!   [`ServiceConfig::max_batch_delay`], whichever comes first. The
//!   lane width honours [`SchedulerConfig::memory_budget_bytes`]
//!   exactly like the closed-batch scheduler;
//! * batches execute on a long-lived
//!   [`cgraph_comm::PersistentCluster`] via
//!   [`DistributedEngine::run_traversal_batch_on`], so no machine
//!   threads are spawned per batch — the serving path amortises thread
//!   start-up across the whole stream;
//! * per-query latency — admission wait plus batch execution — flows
//!   into [`ResponseStats`], the same distributions every figure of §4
//!   reports.
//!
//! A machine panic mid-batch fails only that batch's queries (each
//! waiter gets [`ServiceError::BatchFailed`]); the cluster and the
//! service survive and keep serving the stream.

use crate::engine::DistributedEngine;
use crate::metrics::ResponseStats;
use crate::query::{KhopQuery, QueryResult};
use crate::scheduler::{QueryScheduler, SchedulerConfig};
use cgraph_comm::PersistentCluster;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a submitted query could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has been shut down (or its dispatcher is gone); no
    /// further queries are accepted.
    ShutDown,
    /// The batch carrying this query failed — a machine of the
    /// persistent cluster panicked mid-execution. The message is the
    /// panic payload; the service itself keeps serving.
    BatchFailed(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShutDown => write!(f, "query service is shut down"),
            ServiceError::BatchFailed(msg) => {
                write!(f, "batch execution failed: {msg}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Tuning knobs for a [`QueryService`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Batch shaping shared with the closed-batch scheduler: lane
    /// width, subgraph sharing, and the memory budget that narrows the
    /// effective lane count. (`use_sim_time` is ignored — a serving
    /// latency is inherently wall clock.)
    pub scheduler: SchedulerConfig,
    /// How long the oldest admitted traversal may wait before a
    /// partially-filled batch is flushed anyway. Trades per-query
    /// latency against batch fill (throughput).
    pub max_batch_delay: Duration,
    /// Admission-queue depth, in traversals, above which submitters
    /// block. A query's traversals are always admitted together, so
    /// the queue may transiently overshoot by one query's source count.
    pub max_queue_depth: usize,
    /// Fault-injection seam for tests: called with the machine id at
    /// the start of every machine's share of every batch. A hook that
    /// panics reproduces a machine dying mid-batch.
    pub fault_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            max_batch_delay: Duration::from_millis(2),
            max_queue_depth: 1024,
            fault_hook: None,
        }
    }
}

impl fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("scheduler", &self.scheduler)
            .field("max_batch_delay", &self.max_batch_delay)
            .field("max_queue_depth", &self.max_queue_depth)
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

/// Handle to one in-flight query: redeem it with
/// [`QueryTicket::wait`] for the result.
pub struct QueryTicket {
    rx: crossbeam_channel::Receiver<Result<QueryResult, ServiceError>>,
}

impl fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryTicket").finish_non_exhaustive()
    }
}

impl QueryTicket {
    /// Blocks until the query's batch (or batches) completed and
    /// returns its result.
    pub fn wait(self) -> Result<QueryResult, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShutDown))
    }

    /// Non-blocking poll; `None` while the query is still in flight.
    /// A dead dispatcher (result channel disconnected before a reply
    /// arrived) yields `Some(Err(ServiceError::ShutDown))`, so pollers
    /// never spin on a query that can no longer complete.
    pub fn try_wait(&self) -> Option<Result<QueryResult, ServiceError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(crossbeam_channel::TryRecvError::Empty) => None,
            Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Err(ServiceError::ShutDown)),
        }
    }
}

/// Latency and volume counters accumulated over the service lifetime.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries_completed: u64,
    /// Queries failed by a dying batch.
    pub queries_failed: u64,
    /// Batches dispatched to the persistent cluster (successful ones).
    pub batches_dispatched: u64,
    /// Per-query admission wait: submission → batch dispatch (mean
    /// over the query's traversals).
    pub admission_wait: ResponseStats,
    /// Per-query execution time: the lane-completion share of its
    /// batch, exactly as the closed-batch scheduler accounts it.
    pub exec: ResponseStats,
    /// Per-query end-to-end response: admission wait + execution —
    /// what a client of the service observes.
    pub response: ResponseStats,
}

/// One admitted traversal (queries are exploded on admission, exactly
/// like [`QueryScheduler::execute`] explodes its closed batch).
struct Traversal {
    source: u64,
    k: u32,
    submitted: Instant,
    ticket: Arc<TicketState>,
}

/// Shared completion state of one query across its traversals.
struct TicketState {
    id: usize,
    total: usize,
    acc: Mutex<TicketAcc>,
    reply: crossbeam_channel::Sender<Result<QueryResult, ServiceError>>,
}

#[derive(Default)]
struct TicketAcc {
    done: usize,
    failed: Option<ServiceError>,
    visited: u64,
    per_level: Vec<u64>,
    wait_sum: Duration,
    exec_sum: Duration,
    resp_sum: Duration,
}

struct QueueState {
    queue: VecDeque<Traversal>,
    closed: bool,
}

#[derive(Default)]
struct MetricsAcc {
    completed: u64,
    failed: u64,
    batches: u64,
    wait: Vec<Duration>,
    exec: Vec<Duration>,
    response: Vec<Duration>,
}

struct Shared {
    engine: Arc<DistributedEngine>,
    config: ServiceConfig,
    lanes: usize,
    state: Mutex<QueueState>,
    /// Wakes the dispatcher (work arrived / service closed).
    work: Condvar,
    /// Wakes blocked submitters (queue space freed / service closed).
    space: Condvar,
    metrics: Mutex<MetricsAcc>,
}

/// A long-running query-serving front end over a
/// [`DistributedEngine`] and a [`cgraph_comm::PersistentCluster`].
///
/// ```
/// use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery,
///                   QueryService, ServiceConfig};
/// use std::sync::Arc;
/// let edges: cgraph_graph::EdgeList = (0..20u64).map(|v| (v, (v + 1) % 20)).collect();
/// let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(2)));
/// let service = QueryService::start(engine, ServiceConfig::default());
/// let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
/// assert_eq!(r.visited, 4); // ring: k hops reach k + 1 vertices
/// service.shutdown();
/// ```
pub struct QueryService {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl QueryService {
    /// Spawns the persistent cluster (one parked thread per engine
    /// machine) and the dispatcher, then starts accepting queries.
    pub fn start(engine: Arc<DistributedEngine>, config: ServiceConfig) -> Self {
        let lanes = QueryScheduler::new(&engine, config.scheduler).effective_lanes();
        let cluster =
            PersistentCluster::with_model(engine.num_machines(), engine.config().net_model);
        let shared = Arc::new(Shared {
            engine,
            config,
            lanes,
            state: Mutex::new(QueueState { queue: VecDeque::new(), closed: false }),
            work: Condvar::new(),
            space: Condvar::new(),
            metrics: Mutex::new(MetricsAcc::default()),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cgraph-dispatcher".into())
                .spawn(move || dispatch_loop(&shared, cluster))
                .expect("spawn dispatcher thread")
        };
        Self { shared, dispatcher: Mutex::new(Some(dispatcher)) }
    }

    /// Lanes per batch after the memory budget (fixed at start-up).
    pub fn effective_lanes(&self) -> usize {
        self.shared.lanes
    }

    /// Admits `query`, blocking while the admission queue is full.
    /// Returns a ticket redeemable for the result, or
    /// [`ServiceError::ShutDown`] once the service is closed.
    pub fn submit(&self, query: KhopQuery) -> Result<QueryTicket, ServiceError> {
        let shared = &self.shared;
        let mut st = lock(&shared.state);
        while !st.closed && st.queue.len() >= shared.config.max_queue_depth {
            st = wait(&shared.space, st);
        }
        if st.closed {
            return Err(ServiceError::ShutDown);
        }
        if query.sources.is_empty() {
            // Nothing to traverse: complete immediately instead of
            // enqueueing zero traversals (whose ticket would otherwise
            // never be replied to and read as a shutdown).
            drop(st);
            let (tx, rx) = crossbeam_channel::unbounded();
            lock(&shared.metrics).completed += 1;
            let _ = tx.send(Ok(QueryResult {
                id: query.id,
                visited: 0,
                per_level: Vec::new(),
                response_time: Duration::ZERO,
                exec_time: Duration::ZERO,
            }));
            return Ok(QueryTicket { rx });
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        let ticket = Arc::new(TicketState {
            id: query.id,
            total: query.sources.len(),
            acc: Mutex::new(TicketAcc::default()),
            reply: tx,
        });
        let now = Instant::now();
        for &source in &query.sources {
            st.queue.push_back(Traversal {
                source,
                k: query.k,
                submitted: now,
                ticket: Arc::clone(&ticket),
            });
        }
        shared.work.notify_all();
        Ok(QueryTicket { rx })
    }

    /// Submits `query` and blocks for its result (submit + wait).
    pub fn query(&self, query: KhopQuery) -> Result<QueryResult, ServiceError> {
        self.submit(query)?.wait()
    }

    /// Snapshot of the lifetime latency/volume counters.
    pub fn stats(&self) -> ServiceStats {
        let m = lock(&self.shared.metrics);
        ServiceStats {
            queries_completed: m.completed,
            queries_failed: m.failed,
            batches_dispatched: m.batches,
            admission_wait: ResponseStats::new(m.wait.clone()),
            exec: ResponseStats::new(m.exec.clone()),
            response: ResponseStats::new(m.response.clone()),
        }
    }

    /// Stops admission, drains every already-admitted query, then
    /// parks the cluster and joins all service threads. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.shared.state);
            st.closed = true;
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        if let Some(h) = lock(&self.dispatcher).take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Lock helper that survives a poisoned mutex (a dispatcher panic must
/// not cascade into every submitter).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// The dispatcher: block for work, pack a batch under the
/// fill-or-deadline policy, execute it on the persistent cluster,
/// fan results back out to tickets. Exits once closed *and* drained.
fn dispatch_loop(shared: &Shared, cluster: PersistentCluster) {
    loop {
        let batch = {
            let mut st = lock(&shared.state);
            loop {
                if st.queue.is_empty() {
                    if st.closed {
                        drop(st);
                        cluster.shutdown();
                        return;
                    }
                    st = wait(&shared.work, st);
                    continue;
                }
                if st.queue.len() >= shared.lanes || st.closed {
                    break; // filled (or draining after shutdown)
                }
                let age = st.queue.front().expect("non-empty").submitted.elapsed();
                if age >= shared.config.max_batch_delay {
                    break; // deadline: flush the partial batch
                }
                let (g, _) = shared
                    .work
                    .wait_timeout(st, shared.config.max_batch_delay - age)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
            let n = st.queue.len().min(shared.lanes);
            let batch: Vec<Traversal> = st.queue.drain(..n).collect();
            shared.space.notify_all();
            batch
        };
        execute_batch(shared, &cluster, batch);
    }
}

fn execute_batch(shared: &Shared, cluster: &PersistentCluster, batch: Vec<Traversal>) {
    let sources: Vec<u64> = batch.iter().map(|t| t.source).collect();
    let ks: Vec<u32> = batch.iter().map(|t| t.k).collect();
    let hook = shared.config.fault_hook.as_ref().map(|h| &**h as &(dyn Fn(usize) + Sync));
    let dispatched = Instant::now();
    match shared.engine.run_traversal_batch_on_hooked(cluster, &sources, &ks, hook) {
        Ok(br) => {
            lock(&shared.metrics).batches += 1;
            let batch_dur = br.exec_time;
            for (lane, t) in batch.into_iter().enumerate() {
                // A lane finishes after its completion point within the
                // batch — the same accounting as the closed-batch
                // scheduler's per-lane fraction.
                let done = br.lane_completion[lane].min(br.exec_time);
                let frac = if br.exec_time.is_zero() {
                    1.0
                } else {
                    done.as_secs_f64() / br.exec_time.as_secs_f64()
                };
                let exec = batch_dur.mul_f64(frac);
                let wait = dispatched.duration_since(t.submitted);
                let levels: Vec<u64> = br.per_level.iter().map(|row| row[lane]).collect();
                complete_traversal(
                    shared,
                    &t.ticket,
                    Ok((br.per_lane_visited[lane], levels, wait, exec)),
                );
            }
        }
        Err(e) => {
            let err = ServiceError::BatchFailed(e.to_string());
            for t in &batch {
                complete_traversal(shared, &t.ticket, Err(err.clone()));
            }
        }
    }
}

type TraversalOutcome = (u64, Vec<u64>, Duration, Duration);

/// Folds one traversal's outcome into its query; when the last
/// traversal lands, emits the query result (scheduler fold semantics:
/// visited = sum, per-level = elementwise sum, times = mean) and
/// records latency into the service metrics.
fn complete_traversal(
    shared: &Shared,
    ticket: &TicketState,
    outcome: Result<TraversalOutcome, ServiceError>,
) {
    let mut acc = lock(&ticket.acc);
    acc.done += 1;
    match outcome {
        Ok((visited, levels, wait, exec)) => {
            acc.visited += visited;
            if acc.per_level.len() < levels.len() {
                acc.per_level.resize(levels.len(), 0);
            }
            for (h, c) in levels.into_iter().enumerate() {
                acc.per_level[h] += c;
            }
            acc.wait_sum += wait;
            acc.exec_sum += exec;
            acc.resp_sum += wait + exec;
        }
        Err(e) => {
            acc.failed.get_or_insert(e);
        }
    }
    if acc.done < ticket.total {
        return;
    }
    let n = ticket.total as u32;
    let mut metrics = lock(&shared.metrics);
    let reply = match acc.failed.take() {
        Some(e) => {
            metrics.failed += 1;
            Err(e)
        }
        None => {
            // Canonical level profile: a lane's level vector is padded
            // to its *batch's* depth, which depends on how the stream
            // happened to pack — trim so results are packing-invariant.
            while acc.per_level.last() == Some(&0) {
                acc.per_level.pop();
            }
            let wait = acc.wait_sum / n;
            let exec = acc.exec_sum / n;
            let response = acc.resp_sum / n;
            metrics.completed += 1;
            metrics.wait.push(wait);
            metrics.exec.push(exec);
            metrics.response.push(response);
            Ok(QueryResult {
                id: ticket.id,
                visited: acc.visited,
                per_level: std::mem::take(&mut acc.per_level),
                response_time: response,
                exec_time: exec,
            })
        }
    };
    // The submitter may have dropped its ticket; that is fine.
    let _ = ticket.reply.send(reply);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use cgraph_graph::EdgeList;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn ring_engine(n: u64, p: usize) -> Arc<DistributedEngine> {
        let g: EdgeList = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Arc::new(DistributedEngine::new(&g, EngineConfig::new(p)))
    }

    #[test]
    fn service_matches_scheduler_counts() {
        let engine = ring_engine(60, 2);
        let queries: Vec<KhopQuery> =
            (0..12).map(|i| KhopQuery::single(i, (i * 5) as u64, 4)).collect();
        let expected = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);

        let service = QueryService::start(Arc::clone(&engine), ServiceConfig::default());
        let tickets: Vec<QueryTicket> =
            queries.iter().map(|q| service.submit(q.clone()).unwrap()).collect();
        for (ticket, exp) in tickets.into_iter().zip(&expected) {
            let got = ticket.wait().unwrap();
            assert_eq!(got.id, exp.id);
            assert_eq!(got.visited, exp.visited);
            assert_eq!(got.per_level, exp.per_level);
        }
        let stats = service.stats();
        assert_eq!(stats.queries_completed, 12);
        assert_eq!(stats.queries_failed, 0);
        assert!(stats.batches_dispatched >= 1);
        assert_eq!(stats.response.len(), 12);
        service.shutdown();
    }

    #[test]
    fn multi_source_query_folds_traversals() {
        let engine = ring_engine(40, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let r = service.query(KhopQuery::multi(3, vec![0, 20], 2)).unwrap();
        assert_eq!(r.visited, 6); // two independent 3-vertex traversals
        assert_eq!(r.per_level, vec![2, 2, 2]);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let engine = ring_engine(30, 1);
        let config =
            ServiceConfig { max_batch_delay: Duration::from_millis(1), ..Default::default() };
        let service = QueryService::start(engine, config);
        // One traversal nowhere near 64 lanes: only the deadline can
        // flush it.
        let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
        assert_eq!(r.visited, 4);
        assert!(r.response_time >= r.exec_time);
    }

    #[test]
    fn backpressure_blocks_but_everything_completes() {
        let engine = ring_engine(50, 2);
        let config = ServiceConfig {
            max_queue_depth: 2,
            max_batch_delay: Duration::from_micros(200),
            ..Default::default()
        };
        let service = Arc::new(QueryService::start(engine, config));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    (0..8)
                        .map(|i| {
                            let q = KhopQuery::single(t * 8 + i, ((t * 8 + i) % 50) as u64, 2);
                            service.query(q).unwrap().visited
                        })
                        .sum::<u64>()
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 4 * 8 * 3); // every 2-hop ring query reaches 3
        assert_eq!(service.stats().queries_completed, 32);
    }

    #[test]
    fn empty_source_query_completes_immediately() {
        let engine = ring_engine(20, 1);
        // `KhopQuery::multi` rejects empty sources, but the fields are
        // public, so the service must still handle the case.
        let empty = KhopQuery { id: 9, sources: Vec::new(), k: 3 };
        // Scheduler semantics for zero sources: an all-zero result.
        let expected = QueryScheduler::new(&engine, SchedulerConfig::default())
            .execute(std::slice::from_ref(&empty));
        let service = QueryService::start(engine, ServiceConfig::default());
        let ticket = service.submit(empty).unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.id, expected[0].id);
        assert_eq!(got.visited, expected[0].visited);
        assert_eq!(got.per_level, expected[0].per_level);
        assert_eq!(got.response_time, Duration::ZERO);
        assert_eq!(service.stats().queries_completed, 1);
        service.shutdown();
    }

    #[test]
    fn try_wait_polls_to_completion() {
        let engine = ring_engine(20, 1);
        let config =
            ServiceConfig { max_batch_delay: Duration::from_micros(100), ..Default::default() };
        let service = QueryService::start(engine, config);
        let ticket = service.submit(KhopQuery::single(0, 0, 3)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let got = loop {
            match ticket.try_wait() {
                Some(reply) => break reply.unwrap(),
                None => {
                    assert!(Instant::now() < deadline, "query never completed");
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(got.visited, 4);
        service.shutdown();
    }

    #[test]
    fn try_wait_reports_shutdown_on_disconnect() {
        // A ticket whose reply channel died without a reply must not
        // read as "still in flight" — pollers would spin forever.
        let (tx, rx) = crossbeam_channel::unbounded();
        drop(tx);
        let ticket = QueryTicket { rx };
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::ShutDown)));
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let engine = ring_engine(20, 1);
        let service = QueryService::start(engine, ServiceConfig::default());
        service.shutdown();
        let err = service.submit(KhopQuery::single(0, 0, 2)).unwrap_err();
        assert_eq!(err, ServiceError::ShutDown);
        service.shutdown(); // idempotent
    }

    #[test]
    fn fault_hook_fails_batch_but_service_survives() {
        let engine = ring_engine(40, 2);
        let blow_once = Arc::new(AtomicBool::new(true));
        let hook = {
            let blow_once = Arc::clone(&blow_once);
            Arc::new(move |machine: usize| {
                if machine == 1 && blow_once.swap(false, Ordering::SeqCst) {
                    panic!("injected machine fault");
                }
            })
        };
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_hook: Some(hook),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);

        let err = service.query(KhopQuery::single(0, 0, 3)).unwrap_err();
        match err {
            ServiceError::BatchFailed(msg) => {
                assert!(msg.contains("injected machine fault"), "{msg}")
            }
            other => panic!("expected BatchFailed, got {other:?}"),
        }
        // The hook disarmed itself: the very next query succeeds on the
        // same (surviving) persistent cluster.
        let ok = service.query(KhopQuery::single(1, 0, 3)).unwrap();
        assert_eq!(ok.visited, 4);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 1);
        assert_eq!(stats.queries_completed, 1);
        service.shutdown();
    }
}
