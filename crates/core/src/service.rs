//! The persistent streaming query service — the serving-path
//! extension of §3.3.
//!
//! [`crate::scheduler::QueryScheduler`] answers one *closed* batch of
//! queries handed over all at once. A serving deployment instead sees
//! an **open stream**: queries arrive at arbitrary times from many
//! client threads and each wants an answer as soon as possible.
//! [`QueryService`] bridges the two worlds:
//!
//! * an **admission queue** collects incoming [`KhopQuery`]s from any
//!   number of submitter threads, applying queue-depth backpressure
//!   ([`ServiceConfig::max_queue_depth`]): submitters block while the
//!   queue is full, so an overloaded service slows producers instead
//!   of growing without bound;
//! * a **dispatcher thread** packs queued traversals into bit-frontier
//!   batches with a *fill-or-deadline* policy — a batch goes out as
//!   soon as [`QueryService::effective_lanes`] traversals are waiting,
//!   or when the oldest admitted traversal has waited
//!   [`ServiceConfig::max_batch_delay`], whichever comes first. The
//!   lane width honours [`SchedulerConfig::memory_budget_bytes`]
//!   exactly like the closed-batch scheduler;
//! * batches execute on a long-lived
//!   [`cgraph_comm::PersistentCluster`] via
//!   [`DistributedEngine::run_traversal_batch_on`], so no machine
//!   threads are spawned per batch — the serving path amortises thread
//!   start-up across the whole stream;
//! * per-query latency — admission wait plus batch execution — flows
//!   into [`ResponseStats`], the same distributions every figure of §4
//!   reports.
//!
//! # Fault-tolerance policy
//!
//! The service layers *policy* over the engine's recovery *mechanism*
//! ([`DistributedEngine::run_traversal_batch_recoverable`]):
//!
//! * **chaos plane** — [`ServiceConfig::fault_plan`] installs a
//!   deterministic [`FaultPlan`]; each dispatched batch becomes one
//!   chaos *job* (`job = batch sequence number`), so a plan armed for
//!   a job window poisons exactly those batches and no others;
//! * **retry with backoff** — a batch that still fails after the
//!   engine's in-batch recoveries is retried up to
//!   [`ServiceConfig::max_retries`] times with exponential backoff
//!   plus deterministic jitter; retry attempts are salted
//!   (`first_attempt = retry × (max_recoveries + 1)`) so a healing
//!   plan sees monotone attempt numbers across the whole batch life;
//! * **failure isolation** — a batch that exhausts its retries fails
//!   only its own lanes ([`ServiceError::BatchFailed`]); queued and
//!   future queries keep flowing on the surviving cluster;
//! * **per-query deadlines** — [`ServiceConfig::query_deadline`]
//!   bounds each query's end-to-end latency: expired traversals are
//!   failed with [`ServiceError::DeadlineExceeded`] before dispatch,
//!   and [`QueryTicket::wait`] enforces the same bound client-side;
//! * **graceful degradation** — when the same machine is blamed for
//!   [`ServiceConfig::degrade_after`] panics, the dispatcher
//!   re-partitions the graph onto `p - 1` machines
//!   ([`DistributedEngine::repartitioned`]) and replaces the cluster;
//!   degrading does not consume a retry.
//!
//! # Example
//!
//! ```
//! use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryService, ServiceConfig};
//! use std::sync::Arc;
//!
//! let ring: cgraph_graph::EdgeList = (0..12u64).map(|v| (v, (v + 1) % 12)).collect();
//! let engine = Arc::new(DistributedEngine::new(&ring, EngineConfig::new(2)));
//! let service = QueryService::start(engine, ServiceConfig::default());
//! // `query` = submit + wait; any number of threads may call it.
//! let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
//! assert_eq!(r.visited, 4); // vertices 0..=3 on the ring
//! assert_eq!(service.stats().queries_completed, 1);
//! service.shutdown();
//! ```

use crate::engine::{DistributedEngine, EngineError, FaultInjection};
use crate::metrics::ResponseStats;
use crate::query::{KhopQuery, QueryResult};
use crate::recovery::RecoveryConfig;
use crate::scheduler::{QueryScheduler, SchedulerConfig};
use cgraph_comm::chaos::FaultPlan;
use cgraph_comm::{ClusterError, PersistentCluster};
use cgraph_graph::LaneWidth;
use cgraph_obs::{
    log2_edges, Counter, Gauge, Histogram, Obs, TraceCtx, Tracer, COORD, PAPER_LATENCY_EDGES_SECS,
};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a submitted query could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has been shut down (or its dispatcher is gone); no
    /// further queries are accepted.
    ShutDown,
    /// The batch carrying this query failed — a machine of the
    /// persistent cluster panicked mid-execution and every recovery
    /// and retry was exhausted. The message is the underlying cluster
    /// error; the service itself keeps serving.
    BatchFailed(String),
    /// The query's [`ServiceConfig::query_deadline`] elapsed before a
    /// result was produced.
    DeadlineExceeded,
    /// The query was rejected at admission: a source vertex lies
    /// outside the graph's vertex range. Caught before batching so a
    /// malformed query can never take down the batch it would have
    /// shared lanes with.
    InvalidQuery(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShutDown => write!(f, "query service is shut down"),
            ServiceError::BatchFailed(msg) => {
                write!(f, "batch execution failed: {msg}")
            }
            ServiceError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ServiceError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Tuning knobs for a [`QueryService`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Batch shaping shared with the closed-batch scheduler: lane
    /// width, subgraph sharing, and the memory budget that narrows the
    /// effective lane count. (`use_sim_time` is ignored — a serving
    /// latency is inherently wall clock.)
    pub scheduler: SchedulerConfig,
    /// How long the oldest admitted traversal may wait before a
    /// partially-filled batch is flushed anyway. Trades per-query
    /// latency against batch fill (throughput).
    pub max_batch_delay: Duration,
    /// Admission-queue depth, in traversals, above which submitters
    /// block. A query's traversals are always admitted together, so
    /// the queue may transiently overshoot by one query's source count.
    pub max_queue_depth: usize,
    /// Deterministic chaos plan injected into every dispatched batch
    /// (the batch sequence number is the chaos *job*, so
    /// [`FaultPlan::arm_jobs`] selects which batches are poisoned).
    /// `None` (the default) runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// End-to-end deadline applied to every query from its submission
    /// instant. Expired traversals fail with
    /// [`ServiceError::DeadlineExceeded`] instead of being dispatched,
    /// and [`QueryTicket::wait`] stops waiting at the same instant.
    /// `None` (the default) means queries wait indefinitely.
    pub query_deadline: Option<Duration>,
    /// Whole-batch resubmissions after the engine's in-batch
    /// recoveries are exhausted on a recoverable error.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per retry, plus a
    /// deterministic jitter in `[0, retry_backoff)`.
    pub retry_backoff: Duration,
    /// Checkpointing/in-batch recovery knobs handed to
    /// [`DistributedEngine::run_traversal_batch_recoverable`].
    pub recovery: RecoveryConfig,
    /// Degrade to `p - 1` machines once the same machine has been
    /// blamed for this many panics (`None` — the default — never
    /// degrades). Degrading re-partitions the graph, replaces the
    /// persistent cluster, resets blame, and does not consume a retry.
    pub degrade_after: Option<u32>,
    /// Observability bundle shared across the whole stack. When set,
    /// the service registers its own metrics (queue depth, lane
    /// occupancy, latency histograms, query/batch counters), installs
    /// the bundle on the persistent cluster (comm-layer link/chaos
    /// counters and per-machine tracers, re-installed across
    /// degradations), and emits dispatcher trace events on the
    /// coordinator ring. `None` (the default) runs unobserved at zero
    /// cost.
    pub obs: Option<Arc<Obs>>,
    /// Fault-injection seam predating the chaos plane: called with the
    /// machine id at the start of every machine's share of every
    /// batch. When set, batches run on the legacy non-recoverable path
    /// (no checkpoints, no retries).
    #[deprecated(since = "0.2.0", note = "use `fault_plan` (a deterministic FaultPlan) instead")]
    pub fault_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl Default for ServiceConfig {
    #[allow(deprecated)]
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            max_batch_delay: Duration::from_millis(2),
            max_queue_depth: 1024,
            fault_plan: None,
            query_deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_micros(200),
            recovery: RecoveryConfig::default(),
            degrade_after: None,
            obs: None,
            fault_hook: None,
        }
    }
}

impl fmt::Debug for ServiceConfig {
    #[allow(deprecated)]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("scheduler", &self.scheduler)
            .field("max_batch_delay", &self.max_batch_delay)
            .field("max_queue_depth", &self.max_queue_depth)
            .field("fault_plan", &self.fault_plan)
            .field("query_deadline", &self.query_deadline)
            .field("max_retries", &self.max_retries)
            .field("retry_backoff", &self.retry_backoff)
            .field("recovery", &self.recovery)
            .field("degrade_after", &self.degrade_after)
            .field("obs", &self.obs.is_some())
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

/// Handle to one in-flight query: redeem it with
/// [`QueryTicket::wait`] for the result.
pub struct QueryTicket {
    rx: crossbeam_channel::Receiver<Result<QueryResult, ServiceError>>,
    /// The query's absolute deadline (admission instant plus
    /// [`ServiceConfig::query_deadline`]), enforced by `wait`.
    deadline: Option<Instant>,
}

impl fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryTicket").field("deadline", &self.deadline).finish_non_exhaustive()
    }
}

impl QueryTicket {
    /// Blocks until the query's batch (or batches) completed and
    /// returns its result. With a [`ServiceConfig::query_deadline`]
    /// configured, waits at most until the query's deadline and then
    /// returns [`ServiceError::DeadlineExceeded`].
    pub fn wait(self) -> Result<QueryResult, ServiceError> {
        match self.deadline {
            None => self.rx.recv().unwrap_or(Err(ServiceError::ShutDown)),
            Some(d) => match self.rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                Ok(reply) => reply,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    Err(ServiceError::DeadlineExceeded)
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    Err(ServiceError::ShutDown)
                }
            },
        }
    }

    /// Non-blocking poll; `None` while the query is still in flight.
    /// A dead dispatcher (result channel disconnected before a reply
    /// arrived) yields `Some(Err(ServiceError::ShutDown))`, so pollers
    /// never spin on a query that can no longer complete; likewise an
    /// expired deadline yields `Some(Err(ServiceError::DeadlineExceeded))`.
    pub fn try_wait(&self) -> Option<Result<QueryResult, ServiceError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(crossbeam_channel::TryRecvError::Empty) => {
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    Some(Err(ServiceError::DeadlineExceeded))
                } else {
                    None
                }
            }
            Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Err(ServiceError::ShutDown)),
        }
    }
}

/// Latency and volume counters accumulated over the service lifetime.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries_completed: u64,
    /// Queries failed by a dying batch.
    pub queries_failed: u64,
    /// Queries failed because their deadline elapsed (included in
    /// `queries_failed`).
    pub queries_deadline_exceeded: u64,
    /// Batches dispatched to the persistent cluster (successful ones).
    pub batches_dispatched: u64,
    /// Whole-batch resubmissions by the service retry policy.
    pub retries: u64,
    /// In-batch recoveries performed by the engine (confined replays
    /// plus global rollbacks).
    pub recoveries: u64,
    /// Superstep checkpoints committed across all batches.
    pub checkpoints_taken: u64,
    /// Checkpoint restores (confined replays and global rollbacks that
    /// resumed from a committed checkpoint).
    pub checkpoints_restored: u64,
    /// Failed partitions replayed confined, without re-executing
    /// healthy partitions.
    pub partitions_replayed: u64,
    /// Whole-batch rollbacks (the fallback when confined recovery's
    /// preconditions fail, and the only recovery mode in async).
    pub full_rollbacks: u64,
    /// Times the service degraded onto a smaller cluster after
    /// repeated same-machine failures.
    pub degraded_generations: u64,
    /// Per-query admission wait: submission → batch dispatch (mean
    /// over the query's traversals).
    pub admission_wait: ResponseStats,
    /// Per-query execution time: the lane-completion share of its
    /// batch, exactly as the closed-batch scheduler accounts it.
    pub exec: ResponseStats,
    /// Per-query end-to-end response: admission wait + execution —
    /// what a client of the service observes.
    pub response: ResponseStats,
}

/// One admitted traversal (queries are exploded on admission, exactly
/// like [`QueryScheduler::execute`] explodes its closed batch).
struct Traversal {
    source: u64,
    k: u32,
    submitted: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketState>,
}

/// Shared completion state of one query across its traversals.
struct TicketState {
    id: usize,
    total: usize,
    acc: Mutex<TicketAcc>,
    reply: crossbeam_channel::Sender<Result<QueryResult, ServiceError>>,
}

#[derive(Default)]
struct TicketAcc {
    done: usize,
    failed: Option<ServiceError>,
    visited: u64,
    per_level: Vec<u64>,
    wait_sum: Duration,
    exec_sum: Duration,
    resp_sum: Duration,
}

struct QueueState {
    queue: VecDeque<Traversal>,
    closed: bool,
}

#[derive(Default)]
struct MetricsAcc {
    completed: u64,
    failed: u64,
    deadline_exceeded: u64,
    batches: u64,
    retries: u64,
    recoveries: u64,
    checkpoints_taken: u64,
    checkpoints_restored: u64,
    partitions_replayed: u64,
    full_rollbacks: u64,
    degraded_generations: u64,
    wait: Vec<Duration>,
    exec: Vec<Duration>,
    response: Vec<Duration>,
}

/// The service's cached observability handles: registered once at
/// start-up, then only atomic operations on the submit/complete paths.
/// Counter increments sit exactly next to the matching [`MetricsAcc`]
/// field updates, so a registry snapshot always agrees with
/// [`QueryService::stats`].
struct ServiceObs {
    tracer: Tracer,
    queries_submitted: Arc<Counter>,
    queries_completed: Arc<Counter>,
    queries_failed: Arc<Counter>,
    queries_deadline_exceeded: Arc<Counter>,
    batches_dispatched: Arc<Counter>,
    retries: Arc<Counter>,
    degraded_generations: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    batch_width: Arc<Gauge>,
    batch_lanes: Arc<Histogram>,
    admission_wait: Arc<Histogram>,
    exec: Arc<Histogram>,
    response: Arc<Histogram>,
}

impl ServiceObs {
    fn new(obs: &Obs, lanes: usize) -> Self {
        let m = &obs.metrics;
        Self {
            tracer: obs.trace.tracer(COORD),
            queries_submitted: m.counter(
                "cgraph_service_queries_submitted_total",
                "Queries admitted to the service (before batching).",
            ),
            queries_completed: m.counter(
                "cgraph_service_queries_completed_total",
                "Queries answered successfully.",
            ),
            queries_failed: m.counter(
                "cgraph_service_queries_failed_total",
                "Queries failed by a dying batch or an expired deadline.",
            ),
            queries_deadline_exceeded: m.counter(
                "cgraph_service_queries_deadline_exceeded_total",
                "Queries failed because their deadline elapsed (subset of failures).",
            ),
            batches_dispatched: m.counter(
                "cgraph_service_batches_dispatched_total",
                "Batches the dispatcher completed on the persistent cluster.",
            ),
            retries: m.counter(
                "cgraph_service_retries_total",
                "Whole-batch resubmissions by the service retry policy.",
            ),
            degraded_generations: m.counter(
                "cgraph_service_degraded_generations_total",
                "Times the service re-partitioned onto a smaller cluster.",
            ),
            queue_depth: m.gauge(
                "cgraph_service_queue_depth",
                "Traversals currently in the admission queue.",
            ),
            batch_width: m.gauge(
                "cgraph_service_batch_width",
                "Bit width of the packed traversal state (64/128/256/512); \
                 fixed at start-up by the lane count and memory budget.",
            ),
            batch_lanes: m.histogram(
                "cgraph_service_batch_lanes",
                "Lane occupancy of dispatched batches (fill-or-deadline packing).",
                &log2_edges(lanes.next_power_of_two().trailing_zeros() + 1),
            ),
            admission_wait: m.histogram(
                "cgraph_service_admission_wait_seconds",
                "Per-query admission wait: submission to batch dispatch.",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            exec: m.histogram(
                "cgraph_service_exec_seconds",
                "Per-query execution time: the lane-completion share of its batch.",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            response: m.histogram(
                "cgraph_service_response_seconds",
                "Per-query end-to-end response time (admission wait + execution).",
                &PAPER_LATENCY_EDGES_SECS,
            ),
        }
    }

    /// Trace context for dispatcher events of batch `job`, attempt
    /// `retry` (service retry ordinal, not the chaos attempt salt).
    fn ctx(&self, job: u64, retry: u32) -> TraceCtx {
        TraceCtx { job, attempt: retry, superstep: 0, machine: COORD }
    }
}

struct Shared {
    engine: Arc<DistributedEngine>,
    config: ServiceConfig,
    lanes: usize,
    state: Mutex<QueueState>,
    /// Wakes the dispatcher (work arrived / service closed).
    work: Condvar,
    /// Wakes blocked submitters (queue space freed / service closed).
    space: Condvar,
    metrics: Mutex<MetricsAcc>,
    /// Cached metric handles + coordinator tracer; `None` when
    /// [`ServiceConfig::obs`] is unset.
    obs: Option<ServiceObs>,
}

/// A long-running query-serving front end over a
/// [`DistributedEngine`] and a [`cgraph_comm::PersistentCluster`].
///
/// ```
/// use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery,
///                   QueryService, ServiceConfig};
/// use std::sync::Arc;
/// let edges: cgraph_graph::EdgeList = (0..20u64).map(|v| (v, (v + 1) % 20)).collect();
/// let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(2)));
/// let service = QueryService::start(engine, ServiceConfig::default());
/// let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
/// assert_eq!(r.visited, 4); // ring: k hops reach k + 1 vertices
/// service.shutdown();
/// ```
pub struct QueryService {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl QueryService {
    /// Spawns the persistent cluster (one parked thread per engine
    /// machine) and the dispatcher, then starts accepting queries.
    pub fn start(engine: Arc<DistributedEngine>, config: ServiceConfig) -> Self {
        let lanes = QueryScheduler::new(&engine, config.scheduler).effective_lanes();
        let cluster =
            PersistentCluster::with_model(engine.num_machines(), engine.config().net_model);
        let obs = config.obs.as_ref().map(|o| {
            cluster.set_obs(Arc::clone(o));
            let so = ServiceObs::new(o, lanes);
            so.batch_width.set(LaneWidth::for_lanes(lanes).bits() as i64);
            so
        });
        let shared = Arc::new(Shared {
            engine,
            config,
            lanes,
            state: Mutex::new(QueueState { queue: VecDeque::new(), closed: false }),
            work: Condvar::new(),
            space: Condvar::new(),
            metrics: Mutex::new(MetricsAcc::default()),
            obs,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cgraph-dispatcher".into())
                .spawn(move || dispatch_loop(&shared, cluster))
                .expect("spawn dispatcher thread")
        };
        Self { shared, dispatcher: Mutex::new(Some(dispatcher)) }
    }

    /// Lanes per batch after the memory budget (fixed at start-up).
    pub fn effective_lanes(&self) -> usize {
        self.shared.lanes
    }

    /// Admits `query`, blocking while the admission queue is full.
    /// Returns a ticket redeemable for the result, or
    /// [`ServiceError::ShutDown`] once the service is closed.
    pub fn submit(&self, query: KhopQuery) -> Result<QueryTicket, ServiceError> {
        let shared = &self.shared;
        let mut st = lock(&shared.state);
        while !st.closed && st.queue.len() >= shared.config.max_queue_depth {
            st = wait(&shared.space, st);
        }
        if st.closed {
            return Err(ServiceError::ShutDown);
        }
        if query.sources.is_empty() {
            // Nothing to traverse: complete immediately instead of
            // enqueueing zero traversals (whose ticket would otherwise
            // never be replied to and read as a shutdown).
            drop(st);
            let (tx, rx) = crossbeam_channel::unbounded();
            lock(&shared.metrics).completed += 1;
            if let Some(o) = &shared.obs {
                o.queries_submitted.inc();
                o.queries_completed.inc();
            }
            let _ = tx.send(Ok(QueryResult {
                id: query.id,
                visited: 0,
                per_level: Vec::new(),
                response_time: Duration::ZERO,
                exec_time: Duration::ZERO,
            }));
            return Ok(QueryTicket { rx, deadline: None });
        }
        // Admission-time shape validation: the closed-batch scheduler
        // panics on an out-of-range source, but a *service* must reject
        // the one bad query and keep serving everyone else.
        let n = shared.engine.num_vertices();
        if let Some(&bad) = query.sources.iter().find(|&&s| s >= n) {
            return Err(ServiceError::InvalidQuery(format!(
                "source {bad} out of range for a graph of {n} vertices"
            )));
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        let ticket = Arc::new(TicketState {
            id: query.id,
            total: query.sources.len(),
            acc: Mutex::new(TicketAcc::default()),
            reply: tx,
        });
        let now = Instant::now();
        let deadline = shared.config.query_deadline.map(|d| now + d);
        for &source in &query.sources {
            st.queue.push_back(Traversal {
                source,
                k: query.k,
                submitted: now,
                deadline,
                ticket: Arc::clone(&ticket),
            });
        }
        if let Some(o) = &shared.obs {
            o.queries_submitted.inc();
            o.queue_depth.set(st.queue.len() as i64);
        }
        shared.work.notify_all();
        Ok(QueryTicket { rx, deadline })
    }

    /// Submits `query` and blocks for its result (submit + wait).
    pub fn query(&self, query: KhopQuery) -> Result<QueryResult, ServiceError> {
        self.submit(query)?.wait()
    }

    /// Snapshot of the lifetime latency/volume counters.
    pub fn stats(&self) -> ServiceStats {
        let m = lock(&self.shared.metrics);
        ServiceStats {
            queries_completed: m.completed,
            queries_failed: m.failed,
            queries_deadline_exceeded: m.deadline_exceeded,
            batches_dispatched: m.batches,
            retries: m.retries,
            recoveries: m.recoveries,
            checkpoints_taken: m.checkpoints_taken,
            checkpoints_restored: m.checkpoints_restored,
            partitions_replayed: m.partitions_replayed,
            full_rollbacks: m.full_rollbacks,
            degraded_generations: m.degraded_generations,
            admission_wait: ResponseStats::new(m.wait.clone()),
            exec: ResponseStats::new(m.exec.clone()),
            response: ResponseStats::new(m.response.clone()),
        }
    }

    /// Stops admission, drains every already-admitted query, then
    /// parks the cluster and joins all service threads. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.shared.state);
            st.closed = true;
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        if let Some(h) = lock(&self.dispatcher).take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Lock helper that survives a poisoned mutex (a dispatcher panic must
/// not cascade into every submitter).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// The dispatcher's mutable view of the cluster: replaced wholesale
/// when the service degrades onto fewer machines.
struct DispatchCtx {
    engine: Arc<DistributedEngine>,
    cluster: PersistentCluster,
    /// Per-machine panic blame since the last degradation.
    blame: Vec<u32>,
    /// Monotone batch sequence number — the chaos *job* identity, so a
    /// [`FaultPlan`] armed for a job window poisons specific batches.
    batch_seq: u64,
}

/// The dispatcher: block for work, pack a batch under the
/// fill-or-deadline policy, execute it on the persistent cluster,
/// fan results back out to tickets. Exits once closed *and* drained.
fn dispatch_loop(shared: &Shared, cluster: PersistentCluster) {
    let mut ctx = DispatchCtx {
        engine: Arc::clone(&shared.engine),
        cluster,
        blame: vec![0; shared.engine.num_machines()],
        batch_seq: 0,
    };
    loop {
        let batch = {
            let mut st = lock(&shared.state);
            loop {
                if st.queue.is_empty() {
                    if st.closed {
                        drop(st);
                        ctx.cluster.shutdown();
                        return;
                    }
                    st = wait(&shared.work, st);
                    continue;
                }
                if st.queue.len() >= shared.lanes || st.closed {
                    break; // filled (or draining after shutdown)
                }
                let age = st.queue.front().expect("non-empty").submitted.elapsed();
                if age >= shared.config.max_batch_delay {
                    break; // deadline: flush the partial batch
                }
                let (g, _) = shared
                    .work
                    .wait_timeout(st, shared.config.max_batch_delay - age)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
            let n = st.queue.len().min(shared.lanes);
            let batch: Vec<Traversal> = st.queue.drain(..n).collect();
            if let Some(o) = &shared.obs {
                o.queue_depth.set(st.queue.len() as i64);
            }
            shared.space.notify_all();
            batch
        };
        execute_batch(shared, &mut ctx, batch);
    }
}

/// Exponential backoff with deterministic jitter (splitmix64 of the
/// batch's job id and the retry ordinal) — reproducible under a fixed
/// chaos seed, yet de-synchronised across batches.
fn backoff_delay(base: Duration, retry: u32, job: u64) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let exp = base.saturating_mul(1u32 << retry.min(16));
    let mut z = job ^ (u64::from(retry) + 1).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    exp + Duration::from_nanos(z % (base.as_nanos().max(1) as u64))
}

/// Re-partitions onto one fewer machine and swaps in a fresh
/// persistent cluster; the old cluster (which may hold a poisoned or
/// repeatedly-failing machine) is parked and shut down.
fn degrade(shared: &Shared, ctx: &mut DispatchCtx) {
    let p = ctx.engine.num_machines() - 1;
    let engine = Arc::new(ctx.engine.repartitioned(p));
    let cluster = PersistentCluster::with_model(p, engine.config().net_model);
    if let Some(o) = &shared.config.obs {
        // The replacement cluster must keep feeding the same registry.
        cluster.set_obs(Arc::clone(o));
    }
    let old = std::mem::replace(&mut ctx.cluster, cluster);
    old.shutdown();
    ctx.engine = engine;
    ctx.blame = vec![0; p];
    lock(&shared.metrics).degraded_generations += 1;
    if let Some(o) = &shared.obs {
        o.degraded_generations.inc();
        o.tracer.instant("degrade", o.ctx(ctx.batch_seq.saturating_sub(1), 0), p as u64);
    }
}

fn execute_batch(shared: &Shared, ctx: &mut DispatchCtx, batch: Vec<Traversal>) {
    let job = ctx.batch_seq;
    ctx.batch_seq += 1;

    // Deadline policy: a traversal whose query deadline already passed
    // is failed up front rather than spending cluster time on it.
    let now = Instant::now();
    let (live, expired): (Vec<Traversal>, Vec<Traversal>) =
        batch.into_iter().partition(|t| t.deadline.is_none_or(|d| now < d));
    for t in &expired {
        complete_traversal(shared, &t.ticket, Err(ServiceError::DeadlineExceeded));
    }
    if live.is_empty() {
        return;
    }

    let sources: Vec<u64> = live.iter().map(|t| t.source).collect();
    let ks: Vec<u32> = live.iter().map(|t| t.k).collect();

    if let Some(o) = &shared.obs {
        o.batch_lanes.observe(live.len() as f64);
        o.tracer.instant("batch_dispatch", o.ctx(job, 0), live.len() as u64);
    }

    // Legacy seam: an installed fault hook runs the old single-shot,
    // non-recoverable path with its original semantics.
    #[allow(deprecated)]
    if let Some(hook) = shared.config.fault_hook.as_ref() {
        let dispatched = Instant::now();
        let hook = Some(&**hook as &(dyn Fn(usize) + Sync));
        match ctx.engine.run_traversal_batch_on_hooked(&ctx.cluster, &sources, &ks, hook) {
            Ok(br) => {
                lock(&shared.metrics).batches += 1;
                if let Some(o) = &shared.obs {
                    o.batches_dispatched.inc();
                }
                fan_out(shared, live, &br, dispatched);
            }
            Err(e) => fail_batch(shared, &live, &e),
        }
        return;
    }

    // Recoverable path: in-batch checkpoint/replay first (inside the
    // engine), then whole-batch retries with backoff, then degradation
    // once the same machine keeps dying.
    let mut retry = 0u32;
    loop {
        let fault = shared.config.fault_plan.as_ref().map(|plan| FaultInjection {
            plan,
            job,
            // Salt retries past the engine's own recovery attempts so a
            // healing plan sees monotone attempt numbers.
            first_attempt: retry * (shared.config.recovery.max_recoveries + 1),
        });
        let dispatched = Instant::now();
        let run = ctx.engine.run_traversal_batch_recoverable(
            &ctx.cluster,
            &sources,
            &ks,
            &shared.config.recovery,
            fault,
        );
        match run {
            Ok((br, report)) => {
                let mut m = lock(&shared.metrics);
                m.batches += 1;
                m.retries += u64::from(retry);
                m.recoveries += u64::from(report.recoveries);
                m.checkpoints_taken += report.checkpoints_taken;
                m.checkpoints_restored += report.checkpoints_restored;
                m.partitions_replayed += report.partitions_replayed;
                m.full_rollbacks += u64::from(report.full_rollbacks);
                drop(m);
                if let Some(o) = &shared.obs {
                    // The engine folded the same `report` into the
                    // `cgraph_recovery_*` counters on this Ok return.
                    o.batches_dispatched.inc();
                    o.retries.add(u64::from(retry));
                    o.tracer.instant("batch_done", o.ctx(job, retry), br.supersteps as u64);
                }
                fan_out(shared, live, &br, dispatched);
                return;
            }
            Err(e) => {
                if let EngineError::Cluster(ClusterError::MachinePanicked { machine, .. }) = &e {
                    if let Some(b) = ctx.blame.get_mut(*machine) {
                        *b += 1;
                        let threshold = shared.config.degrade_after;
                        if threshold.is_some_and(|th| *b >= th) && ctx.engine.num_machines() > 1 {
                            degrade(shared, ctx);
                            continue; // degrading does not consume a retry
                        }
                    }
                }
                if e.is_recoverable() && retry < shared.config.max_retries {
                    std::thread::sleep(backoff_delay(shared.config.retry_backoff, retry, job));
                    retry += 1;
                    if let Some(o) = &shared.obs {
                        o.tracer.instant("batch_retry", o.ctx(job, retry), 0);
                    }
                    continue;
                }
                lock(&shared.metrics).retries += u64::from(retry);
                if let Some(o) = &shared.obs {
                    o.retries.add(u64::from(retry));
                    o.tracer.instant("batch_failed", o.ctx(job, retry), 0);
                }
                fail_batch(shared, &live, &e);
                return;
            }
        }
    }
}

/// Fans a successful batch result back out to its traversals' tickets.
fn fan_out(
    shared: &Shared,
    batch: Vec<Traversal>,
    br: &crate::engine::BatchResult,
    dispatched: Instant,
) {
    let batch_dur = br.exec_time;
    for (lane, t) in batch.into_iter().enumerate() {
        // A lane finishes after its completion point within the
        // batch — the same accounting as the closed-batch
        // scheduler's per-lane fraction.
        let done = br.lane_completion[lane].min(br.exec_time);
        let frac = if br.exec_time.is_zero() {
            1.0
        } else {
            done.as_secs_f64() / br.exec_time.as_secs_f64()
        };
        let exec = batch_dur.mul_f64(frac);
        let wait = dispatched.duration_since(t.submitted);
        let levels: Vec<u64> = br.per_level.iter().map(|row| row[lane]).collect();
        complete_traversal(shared, &t.ticket, Ok((br.per_lane_visited[lane], levels, wait, exec)));
    }
}

/// Fails every traversal of a batch whose retries are exhausted —
/// isolation means *only* these lanes fail; the service keeps serving.
fn fail_batch(shared: &Shared, batch: &[Traversal], e: &EngineError) {
    let err = ServiceError::BatchFailed(e.to_string());
    for t in batch {
        complete_traversal(shared, &t.ticket, Err(err.clone()));
    }
}

type TraversalOutcome = (u64, Vec<u64>, Duration, Duration);

/// Folds one traversal's outcome into its query; when the last
/// traversal lands, emits the query result (scheduler fold semantics:
/// visited = sum, per-level = elementwise sum, times = mean) and
/// records latency into the service metrics.
fn complete_traversal(
    shared: &Shared,
    ticket: &TicketState,
    outcome: Result<TraversalOutcome, ServiceError>,
) {
    let mut acc = lock(&ticket.acc);
    acc.done += 1;
    match outcome {
        Ok((visited, levels, wait, exec)) => {
            acc.visited += visited;
            if acc.per_level.len() < levels.len() {
                acc.per_level.resize(levels.len(), 0);
            }
            for (h, c) in levels.into_iter().enumerate() {
                acc.per_level[h] += c;
            }
            acc.wait_sum += wait;
            acc.exec_sum += exec;
            acc.resp_sum += wait + exec;
        }
        Err(e) => {
            acc.failed.get_or_insert(e);
        }
    }
    if acc.done < ticket.total {
        return;
    }
    let n = ticket.total as u32;
    let mut metrics = lock(&shared.metrics);
    let reply = match acc.failed.take() {
        Some(e) => {
            metrics.failed += 1;
            if let Some(o) = &shared.obs {
                o.queries_failed.inc();
            }
            if e == ServiceError::DeadlineExceeded {
                metrics.deadline_exceeded += 1;
                if let Some(o) = &shared.obs {
                    o.queries_deadline_exceeded.inc();
                }
            }
            Err(e)
        }
        None => {
            // Canonical level profile: a lane's level vector is padded
            // to its *batch's* depth, which depends on how the stream
            // happened to pack — trim so results are packing-invariant.
            while acc.per_level.last() == Some(&0) {
                acc.per_level.pop();
            }
            let wait = acc.wait_sum / n;
            let exec = acc.exec_sum / n;
            let response = acc.resp_sum / n;
            metrics.completed += 1;
            metrics.wait.push(wait);
            metrics.exec.push(exec);
            metrics.response.push(response);
            if let Some(o) = &shared.obs {
                o.queries_completed.inc();
                o.admission_wait.observe_duration(wait);
                o.exec.observe_duration(exec);
                o.response.observe_duration(response);
            }
            Ok(QueryResult {
                id: ticket.id,
                visited: acc.visited,
                per_level: std::mem::take(&mut acc.per_level),
                response_time: response,
                exec_time: exec,
            })
        }
    };
    // The submitter may have dropped its ticket; that is fine.
    let _ = ticket.reply.send(reply);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use cgraph_graph::EdgeList;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn ring_engine(n: u64, p: usize) -> Arc<DistributedEngine> {
        let g: EdgeList = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Arc::new(DistributedEngine::new(&g, EngineConfig::new(p)))
    }

    #[test]
    fn service_matches_scheduler_counts() {
        let engine = ring_engine(60, 2);
        let queries: Vec<KhopQuery> =
            (0..12).map(|i| KhopQuery::single(i, (i * 5) as u64, 4)).collect();
        let expected = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);

        let service = QueryService::start(Arc::clone(&engine), ServiceConfig::default());
        let tickets: Vec<QueryTicket> =
            queries.iter().map(|q| service.submit(q.clone()).unwrap()).collect();
        for (ticket, exp) in tickets.into_iter().zip(&expected) {
            let got = ticket.wait().unwrap();
            assert_eq!(got.id, exp.id);
            assert_eq!(got.visited, exp.visited);
            assert_eq!(got.per_level, exp.per_level);
        }
        let stats = service.stats();
        assert_eq!(stats.queries_completed, 12);
        assert_eq!(stats.queries_failed, 0);
        assert!(stats.batches_dispatched >= 1);
        assert_eq!(stats.response.len(), 12);
        service.shutdown();
    }

    #[test]
    fn multi_source_query_folds_traversals() {
        let engine = ring_engine(40, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let r = service.query(KhopQuery::multi(3, vec![0, 20], 2)).unwrap();
        assert_eq!(r.visited, 6); // two independent 3-vertex traversals
        assert_eq!(r.per_level, vec![2, 2, 2]);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let engine = ring_engine(30, 1);
        let config =
            ServiceConfig { max_batch_delay: Duration::from_millis(1), ..Default::default() };
        let service = QueryService::start(engine, config);
        // One traversal nowhere near 64 lanes: only the deadline can
        // flush it.
        let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
        assert_eq!(r.visited, 4);
        assert!(r.response_time >= r.exec_time);
    }

    #[test]
    fn backpressure_blocks_but_everything_completes() {
        let engine = ring_engine(50, 2);
        let config = ServiceConfig {
            max_queue_depth: 2,
            max_batch_delay: Duration::from_micros(200),
            ..Default::default()
        };
        let service = Arc::new(QueryService::start(engine, config));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    (0..8)
                        .map(|i| {
                            let q = KhopQuery::single(t * 8 + i, ((t * 8 + i) % 50) as u64, 2);
                            service.query(q).unwrap().visited
                        })
                        .sum::<u64>()
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 4 * 8 * 3); // every 2-hop ring query reaches 3
        assert_eq!(service.stats().queries_completed, 32);
    }

    #[test]
    fn empty_source_query_completes_immediately() {
        let engine = ring_engine(20, 1);
        // `KhopQuery::multi` rejects empty sources, but the fields are
        // public, so the service must still handle the case.
        let empty = KhopQuery { id: 9, sources: Vec::new(), k: 3 };
        // Scheduler semantics for zero sources: an all-zero result.
        let expected = QueryScheduler::new(&engine, SchedulerConfig::default())
            .execute(std::slice::from_ref(&empty));
        let service = QueryService::start(engine, ServiceConfig::default());
        let ticket = service.submit(empty).unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.id, expected[0].id);
        assert_eq!(got.visited, expected[0].visited);
        assert_eq!(got.per_level, expected[0].per_level);
        assert_eq!(got.response_time, Duration::ZERO);
        assert_eq!(service.stats().queries_completed, 1);
        service.shutdown();
    }

    #[test]
    fn try_wait_polls_to_completion() {
        let engine = ring_engine(20, 1);
        let config =
            ServiceConfig { max_batch_delay: Duration::from_micros(100), ..Default::default() };
        let service = QueryService::start(engine, config);
        let ticket = service.submit(KhopQuery::single(0, 0, 3)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let got = loop {
            match ticket.try_wait() {
                Some(reply) => break reply.unwrap(),
                None => {
                    assert!(Instant::now() < deadline, "query never completed");
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(got.visited, 4);
        service.shutdown();
    }

    #[test]
    fn try_wait_reports_shutdown_on_disconnect() {
        // A ticket whose reply channel died without a reply must not
        // read as "still in flight" — pollers would spin forever.
        let (tx, rx) = crossbeam_channel::unbounded();
        drop(tx);
        let ticket = QueryTicket { rx, deadline: None };
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::ShutDown)));
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let engine = ring_engine(20, 1);
        let service = QueryService::start(engine, ServiceConfig::default());
        service.shutdown();
        let err = service.submit(KhopQuery::single(0, 0, 2)).unwrap_err();
        assert_eq!(err, ServiceError::ShutDown);
        service.shutdown(); // idempotent
    }

    #[test]
    fn out_of_range_source_rejected_at_admission() {
        let engine = ring_engine(20, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let err = service.submit(KhopQuery::single(0, 99, 2)).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidQuery(_)), "{err:?}");
        // Rejection is per-query: the service keeps serving.
        let ok = service.query(KhopQuery::single(1, 3, 2)).unwrap();
        assert_eq!(ok.visited, 3);
        service.shutdown();
    }

    #[test]
    fn chaos_crash_recovers_with_zero_failed_queries() {
        // The acceptance scenario: a machine crash mid-batch in sync
        // mode recovers via confined partition replay from a
        // checkpoint — no query fails, no full rollback happens.
        let engine = ring_engine(64, 4);
        let plan = FaultPlan::new(11).crash(2, 7).heal_after(1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            recovery: RecoveryConfig { checkpoint_interval: 3, max_recoveries: 2 },
            ..Default::default()
        };
        let expected = ring_engine(64, 4).run_traversal_batch(&[0, 16], &[20, 20]).unwrap();
        let service = QueryService::start(engine, config);
        // One multi-source query: both traversals are admitted under a
        // single lock, so they land in exactly one batch (one chaos job).
        let r = service.query(KhopQuery::multi(7, vec![0, 16], 20)).unwrap();
        assert_eq!(r.visited, expected.per_lane_visited.iter().sum::<u64>());
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.queries_completed, 1);
        assert!(stats.recoveries >= 1, "the crash must trigger a recovery");
        assert!(stats.checkpoints_restored >= 1, "recovery must restore from a checkpoint");
        assert_eq!(stats.partitions_replayed, 1, "only the crashed partition replays");
        assert_eq!(stats.full_rollbacks, 0, "confined replay must not roll back globally");
        assert_eq!(stats.retries, 0, "in-batch recovery must not consume service retries");
        service.shutdown();
    }

    #[test]
    fn unrecoverable_plan_fails_only_poisoned_batch() {
        // A never-healing crash armed for job 0 only: the first batch's
        // lanes fail after retries are exhausted, while later queries
        // complete on the same service.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(3).crash(1, 1).arm_jobs(0..1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 1,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let err = service.query(KhopQuery::single(0, 0, 5)).unwrap_err();
        assert!(matches!(err, ServiceError::BatchFailed(_)), "{err:?}");
        // Batch 1 is outside the armed window: it must succeed.
        let ok = service.query(KhopQuery::single(1, 0, 5)).unwrap();
        assert_eq!(ok.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 1);
        assert_eq!(stats.queries_completed, 1);
        assert_eq!(stats.retries, 1, "the poisoned batch consumed its retry");
        service.shutdown();
    }

    #[test]
    fn retry_rescues_batch_that_heals_on_resubmission() {
        // The plan heals only after the engine's own recoveries are
        // exhausted (first_attempt of retry 1 = 1 × (0 + 1) = 1), so
        // success requires a service-level retry.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(8).crash(0, 1).heal_after(1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 2,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 5)).unwrap();
        assert_eq!(r.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recoveries, 0, "max_recoveries = 0 leaves recovery to the retry");
        service.shutdown();
    }

    #[test]
    fn repeated_machine_failures_degrade_to_smaller_cluster() {
        // Machine 1 dies on every attempt, forever. With degrade_after
        // = 2 the service re-partitions onto one machine — where the
        // plan's machine-1 crash can no longer fire — and the query
        // completes without ever failing.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(5).crash(1, 1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 4,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
            degrade_after: Some(2),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 5)).unwrap();
        assert_eq!(r.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.degraded_generations, 1);
        service.shutdown();
    }

    #[test]
    fn expired_queries_fail_with_deadline_exceeded() {
        let engine = ring_engine(30, 1);
        let config = ServiceConfig {
            // The dispatcher flushes only after 50 ms, far past the
            // 1 ms query deadline — every query expires pre-dispatch.
            max_batch_delay: Duration::from_millis(50),
            query_deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let ticket = service.submit(KhopQuery::single(0, 0, 3)).unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        // The dispatcher eventually drains the expired traversal and
        // records it.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = service.stats();
            if stats.queries_deadline_exceeded == 1 {
                assert_eq!(stats.queries_failed, 1);
                break;
            }
            assert!(Instant::now() < deadline, "expiry never recorded");
            std::thread::yield_now();
        }
        service.shutdown();
    }

    #[test]
    fn generous_deadline_does_not_affect_results() {
        let engine = ring_engine(30, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_deadline: Some(Duration::from_secs(60)),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 4)).unwrap();
        assert_eq!(r.visited, 5);
        assert_eq!(service.stats().queries_deadline_exceeded, 0);
        service.shutdown();
    }

    #[test]
    fn try_wait_reports_expired_deadline() {
        let (_tx, rx) = crossbeam_channel::unbounded();
        let ticket = QueryTicket { rx, deadline: Some(Instant::now() - Duration::from_millis(1)) };
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::DeadlineExceeded)));
    }

    #[test]
    #[allow(deprecated)]
    fn fault_hook_fails_batch_but_service_survives() {
        let engine = ring_engine(40, 2);
        let blow_once = Arc::new(AtomicBool::new(true));
        let hook = {
            let blow_once = Arc::clone(&blow_once);
            Arc::new(move |machine: usize| {
                if machine == 1 && blow_once.swap(false, Ordering::SeqCst) {
                    panic!("injected machine fault");
                }
            })
        };
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_hook: Some(hook),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);

        let err = service.query(KhopQuery::single(0, 0, 3)).unwrap_err();
        match err {
            ServiceError::BatchFailed(msg) => {
                assert!(msg.contains("injected machine fault"), "{msg}")
            }
            other => panic!("expected BatchFailed, got {other:?}"),
        }
        // The hook disarmed itself: the very next query succeeds on the
        // same (surviving) persistent cluster.
        let ok = service.query(KhopQuery::single(1, 0, 3)).unwrap();
        assert_eq!(ok.visited, 4);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 1);
        assert_eq!(stats.queries_completed, 1);
        service.shutdown();
    }
}
