//! Superstep checkpointing and partition replay (confined recovery).
//!
//! The sync-mode batch path is BSP: at every superstep boundary each
//! partition's complete traversal state is exactly its bit-packed
//! `(frontier, visited)` words (see
//! [`BitFrontier::snapshot_words`](crate::bitfrontier::BitFrontier::snapshot_words)),
//! and all cross-partition influence flows through logged messages.
//! That gives the classic Pregel-style *confined recovery*: checkpoint
//! cheaply at boundaries, log outgoing messages per superstep, and
//! when machine *f* dies at superstep *s*, replay **only partition
//! f** from its last committed checkpoint while every healthy
//! partition merely resumes from the state it saved when it noticed
//! the poisoned barrier — no healthy partition re-executes from
//! superstep 0.
//!
//! The `RecoveryStore` (crate-private) is the shared blackboard:
//! committed checkpoints (uniform across machines, gated on a
//! drop-free job),
//! poison-time saves from healthy machines, per-sender message logs
//! keyed `(superstep, dest)` with OR-merged payloads (idempotent under
//! resend, which resumption requires), and the per-boundary global
//! live-lane masks that replay needs for completion bookkeeping.
//!
//! When confined recovery's preconditions fail — messages were
//! dropped (logs record *intent*, not delivery), saves are missing, or
//! machines stopped at different boundaries — the engine falls back to
//! a **global rollback**: all partitions restart from the committed
//! checkpoint set (or from scratch). Async mode always takes the
//! whole-batch path: without barriers there is no meaningful uniform
//! boundary to checkpoint.
//!
//! # Example
//!
//! ```
//! use cgraph_core::{DistributedEngine, EngineConfig, FaultInjection, FaultPlan, RecoveryConfig};
//! use cgraph_comm::PersistentCluster;
//!
//! let ring: cgraph_graph::EdgeList = (0..20u64).map(|v| (v, (v + 1) % 20)).collect();
//! let engine = DistributedEngine::new(&ring, EngineConfig::new(2));
//! let cluster = PersistentCluster::new(2);
//! // Machine 1 dies at superstep 2 on the first attempt, then heals.
//! let plan = FaultPlan::new(3).crash(1, 2).heal_after(1);
//! let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
//! let rc = RecoveryConfig { checkpoint_interval: 2, max_recoveries: 2 };
//! let (result, report) = engine
//!     .run_traversal_batch_recoverable(&cluster, &[0], &[6], &rc, Some(fault))
//!     .unwrap();
//! assert_eq!(result.per_lane_visited, vec![7]); // fault-free answer
//! assert_eq!(report.recoveries, 1);
//! assert_eq!(report.full_rollbacks, 0); // confined replay, no rollback
//! cluster.shutdown();
//! ```

use cgraph_graph::LaneMask;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Checkpointing/retry knobs for the recoverable batch path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Commit a checkpoint every `checkpoint_interval` supersteps
    /// (boundary 0 — the seeded state — is always implicit). Smaller
    /// intervals mean less replay but more snapshot copying.
    pub checkpoint_interval: u32,
    /// How many recoveries (confined replays or global rollbacks) to
    /// attempt before giving up on the batch.
    pub max_recoveries: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self { checkpoint_interval: 4, max_recoveries: 3 }
    }
}

/// What recovery did for one batch, surfaced into service stats.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Total cluster submissions (1 = fault-free).
    pub attempts: u32,
    /// Recoveries performed (confined or global).
    pub recoveries: u32,
    /// Checkpoints committed across all attempts (counted once per
    /// boundary, not per machine).
    pub checkpoints_taken: u64,
    /// Checkpoint restores (confined replays count the failed
    /// partition's restore; global rollbacks count one per machine
    /// restored from a committed checkpoint).
    pub checkpoints_restored: u64,
    /// Partitions replayed confined (without touching healthy peers).
    pub partitions_replayed: u64,
    /// Supersteps re-executed during confined replays.
    pub supersteps_replayed: u64,
    /// Whole-batch rollbacks (the fallback when confined recovery's
    /// preconditions do not hold, and the only mode in async).
    pub full_rollbacks: u32,
}

/// One partition's state at a superstep boundary.
#[derive(Clone, Debug)]
pub(crate) struct PartitionSnapshot {
    /// The boundary this state belongs to: the state *after* the
    /// advance of superstep `boundary - 1` (boundary 0 = seeded).
    pub boundary: u32,
    /// Lane count of the batch this snapshot belongs to. The restore
    /// path rejects a mismatch: a checkpoint taken at one batch width
    /// can never resume a batch of another (the frontier/visited word
    /// layout is width-dependent).
    pub lanes: usize,
    /// Graph epoch the batch was admitted against. Confined replay must
    /// restore against the same snapshot of the graph — the restore
    /// path asserts this matches the engine's `graph_epoch`.
    pub epoch: u64,
    /// `num_local × width.words()` frontier words.
    pub frontier: Vec<u64>,
    /// `num_local × width.words()` visited words.
    pub visited: Vec<u64>,
    /// Per-level discovery counts for supersteps `0..boundary`.
    pub per_level_local: Vec<Vec<u64>>,
    pub lane_completion: Vec<Duration>,
    /// Lanes recorded complete by `boundary`.
    pub completed: LaneMask,
    /// CPU busy time accumulated up to `boundary` (so a resumed
    /// attempt keeps the scaling-relevant busy metric additive).
    pub busy: Duration,
}

/// One sender's message log: `(superstep, dest machine)` to the
/// OR-merged `dst vertex -> lane mask` payload of that superstep.
type SenderLog = HashMap<(u32, usize), HashMap<u64, LaneMask>>;

/// Shared recovery blackboard for one batch execution (all attempts).
pub(crate) struct RecoveryStore {
    /// Last *committed* checkpoint per partition: uniform boundary,
    /// taken only on drop-free supersteps, survives across attempts.
    committed: Vec<Mutex<Option<PartitionSnapshot>>>,
    /// State a machine should resume from on the next attempt instead
    /// of re-seeding (installed by the recovery coordinator).
    resume: Vec<Mutex<Option<PartitionSnapshot>>>,
    /// Poison-time saves: a healthy machine that notices a dead peer
    /// at a barrier parks its boundary state here and returns.
    saved: Vec<Mutex<Option<PartitionSnapshot>>>,
    /// Per-sender message logs: `(superstep, dest) -> (dst vertex ->
    /// lane mask)`. OR-merged so a resumed machine re-logging the same
    /// superstep is idempotent.
    logs: Vec<Mutex<SenderLog>>,
    /// Global live-lane mask agreed at each boundary (all machines
    /// write the identical post-reduce value).
    live: Mutex<HashMap<u32, LaneMask>>,
    /// Committed-checkpoint boundaries count (machine 0's commits).
    commits: AtomicU64,
}

impl RecoveryStore {
    pub(crate) fn new(p: usize) -> Self {
        Self {
            committed: (0..p).map(|_| Mutex::new(None)).collect(),
            resume: (0..p).map(|_| Mutex::new(None)).collect(),
            saved: (0..p).map(|_| Mutex::new(None)).collect(),
            logs: (0..p).map(|_| Mutex::new(HashMap::new())).collect(),
            live: Mutex::new(HashMap::new()),
            commits: AtomicU64::new(0),
        }
    }

    /// Installs the state machine `id` must resume from next attempt.
    pub(crate) fn set_resume(&self, id: usize, snap: PartitionSnapshot) {
        *self.resume[id].lock() = Some(snap);
    }

    /// Takes (and clears) machine `id`'s resume state.
    pub(crate) fn take_resume(&self, id: usize) -> Option<PartitionSnapshot> {
        self.resume[id].lock().take()
    }

    /// Commits machine `id`'s checkpoint at a drop-free boundary.
    pub(crate) fn commit(&self, id: usize, snap: PartitionSnapshot) {
        if id == 0 {
            self.commits.fetch_add(1, Ordering::Relaxed);
        }
        *self.committed[id].lock() = Some(snap);
    }

    /// Checkpoints committed so far (one count per boundary).
    pub(crate) fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Machine `id`'s committed checkpoint, if any.
    pub(crate) fn committed_clone(&self, id: usize) -> Option<PartitionSnapshot> {
        self.committed[id].lock().clone()
    }

    /// Parks a healthy machine's boundary state when a peer died.
    pub(crate) fn save(&self, id: usize, snap: PartitionSnapshot) {
        *self.saved[id].lock() = Some(snap);
    }

    /// Takes (and clears) machine `id`'s poison-time save.
    pub(crate) fn take_saved(&self, id: usize) -> Option<PartitionSnapshot> {
        self.saved[id].lock().take()
    }

    /// OR-merges machine `from`'s outgoing messages for `superstep`
    /// into its log (idempotent under resend).
    pub(crate) fn log_merge(
        &self,
        from: usize,
        superstep: u32,
        dest: usize,
        batch: &[(u64, LaneMask)],
    ) {
        let mut log = self.logs[from].lock();
        let entry = log.entry((superstep, dest)).or_default();
        for &(v, w) in batch {
            entry.entry(v).and_modify(|m| m.or_assign(&w)).or_insert(w);
        }
    }

    /// Every message any machine logged to `dest` during `superstep`.
    pub(crate) fn logged_to(&self, dest: usize, superstep: u32) -> Vec<(u64, LaneMask)> {
        let mut out = Vec::new();
        for log in &self.logs {
            if let Some(batch) = log.lock().get(&(superstep, dest)) {
                out.extend(batch.iter().map(|(&v, &w)| (v, w)));
            }
        }
        out
    }

    /// Records the globally-agreed live mask at `boundary` (all
    /// machines write the same post-reduce value).
    pub(crate) fn record_live(&self, boundary: u32, live: LaneMask) {
        self.live.lock().insert(boundary, live);
    }

    /// The live mask recorded at `boundary`.
    pub(crate) fn live_at(&self, boundary: u32) -> Option<LaneMask> {
        self.live.lock().get(&boundary).copied()
    }

    /// Clears everything derived from (possibly tainted) execution:
    /// saves, resume states, logs, and live masks. Committed
    /// checkpoints survive — they were gated on drop-free supersteps.
    pub(crate) fn clear_execution_state(&self) {
        for s in &self.saved {
            *s.lock() = None;
        }
        for r in &self.resume {
            *r.lock() = None;
        }
        for l in &self.logs {
            l.lock().clear();
        }
        self.live.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(boundary: u32) -> PartitionSnapshot {
        PartitionSnapshot {
            boundary,
            lanes: 1,
            epoch: 0,
            frontier: vec![1],
            visited: vec![3],
            per_level_local: vec![vec![1]],
            lane_completion: vec![Duration::ZERO],
            completed: LaneMask::zero(cgraph_graph::LaneWidth::W64),
            busy: Duration::ZERO,
        }
    }

    fn m(word: u64) -> LaneMask {
        LaneMask::from_words(&[word])
    }

    /// Sorts by vertex then raw mask words for deterministic compare.
    fn sorted(mut v: Vec<(u64, LaneMask)>) -> Vec<(u64, LaneMask)> {
        v.sort_unstable_by_key(|&(vtx, w)| (vtx, w.raw()));
        v
    }

    #[test]
    fn log_merge_is_idempotent() {
        let store = RecoveryStore::new(2);
        store.log_merge(0, 3, 1, &[(7, m(0b01)), (9, m(0b10))]);
        // A resumed machine re-sends the same superstep's messages.
        store.log_merge(0, 3, 1, &[(7, m(0b01)), (9, m(0b10))]);
        assert_eq!(sorted(store.logged_to(1, 3)), vec![(7, m(0b01)), (9, m(0b10))]);
    }

    #[test]
    fn logs_aggregate_across_senders() {
        let store = RecoveryStore::new(3);
        store.log_merge(0, 1, 2, &[(5, m(0b01))]);
        store.log_merge(1, 1, 2, &[(5, m(0b10))]);
        assert_eq!(sorted(store.logged_to(2, 1)), vec![(5, m(0b01)), (5, m(0b10))]);
        assert!(store.logged_to(2, 2).is_empty());
    }

    #[test]
    fn log_merge_ors_wide_masks_per_vertex() {
        let store = RecoveryStore::new(1);
        let mut hi = LaneMask::zero(cgraph_graph::LaneWidth::new(128).unwrap());
        hi.set(100);
        let mut lo = LaneMask::zero(cgraph_graph::LaneWidth::new(128).unwrap());
        lo.set(3);
        store.log_merge(0, 0, 0, &[(7, hi)]);
        store.log_merge(0, 0, 0, &[(7, lo)]);
        let got = store.logged_to(0, 0);
        assert_eq!(got.len(), 1);
        assert!(got[0].1.get(3) && got[0].1.get(100));
    }

    #[test]
    fn commits_counted_once_per_boundary() {
        let store = RecoveryStore::new(2);
        store.commit(0, snap(4));
        store.commit(1, snap(4));
        assert_eq!(store.commits(), 1);
        assert_eq!(store.committed_clone(0).unwrap().boundary, 4);
    }

    #[test]
    fn execution_state_clears_but_commits_survive() {
        let store = RecoveryStore::new(1);
        store.commit(0, snap(2));
        store.save(0, snap(3));
        store.set_resume(0, snap(3));
        store.log_merge(0, 2, 0, &[(1, m(1))]);
        store.record_live(2, m(0b11));
        store.clear_execution_state();
        assert!(store.take_saved(0).is_none());
        assert!(store.take_resume(0).is_none());
        assert!(store.logged_to(0, 2).is_empty());
        assert!(store.live_at(2).is_none());
        assert!(store.committed_clone(0).is_some());
    }
}
