//! The partition-centric programming abstraction of Listing 1 (§3.4).
//!
//! C-Graph exposes the Giraph++-style partition-centric model: user
//! code implements a per-partition `compute()` and talks to the rest of
//! the cluster through `sendTo`, `voteToHalt` and the vertex-ownership
//! predicates. The table below maps Listing 1 to this module:
//!
//! | Listing 1                  | Here                                   |
//! |----------------------------|----------------------------------------|
//! | `void abstract compute()`  | [`PartitionProgram::compute`]          |
//! | `sendTo(V, M)`             | [`PartitionCtx::send_to`]              |
//! | `voteTohalt()`             | [`PartitionCtx::vote_to_halt`]         |
//! | `ifHasVertex(V)`           | [`PartitionCtx::if_has_vertex`]        |
//! | `isLocalVertex(V)`         | [`PartitionCtx::is_local_vertex`]      |
//! | `isBoundaryVertex(V)`      | [`PartitionCtx::is_boundary_vertex`]   |
//! | `getLocalVertices()`       | [`PartitionCtx::local_vertices`]       |
//! | `getBoundaryVertices()`    | [`PartitionCtx::boundary_vertices`]    |
//! | `getAllVertices()`         | [`PartitionCtx::num_all_vertices`]     |
//! | `barrier()`                | implicit between supersteps (sync mode)|
//!
//! Programs run under [`crate::engine::DistributedEngine::run_program`],
//! which drives supersteps, routes messages by vertex ownership, and
//! detects global termination (all partitions halted ∧ no messages in
//! flight).

use crate::partition::RangePartition;
use crate::shard::Shard;
use cgraph_graph::VertexId;

/// Per-superstep context handed to [`PartitionProgram::compute`].
pub struct PartitionCtx<'a> {
    shard: &'a Shard,
    partition: &'a RangePartition,
    superstep: u64,
    halted: bool,
    /// Messages staged this superstep: `(destination vertex, payload)`.
    /// The engine routes each to the destination's owner partition.
    outbox: Vec<(VertexId, u64)>,
}

impl<'a> PartitionCtx<'a> {
    /// Creates a context (engine-internal).
    pub(crate) fn new(shard: &'a Shard, partition: &'a RangePartition) -> Self {
        Self { shard, partition, superstep: 0, halted: false, outbox: Vec::new() }
    }

    /// This partition's ID.
    pub fn partition_id(&self) -> usize {
        self.shard.id()
    }

    /// Number of partitions in the cluster.
    pub fn num_partitions(&self) -> usize {
        self.partition.num_partitions()
    }

    /// Current superstep number (0 during `init`).
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// `sendTo(V destination, M msg)` — stages a message to any vertex
    /// in the graph by unique ID; delivered next superstep to the
    /// owning partition.
    pub fn send_to(&mut self, destination: VertexId, msg: u64) {
        debug_assert!(self.if_has_vertex(destination));
        self.outbox.push((destination, msg));
    }

    /// `voteTohalt()` — this partition is done unless messages arrive.
    pub fn vote_to_halt(&mut self) {
        self.halted = true;
    }

    /// `ifHasVertex(V)` — true when the vertex exists in the graph.
    pub fn if_has_vertex(&self, v: VertexId) -> bool {
        v < self.partition.num_vertices()
    }

    /// `isLocalVertex(V)`.
    pub fn is_local_vertex(&self, v: VertexId) -> bool {
        self.shard.is_local(v)
    }

    /// `isBoundaryVertex(V)` — a remote vertex adjacent to this
    /// partition.
    pub fn is_boundary_vertex(&self, v: VertexId) -> bool {
        self.shard.is_boundary(v)
    }

    /// `getLocalVertices()`.
    pub fn local_vertices(&self) -> impl Iterator<Item = VertexId> {
        self.shard.local_range().iter()
    }

    /// `getBoundaryVertices()`.
    pub fn boundary_vertices(&self) -> &[VertexId] {
        self.shard.boundary_vertices()
    }

    /// `getAllVertices()` — the global vertex count.
    pub fn num_all_vertices(&self) -> u64 {
        self.partition.num_vertices()
    }

    /// Out-neighbours of a local vertex (traversal building block).
    pub fn out_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.shard.out_neighbors(v)
    }

    /// Out-neighbours of a local vertex with edge weights (weighted
    /// traversals, e.g. SSSP under SDN-style distance constraints).
    pub fn out_neighbors_weighted(&self, v: VertexId) -> Vec<(VertexId, f32)> {
        self.shard.out_neighbors_weighted(v)
    }

    /// In-neighbours of a local vertex (requires shards built with
    /// in-edges).
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.shard.in_edges().in_neighbors(v)
    }

    /// The underlying shard (for edge-set level access).
    pub fn shard(&self) -> &Shard {
        self.shard
    }

    // --- engine-side accessors -------------------------------------

    pub(crate) fn halted(&self) -> bool {
        self.halted
    }

    pub(crate) fn un_halt(&mut self) {
        self.halted = false;
    }

    pub(crate) fn take_outbox(&mut self) -> Vec<(VertexId, u64)> {
        std::mem::take(&mut self.outbox)
    }

    pub(crate) fn advance_superstep(&mut self) {
        self.superstep += 1;
    }
}

/// A partition-centric program (Listing 1's abstract class).
///
/// Message payloads are `u64` words — vertex IDs, packed (id, depth)
/// pairs, or float bits; partition-centric algorithms in the paper all
/// ship word-sized updates ("the boundary vertex ID with its value").
pub trait PartitionProgram {
    /// The per-partition output extracted when the program halts.
    type Out: Send;

    /// Called once before superstep 1 — seed initial state and
    /// optionally stage messages.
    fn init(&mut self, ctx: &mut PartitionCtx<'_>);

    /// `compute()` — called each superstep with the messages delivered
    /// to this partition's vertices. Not called for supersteps in which
    /// this partition is halted and receives no messages.
    fn compute(&mut self, ctx: &mut PartitionCtx<'_>, incoming: &[(VertexId, u64)]);

    /// Extracts the result after global termination.
    fn finish(self, ctx: &PartitionCtx<'_>) -> Self::Out;

    /// This partition's contribution to the global aggregator for the
    /// superstep that just computed (Pregel-style aggregator; wrapping
    /// sum across partitions). Default: nothing.
    fn aggregate_contribution(&mut self) -> u64 {
        0
    }

    /// Receives the global aggregate (sum of every partition's
    /// contribution) after each superstep barrier. Default: ignored.
    fn receive_aggregate(&mut self, _aggregate: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::{ConsolidationPolicy, EdgeList};

    fn ctx_fixture() -> (RangePartition, Vec<Shard>) {
        let g: EdgeList = (0..10u64).map(|v| (v, (v + 1) % 10)).collect();
        let part = RangePartition::by_vertices(10, 2);
        let shards =
            crate::shard::build_shards(&part, g.edges(), ConsolidationPolicy::default(), false);
        (part, shards)
    }

    #[test]
    fn listing1_predicates() {
        let (part, shards) = ctx_fixture();
        let ctx = PartitionCtx::new(&shards[0], &part);
        assert!(ctx.if_has_vertex(9));
        assert!(!ctx.if_has_vertex(10));
        assert!(ctx.is_local_vertex(0));
        assert!(!ctx.is_local_vertex(7));
        assert!(ctx.is_boundary_vertex(5)); // vertex 4 -> 5 crosses
        assert!(!ctx.is_boundary_vertex(8));
        assert_eq!(ctx.local_vertices().count(), 5);
        assert_eq!(ctx.num_all_vertices(), 10);
        assert_eq!(ctx.partition_id(), 0);
        assert_eq!(ctx.num_partitions(), 2);
    }

    #[test]
    fn outbox_and_halt_lifecycle() {
        let (part, shards) = ctx_fixture();
        let mut ctx = PartitionCtx::new(&shards[0], &part);
        ctx.send_to(7, 99);
        ctx.vote_to_halt();
        assert!(ctx.halted());
        assert_eq!(ctx.take_outbox(), vec![(7, 99)]);
        assert!(ctx.take_outbox().is_empty());
        ctx.un_halt();
        assert!(!ctx.halted());
    }
}
