//! The vertex-centric model, layered over the partition-centric one.
//!
//! §3.3: "Our framework supports both the vertex-centric and
//! partition-centric models." The partition-centric model is the
//! optimized native path; this module provides the classic
//! Pregel-style per-vertex API for algorithms written in that style,
//! implemented as a [`PartitionProgram`] adapter: one partition-level
//! superstep executes `compute` for every active local vertex, routes
//! `send_to` messages through the partition outbox, and maintains the
//! per-vertex halt state (a halted vertex reactivates when a message
//! arrives — standard Pregel semantics).
//!
//! Because a partition-level superstep serves *all* its vertices at
//! once, the adapter also demonstrates the paper's observation that
//! the partition-centric model "generally requires fewer supersteps to
//! converge compared to the vertex-centric model": a partition program
//! can chase local chains within one superstep (see
//! [`crate::traverse`]), while a vertex program needs one superstep
//! per hop.

use crate::engine::DistributedEngine;
use crate::pcm::{PartitionCtx, PartitionProgram};
use cgraph_graph::{Bitmap, VertexId};
use std::collections::HashMap;

/// Per-vertex view handed to [`VertexProgram::compute`].
pub struct VertexScope<'a, 'b> {
    ctx: &'a mut PartitionCtx<'b>,
    halt: bool,
    aggregate: u64,
    contribution: &'a mut u64,
}

impl VertexScope<'_, '_> {
    /// Sends `msg` to any vertex by unique ID (delivered next
    /// superstep).
    pub fn send_to(&mut self, destination: VertexId, msg: u64) {
        self.ctx.send_to(destination, msg);
    }

    /// This vertex votes to halt; it reactivates if a message arrives.
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }

    /// Current superstep (1-based; vertices are first computed at 1).
    pub fn superstep(&self) -> u64 {
        self.ctx.superstep()
    }

    /// Out-neighbours of a (local) vertex.
    pub fn out_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.ctx.out_neighbors(v)
    }

    /// Weighted out-neighbours of a (local) vertex.
    pub fn out_neighbors_weighted(&self, v: VertexId) -> Vec<(VertexId, f32)> {
        self.ctx.out_neighbors_weighted(v)
    }

    /// Global vertex count.
    pub fn num_all_vertices(&self) -> u64 {
        self.ctx.num_all_vertices()
    }

    /// The global aggregate (wrapping sum of every vertex's
    /// [`VertexScope::aggregate`] contributions) from the *previous*
    /// superstep — the classic Pregel aggregator, computed for free on
    /// the superstep barrier. Zero during superstep 1.
    pub fn global_aggregate(&self) -> u64 {
        self.aggregate
    }

    /// Adds `value` to this superstep's global aggregate (visible to
    /// every vertex next superstep).
    pub fn aggregate(&mut self, value: u64) {
        *self.contribution = self.contribution.wrapping_add(value);
    }
}

/// A Pregel-style vertex program.
pub trait VertexProgram: Send + Sync {
    /// Per-vertex state.
    type Value: Clone + Send;

    /// Initial value of vertex `v`.
    fn init(&self, v: VertexId) -> Self::Value;

    /// Called for every active vertex each superstep (superstep 1 runs
    /// on all vertices with no messages). Mutate `value`, send
    /// messages, and/or vote to halt through `scope`.
    fn compute(
        &self,
        scope: &mut VertexScope<'_, '_>,
        v: VertexId,
        value: &mut Self::Value,
        messages: &[u64],
    );
}

/// Adapter: a vertex program executed by the partition-centric runtime.
struct VcmAdapter<'p, P: VertexProgram> {
    program: &'p P,
    values: Vec<P::Value>,
    active: Bitmap,
    base: VertexId,
    /// Global aggregate published by the previous superstep.
    aggregate: u64,
    /// This partition's contribution for the current superstep.
    contribution: u64,
}

impl<P: VertexProgram> VcmAdapter<'_, P> {
    fn run_vertex(
        program: &P,
        ctx: &mut PartitionCtx<'_>,
        v: VertexId,
        value: &mut P::Value,
        msgs: &[u64],
        aggregate: u64,
        contribution: &mut u64,
    ) -> bool {
        let mut scope = VertexScope { ctx, halt: false, aggregate, contribution };
        program.compute(&mut scope, v, value, msgs);
        !scope.halt
    }
}

impl<P: VertexProgram> PartitionProgram for VcmAdapter<'_, P> {
    type Out = Vec<P::Value>;

    fn init(&mut self, ctx: &mut PartitionCtx<'_>) {
        self.base = ctx.shard().local_range().start;
        let n = ctx.shard().num_local();
        self.values = ctx.local_vertices().map(|v| self.program.init(v)).collect();
        self.active = Bitmap::new(n);
        for i in 0..n {
            self.active.set(i);
        }
        // Superstep 1 (all vertices, no messages) runs inside the
        // first compute() call; here we only seed state.
    }

    fn compute(&mut self, ctx: &mut PartitionCtx<'_>, incoming: &[(VertexId, u64)]) {
        // Group inbound messages by local vertex.
        let mut inbox: HashMap<VertexId, Vec<u64>> = HashMap::new();
        for &(v, m) in incoming {
            inbox.entry(v).or_default().push(m);
        }
        let first = ctx.superstep() == 1;
        let n = self.values.len();
        let empty: Vec<u64> = Vec::new();
        let mut any_active = false;
        for l in 0..n {
            let v = self.base + l as VertexId;
            let msgs = inbox.get(&v);
            let runs = first || self.active.get(l) || msgs.is_some();
            if !runs {
                continue;
            }
            let stays_active = Self::run_vertex(
                self.program,
                ctx,
                v,
                &mut self.values[l],
                msgs.unwrap_or(&empty),
                self.aggregate,
                &mut self.contribution,
            );
            if stays_active {
                self.active.set(l);
                any_active = true;
            } else {
                self.active.clear(l);
            }
        }
        if !any_active {
            ctx.vote_to_halt();
        }
    }

    fn finish(self, _ctx: &PartitionCtx<'_>) -> Vec<P::Value> {
        self.values
    }

    fn aggregate_contribution(&mut self) -> u64 {
        std::mem::take(&mut self.contribution)
    }

    fn receive_aggregate(&mut self, aggregate: u64) {
        self.aggregate = aggregate;
    }
}

impl DistributedEngine {
    /// Runs a Pregel-style vertex program to global termination and
    /// returns every vertex's final value, indexed by global ID.
    pub fn run_vertex_program<P: VertexProgram>(&self, program: &P) -> Vec<P::Value> {
        let outs = self.run_program(|_| VcmAdapter {
            program,
            values: Vec::new(),
            active: Bitmap::new(0),
            base: 0,
            aggregate: 0,
            contribution: 0,
        });
        let mut values: Vec<P::Value> = Vec::with_capacity(self.num_vertices() as usize);
        for local in outs {
            values.extend(local);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use cgraph_graph::EdgeList;

    /// Vertex-centric BFS depth: source starts at 0, everyone else ∞;
    /// on improvement, broadcast depth+1 to out-neighbours.
    struct VcBfs {
        source: VertexId,
    }

    impl VertexProgram for VcBfs {
        type Value = u64;

        fn init(&self, _v: VertexId) -> u64 {
            u64::MAX
        }

        fn compute(
            &self,
            scope: &mut VertexScope<'_, '_>,
            v: VertexId,
            value: &mut u64,
            messages: &[u64],
        ) {
            let proposal = if scope.superstep() == 1 && v == self.source {
                Some(0)
            } else {
                messages.iter().min().copied()
            };
            if let Some(d) = proposal {
                if d < *value {
                    *value = d;
                    for t in scope.out_neighbors(v) {
                        scope.send_to(t, d + 1);
                    }
                }
            }
            scope.vote_to_halt();
        }
    }

    /// Max-label propagation: every vertex floods the largest label it
    /// has seen; at the fixed point every vertex in a weakly-reachable-
    /// forward component holds the max reachable label.
    struct MaxFlood;

    impl VertexProgram for MaxFlood {
        type Value = u64;

        fn init(&self, v: VertexId) -> u64 {
            v
        }

        fn compute(
            &self,
            scope: &mut VertexScope<'_, '_>,
            v: VertexId,
            value: &mut u64,
            messages: &[u64],
        ) {
            let best = messages.iter().copied().max().unwrap_or(0).max(*value);
            if best > *value || scope.superstep() == 1 {
                *value = best;
                for t in scope.out_neighbors(v) {
                    scope.send_to(t, best);
                }
            }
            scope.vote_to_halt();
        }
    }

    fn ring(n: u64) -> EdgeList {
        (0..n).map(|v| (v, (v + 1) % n)).collect()
    }

    #[test]
    fn vertex_bfs_depths_on_ring() {
        let g = ring(12);
        let e = DistributedEngine::new(&g, EngineConfig::new(3));
        let depths = e.run_vertex_program(&VcBfs { source: 4 });
        for v in 0..12u64 {
            assert_eq!(depths[v as usize], (v + 12 - 4) % 12, "vertex {v}");
        }
    }

    #[test]
    fn vertex_bfs_matches_engine_bfs_levels() {
        let raw = cgraph_gen::graph500(8, 6, 77);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&raw);
        let g = b.build().edges;
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let depths = e.run_vertex_program(&VcBfs { source: 3 });
        let reached = depths.iter().filter(|&&d| d != u64::MAX).count() as u64;
        let expect = e.run_traversal_batch(&[3], &[u32::MAX]).unwrap().per_lane_visited[0];
        assert_eq!(reached, expect);
        // Depth histogram must match the batch's per-level counts.
        let batch = e.run_traversal_batch(&[3], &[u32::MAX]).unwrap();
        for (level, counts) in batch.per_level.iter().enumerate() {
            let vc = depths.iter().filter(|&&d| d == level as u64).count() as u64;
            assert_eq!(vc, counts[0], "level {level}");
        }
    }

    #[test]
    fn max_flood_reaches_cycle_fixed_point() {
        let g = ring(9);
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let labels = e.run_vertex_program(&MaxFlood);
        // On a cycle every vertex reaches every other: all hold 8.
        assert!(labels.iter().all(|&l| l == 8), "{labels:?}");
    }

    /// Counts, through the aggregator, how many vertices changed value
    /// last superstep; vertices keep running until the global count
    /// drops to zero, then record the final aggregate in their value.
    struct AggregatedConvergence;

    impl VertexProgram for AggregatedConvergence {
        type Value = u64;

        fn init(&self, v: VertexId) -> u64 {
            v
        }

        fn compute(
            &self,
            scope: &mut VertexScope<'_, '_>,
            v: VertexId,
            value: &mut u64,
            messages: &[u64],
        ) {
            // Min-label flood, reporting changes into the aggregator.
            let best = messages.iter().copied().min().unwrap_or(u64::MAX).min(*value);
            if best < *value || scope.superstep() == 1 {
                *value = best;
                scope.aggregate(1); // I changed (or initialised)
                for t in scope.out_neighbors(v) {
                    scope.send_to(t, best);
                }
            }
            scope.vote_to_halt();
        }
    }

    #[test]
    fn aggregator_counts_global_changes() {
        // Ring of 6 over 2 machines: superstep 1 initialises all 6
        // vertices, so the aggregate visible at superstep 2 must be 6 —
        // on BOTH machines (it is global, not local).
        let g: EdgeList = (0..6u64).map(|v| (v, (v + 1) % 6)).collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(2));

        struct ProbeAggregate;
        impl VertexProgram for ProbeAggregate {
            type Value = u64;
            fn init(&self, _v: VertexId) -> u64 {
                0
            }
            fn compute(
                &self,
                scope: &mut VertexScope<'_, '_>,
                v: VertexId,
                value: &mut u64,
                _messages: &[u64],
            ) {
                match scope.superstep() {
                    1 => {
                        scope.aggregate(1);
                        // Stay alive into superstep 2 by self-messaging.
                        scope.send_to(v, 0);
                    }
                    2 => *value = scope.global_aggregate(),
                    _ => {}
                }
                scope.vote_to_halt();
            }
        }
        let values = e.run_vertex_program(&ProbeAggregate);
        assert_eq!(values, vec![6; 6], "global aggregate visible everywhere");
    }

    #[test]
    fn aggregated_min_label_converges() {
        let g: EdgeList = (0..9u64).map(|v| (v, (v + 1) % 9)).collect();
        let e = DistributedEngine::new(&g, EngineConfig::new(3));
        let labels = e.run_vertex_program(&AggregatedConvergence);
        assert!(labels.iter().all(|&l| l == 0), "{labels:?}");
    }

    #[test]
    fn machine_count_invariance() {
        let raw = cgraph_gen::graph500(7, 5, 13);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&raw);
        let g = b.build().edges;
        let d1 = DistributedEngine::new(&g, EngineConfig::new(1))
            .run_vertex_program(&VcBfs { source: 0 });
        let d4 = DistributedEngine::new(&g, EngineConfig::new(4))
            .run_vertex_program(&VcBfs { source: 0 });
        assert_eq!(d1, d4);
    }
}
