//! The reachability-index contract between the query path and the
//! index tier.
//!
//! `cgraph-index` (the builder crate) depends on `cgraph-core`, not
//! the other way round — this module is the inversion point: the
//! service and scheduler consume a [`ReachIndex`] through the traits
//! here, and the engine executes the concrete [`PrunePlan`] an index
//! derives for a batch. See `INDEXING.md` for the full design
//! contract (construction algorithm, epoch-invalidation protocol, and
//! the soundness argument the pruning rule rests on).
//!
//! Two answer paths, one contract:
//!
//! * **Index-only answers** — [`ReachIndex::answer`] returns the exact
//!   `(visited, per_level)` a traversal would compute, or `None` when
//!   the index cannot answer exactly. Callers may substitute an index
//!   answer for a traversal answer *only* when it is `Some`, so the
//!   two paths stay bit-identical by construction.
//! * **Superstep pruning** — [`ReachIndex::prune_plan`] compiles
//!   per-lane, per-partition level-set masks into a [`PrunePlan`];
//!   the engine consults it each superstep to suppress frontier
//!   deliveries that are provably state no-ops (every target vertex
//!   already visited at a smaller level). Pruning never changes
//!   visited state, so answers — and recovery replays — are
//!   unaffected.

use crate::engine::{DistributedEngine, EngineError};
use cgraph_graph::{LaneMask, LaneWidth, VertexId};
use std::sync::Arc;

/// Construction knobs for the reachability index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexConfig {
    /// Hop budget of the per-source distance sketches. Clamped to
    /// `1..=`[`cgraph_graph::MAX_EXACT_LEVEL`] (the level-set masks
    /// encode exact levels up to 62; the build BFS runs one hop past
    /// the budget to detect completion).
    pub hops: u32,
    /// Cap on indexed boundary sources; the highest-out-degree
    /// boundary vertices are kept. Bounds build time and resident
    /// label bytes on boundary-heavy partitionings.
    pub max_sources: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self { hops: 16, max_sources: 1024 }
    }
}

impl IndexConfig {
    /// The effective hop budget: `hops` clamped to the exactly
    /// representable level range.
    pub fn effective_hops(&self) -> u32 {
        self.hops.clamp(1, cgraph_graph::MAX_EXACT_LEVEL)
    }
}

/// An exact index-only answer: the same shape
/// [`BatchResult`](crate::engine::BatchResult) reports per lane, with
/// `per_level` trimmed of trailing zero levels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexAnswer {
    /// Distinct vertices reached (source included).
    pub visited: u64,
    /// Vertices first reached per hop; `per_level[0] == 1`.
    pub per_level: Vec<u64>,
}

/// A compiled pruning schedule for one traversal batch: per lane, the
/// indexed source's per-partition level-set masks (or `None` for
/// lanes whose source the index does not cover — those lanes are
/// never pruned).
///
/// Mask semantics follow [`cgraph_graph::PartitionReach`]: bit `d` of
/// a lane's mask for partition `q` means "partition `q` gains a
/// first-visited vertex at distance exactly `d`"; bits at and above
/// the build horizon saturate to 1 for incomplete sketches. A
/// frontier delivery landing at level `d` is kept iff `d >= 63` or
/// bit `d` is set.
#[derive(Clone, Debug, Default)]
pub struct PrunePlan {
    num_partitions: usize,
    /// `lane_rows[lane]` = per-partition masks for that lane's source.
    lane_rows: Vec<Option<Vec<u64>>>,
}

impl PrunePlan {
    /// An empty plan for `lanes` lanes over `num_partitions`
    /// partitions (no lane covered yet).
    pub fn new(num_partitions: usize, lanes: usize) -> Self {
        Self { num_partitions, lane_rows: vec![None; lanes] }
    }

    /// Installs the per-partition masks for `lane` (its source is
    /// indexed). `masks.len()` must equal the partition count.
    pub fn set_lane(&mut self, lane: usize, masks: Vec<u64>) {
        debug_assert_eq!(masks.len(), self.num_partitions);
        self.lane_rows[lane] = Some(masks);
    }

    /// Number of partitions each lane row covers.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of lanes the plan can actually prune.
    pub fn covered_lanes(&self) -> usize {
        self.lane_rows.iter().filter(|r| r.is_some()).count()
    }

    /// True when no lane is covered — the engine skips pruning
    /// entirely.
    pub fn is_empty(&self) -> bool {
        self.covered_lanes() == 0
    }

    /// The per-partition keep masks for deliveries landing at BFS
    /// level `level`: bit `lane` of `keep[q]` is set when that lane's
    /// frontier bits may still need to reach partition `q`. Uncovered
    /// lanes are always kept.
    pub fn keep_masks(&self, level: u32, width: LaneWidth) -> Vec<LaneMask> {
        let all = LaneMask::all(width.bits());
        (0..self.num_partitions)
            .map(|q| {
                let mut drop = LaneMask::zero(width);
                for (lane, row) in self.lane_rows.iter().enumerate() {
                    if let Some(masks) = row {
                        let keep = level >= 63 || (masks[q] >> level) & 1 == 1;
                        if !keep {
                            drop.set(lane);
                        }
                    }
                }
                all.and_not(&drop)
            })
            .collect()
    }
}

/// An immutable reachability index over one graph epoch.
///
/// All methods are read-only and thread-safe; the service swaps whole
/// index values at commit fences (never edits one in place), exactly
/// like engine snapshots.
pub trait ReachIndex: Send + Sync {
    /// The graph epoch this index was built against. Consumers must
    /// fence: consult the index only when this equals the engine's
    /// current epoch.
    fn epoch(&self) -> u64;

    /// The exact `k`-hop answer for `source`, or `None` when the
    /// index cannot answer exactly (source not indexed, or `k`
    /// exceeds an incomplete sketch's horizon). A `Some` answer is
    /// bit-identical to what a traversal would return.
    fn answer(&self, source: VertexId, k: u32) -> Option<IndexAnswer>;

    /// Compiles a pruning plan for a batch with the given per-lane
    /// sources. Returns `None` when no lane's source is indexed.
    fn prune_plan(&self, sources: &[VertexId]) -> Option<PrunePlan>;

    /// Boundary-to-boundary reachability through the condensed
    /// boundary graph: `Some(true)` when the 2-hop labels prove a
    /// path, `Some(false)` when `u`'s sketch is complete (so absence
    /// of a label is a proof of unreachability), `None` when the
    /// index cannot decide.
    fn reaches(&self, u: VertexId, v: VertexId) -> Option<bool>;

    /// Resident bytes across sketches, masks, and labels.
    fn size_bytes(&self) -> usize;

    /// Number of indexed sources.
    fn num_sources(&self) -> usize;
}

/// Builds a [`ReachIndex`] for an engine value. The service invokes
/// this at startup and inside every commit fence (and after graceful
/// degradation, which changes the partitioning), always on the
/// dispatcher thread — implementations may run traversals on the
/// engine but must not retain it.
pub trait IndexBuilder: Send + Sync {
    /// Builds an index for `engine`'s current epoch and partitioning.
    fn build(&self, engine: &DistributedEngine) -> Result<Arc<dyn ReachIndex>, EngineError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_masks_follow_level_sets() {
        // 2 partitions, 3 lanes; lane 0 indexed with gains at levels
        // {1} in q0 and {2} in q1; lane 2 indexed, incomplete past
        // level 1 (saturated high bits); lane 1 uncovered.
        let mut plan = PrunePlan::new(2, 3);
        plan.set_lane(0, vec![1 << 1, 1 << 2]);
        plan.set_lane(2, vec![(1 << 1) | (u64::MAX << 2), u64::MAX << 2]);
        assert_eq!(plan.covered_lanes(), 2);
        assert!(!plan.is_empty());
        let width = LaneWidth::for_lanes(3);
        let keep1 = plan.keep_masks(1, width);
        // Level 1: q0 keeps lanes 0 (gain) , 1 (uncovered), 2 (gain).
        assert!(keep1[0].get(0) && keep1[0].get(1) && keep1[0].get(2));
        // q1: lane 0 has no gain at 1, lane 2's mask bit 1 unset.
        assert!(!keep1[1].get(0) && keep1[1].get(1) && !keep1[1].get(2));
        let keep5 = plan.keep_masks(5, width);
        // Level 5: lane 0 complete (drop both), lane 2 saturated (keep).
        assert!(!keep5[0].get(0) && keep5[0].get(2));
        // Representable ceiling: everything kept at level >= 63.
        let keep63 = plan.keep_masks(63, width);
        assert!(keep63[0].get(0) && keep63[1].get(0));
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan = PrunePlan::new(4, 8);
        assert!(plan.is_empty());
        assert_eq!(plan.num_partitions(), 4);
        // All lanes kept everywhere.
        let keep = plan.keep_masks(3, LaneWidth::for_lanes(8));
        assert!(keep.iter().all(|m| (0..8).all(|l| m.get(l))));
    }

    #[test]
    fn config_clamps_hops() {
        assert_eq!(IndexConfig::default().effective_hops(), 16);
        assert_eq!(IndexConfig { hops: 0, max_sources: 1 }.effective_hops(), 1);
        assert_eq!(IndexConfig { hops: 400, max_sources: 1 }.effective_hops(), 62);
    }
}
