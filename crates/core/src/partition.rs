//! Range-based graph partitioning (§3.1).
//!
//! "Vertices are assigned to different partitions based on vertex ID …
//! Each partition contains a continuous range of vertices with all
//! associated in/out edges and subgraph properties. To balance the
//! workload, we optimize each partition to contain a similar number of
//! edges."
//!
//! [`RangePartition`] computes the `p` contiguous ranges so that each
//! range carries ≈ |E|/p out-edges, and answers the two queries every
//! hot path needs: *who owns vertex v* (binary search over `p ≤ 9`
//! boundaries — effectively free) and *global ↔ local* translation.

use cgraph_graph::types::{PartitionId, VertexRange};
use cgraph_graph::{Edge, VertexId};

/// The global partitioning map shared (read-only) by every machine.
///
/// ```
/// use cgraph_core::RangePartition;
/// // 10 vertices, vertex 0 owns 90 of 99 edges: it gets its own range.
/// let mut degrees = vec![1u64; 10];
/// degrees[0] = 90;
/// let p = RangePartition::by_edges(10, &degrees, 3);
/// assert_eq!(p.owner(0), 0);
/// assert_eq!(p.range(0).len(), 1);
/// assert_eq!(p.num_partitions(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangePartition {
    ranges: Vec<VertexRange>,
    num_vertices: u64,
}

impl RangePartition {
    /// Splits `num_vertices` vertices into `p` contiguous ranges, each
    /// carrying a similar number of out-edges. `degrees[v]` is the
    /// out-degree of `v` (length must equal `num_vertices`).
    pub fn by_edges(num_vertices: u64, degrees: &[u64], p: usize) -> Self {
        assert!(p > 0);
        assert_eq!(degrees.len() as u64, num_vertices);
        let total: u64 = degrees.iter().sum();
        let mut ranges = Vec::with_capacity(p);
        let mut start = 0u64;
        let mut remaining_edges = total;
        for i in 0..p {
            if i == p - 1 {
                ranges.push(VertexRange::new(start, num_vertices));
                break;
            }
            let remaining_parts = (p - i) as u64;
            // Re-balance the target over what's left so rounding errors
            // don't starve the last partitions.
            let target = remaining_edges.div_ceil(remaining_parts);
            // Leave at least one vertex per remaining partition where
            // the universe allows it.
            let max_end = num_vertices.saturating_sub(remaining_parts - 1).max(start);
            let mut end = start;
            let mut acc = 0u64;
            while end < max_end && (end == start || acc < target) {
                acc += degrees[end as usize];
                end += 1;
            }
            remaining_edges -= acc.min(remaining_edges);
            ranges.push(VertexRange::new(start, end));
            start = end;
        }
        Self { ranges, num_vertices }
    }

    /// Computes the partition directly from an edge slice, balancing
    /// by out-degree.
    pub fn from_edges(num_vertices: u64, edges: &[Edge], p: usize) -> Self {
        let mut degrees = vec![0u64; num_vertices as usize];
        for e in edges {
            degrees[e.src as usize] += 1;
        }
        Self::by_edges(num_vertices, &degrees, p)
    }

    /// Computes the partition balancing by *total* (in + out) degree.
    /// Each shard stores both edge directions (§3.1 stores "all
    /// associated in/out edges"), so total stored edges — and the mixed
    /// traversal + gather workload — balance best on in+out mass.
    pub fn from_edges_total_degree(num_vertices: u64, edges: &[Edge], p: usize) -> Self {
        let mut degrees = vec![0u64; num_vertices as usize];
        for e in edges {
            degrees[e.src as usize] += 1;
            degrees[e.dst as usize] += 1;
        }
        Self::by_edges(num_vertices, &degrees, p)
    }

    /// Splits evenly by vertex count (ignores degrees) — the naive
    /// baseline partitioner for comparisons and tests.
    pub fn by_vertices(num_vertices: u64, p: usize) -> Self {
        assert!(p > 0);
        let degrees = vec![1u64; num_vertices as usize];
        Self::by_edges(num_vertices, &degrees, p)
    }

    /// Rebuilds a partition from previously computed ranges — the
    /// restore path of the durability plane, which must reproduce the
    /// *original* partition boundaries (a snapshot's shards are keyed
    /// by them) rather than re-balance over the recovered edges.
    ///
    /// The ranges must be non-empty overall, contiguous from 0, and
    /// non-overlapping; panics otherwise (a snapshot that decodes but
    /// carries an inconsistent partition map is corrupt).
    pub fn from_ranges(ranges: Vec<VertexRange>) -> Self {
        assert!(!ranges.is_empty(), "partition needs at least one range");
        assert_eq!(ranges[0].start, 0, "first range must start at vertex 0");
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        let num_vertices = ranges.last().unwrap().end;
        Self { ranges, num_vertices }
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.ranges.len()
    }

    /// Total vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// The vertex range of partition `i`.
    #[inline]
    pub fn range(&self, i: PartitionId) -> VertexRange {
        self.ranges[i]
    }

    /// All ranges in order.
    #[inline]
    pub fn ranges(&self) -> &[VertexRange] {
        &self.ranges
    }

    /// The partition that owns vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> PartitionId {
        debug_assert!(v < self.num_vertices, "vertex {v} out of range");
        // partition_point returns the first range with end > v.
        self.ranges.partition_point(|r| r.end <= v)
    }

    /// True when partition `i` owns `v`.
    #[inline]
    pub fn is_local(&self, i: PartitionId, v: VertexId) -> bool {
        self.ranges[i].contains(v)
    }

    /// Translates a global ID to the owner-local offset.
    #[inline]
    pub fn to_local(&self, v: VertexId) -> (PartitionId, u32) {
        let owner = self.owner(v);
        (owner, self.ranges[owner].to_local(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_vertices_contiguously() {
        let degrees = vec![3u64, 1, 0, 7, 2, 2, 5, 0, 1, 3];
        let p = RangePartition::by_edges(10, &degrees, 3);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.range(0).start, 0);
        assert_eq!(p.ranges().last().unwrap().end, 10);
        for w in p.ranges().windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn balances_edges_not_vertices() {
        // One hub with 90 edges then 9 vertices with 1 edge each: the
        // hub should get its own partition.
        let mut degrees = vec![1u64; 10];
        degrees[0] = 90;
        let p = RangePartition::by_edges(10, &degrees, 3);
        assert_eq!(p.range(0), VertexRange::new(0, 1), "{:?}", p.ranges());
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let degrees = vec![2u64; 100];
        let p = RangePartition::by_edges(100, &degrees, 7);
        for v in 0..100u64 {
            let o = p.owner(v);
            assert!(p.range(o).contains(v));
            assert!(p.is_local(o, v));
            let (o2, l) = p.to_local(v);
            assert_eq!(o, o2);
            assert_eq!(p.range(o).to_global(l), v);
        }
    }

    #[test]
    fn more_partitions_than_heavy_vertices() {
        // All mass on two vertices, but p=4: every partition must get
        // at least one vertex and cover everything.
        let degrees = vec![50u64, 50, 0, 0, 0, 0];
        let p = RangePartition::by_edges(6, &degrees, 4);
        assert_eq!(p.num_partitions(), 4);
        assert_eq!(p.ranges().last().unwrap().end, 6);
        assert!(p.ranges().iter().all(|r| !r.is_empty() || r.is_empty()));
        let covered: u64 = p.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(covered, 6);
    }

    #[test]
    fn single_partition() {
        let p = RangePartition::by_vertices(5, 1);
        assert_eq!(p.owner(4), 0);
        assert_eq!(p.range(0), VertexRange::new(0, 5));
    }

    #[test]
    fn edge_balance_quality() {
        // Uniform degrees: partitions should each carry ≈ E/p edges
        // within a factor 1.5.
        let degrees = vec![4u64; 1000];
        let p = RangePartition::by_edges(1000, &degrees, 9);
        let per: Vec<u64> =
            p.ranges().iter().map(|r| r.iter().map(|v| degrees[v as usize]).sum()).collect();
        let target = 4000 / 9;
        for (i, e) in per.iter().enumerate() {
            assert!(
                (*e as f64) < 1.5 * target as f64 && (*e as f64) > 0.5 * target as f64,
                "partition {i} has {e} edges (target {target}): {per:?}"
            );
        }
    }

    #[test]
    fn from_edges_counts_out_degrees() {
        let edges = vec![Edge::unweighted(0, 1), Edge::unweighted(0, 2), Edge::unweighted(3, 0)];
        let p = RangePartition::from_edges(4, &edges, 2);
        // vertex 0 carries 2 of 3 edges → partition 0 should be small.
        assert!(p.range(0).len() <= 2, "{:?}", p.ranges());
    }
}
