//! The per-machine subgraph shard (§3, Fig. 2).
//!
//! "Each subgraph shard contains a range of vertices called local
//! vertices … Each subgraph shard stores all the associated in/out
//! edges as well as the property of the subgraph." Out-edges are kept
//! in the edge-set blocked layout (for traversal scans); in-edges in
//! CSC over local destinations (for GAS gathers, so "all edges of a
//! vertex are local" in the gather phase). Boundary vertices — remote
//! vertices reachable by a local out-edge — are precomputed for
//! boundary-traffic accounting.

use crate::partition::RangePartition;
use cgraph_graph::types::{PartitionId, VertexRange};
use cgraph_graph::{ConsolidationPolicy, Csc, Edge, EdgeSetGraph, VertexId};

/// One machine's shard: local vertex range plus all associated edges.
#[derive(Debug)]
pub struct Shard {
    id: PartitionId,
    local: VertexRange,
    num_global_vertices: u64,
    /// Out-edges of local vertices, edge-set blocked (rows = local
    /// range, cols = all vertices).
    out_sets: EdgeSetGraph,
    /// In-edges of local vertices (built only when GAS programs run).
    in_edges: Option<Csc>,
    /// Sorted global IDs of boundary vertices: remote endpoints of
    /// local out-edges.
    boundary: Vec<VertexId>,
    /// Global out-degree of every vertex (shared knowledge each machine
    /// keeps for GAS scatter normalisation).
    global_out_degrees: Vec<u32>,
    /// Groups of edge-set indices with pairwise-disjoint column ranges
    /// inside each group — tiles in one group can be processed in
    /// parallel without write conflicts on destination state.
    dst_disjoint_groups: Vec<Vec<usize>>,
}

impl Shard {
    /// Builds the shard for partition `id` from the full edge list.
    ///
    /// `edges` is the *global* edge list; the shard keeps out-edges
    /// whose source is local and (optionally) in-edges whose
    /// destination is local.
    pub fn build(
        id: PartitionId,
        partition: &RangePartition,
        edges: &[Edge],
        policy: ConsolidationPolicy,
        build_in_edges: bool,
    ) -> Self {
        let local = partition.range(id);
        let n = partition.num_vertices();

        let mut out_edges: Vec<Edge> = Vec::new();
        let mut in_local: Vec<Edge> = Vec::new();
        let mut global_out_degrees = vec![0u32; n as usize];
        for e in edges {
            global_out_degrees[e.src as usize] += 1;
            if local.contains(e.src) {
                out_edges.push(*e);
            }
            if build_in_edges && local.contains(e.dst) {
                in_local.push(*e);
            }
        }

        let mut boundary: Vec<VertexId> =
            out_edges.iter().map(|e| e.dst).filter(|&d| !local.contains(d)).collect();
        boundary.sort_unstable();
        boundary.dedup();

        let out_sets = EdgeSetGraph::build(&out_edges, local, VertexRange::new(0, n), policy);

        // CSC over the full vertex space, but only local-dst edges are
        // inserted — in_neighbors(v) is meaningful for local v only.
        let in_edges = build_in_edges.then(|| Csc::from_edges(n, &in_local));

        let dst_disjoint_groups = Self::compute_disjoint_groups(&out_sets);

        Self {
            id,
            local,
            num_global_vertices: n,
            out_sets,
            in_edges,
            boundary,
            global_out_degrees,
            dst_disjoint_groups,
        }
    }

    /// Greedily clusters tiles into groups whose column ranges are
    /// pairwise disjoint, enabling race-free parallel destination
    /// updates within a group.
    fn compute_disjoint_groups(sets: &EdgeSetGraph) -> Vec<Vec<usize>> {
        type Group = (Vec<(u64, u64)>, Vec<usize>);
        let mut groups: Vec<Group> = Vec::new();
        for (i, s) in sets.sets().iter().enumerate() {
            let span = (s.col_range.start, s.col_range.end);
            let slot = groups
                .iter_mut()
                .find(|(spans, _)| spans.iter().all(|&(a, b)| span.1 <= a || span.0 >= b));
            match slot {
                Some((spans, idxs)) => {
                    spans.push(span);
                    idxs.push(i);
                }
                None => groups.push((vec![span], vec![i])),
            }
        }
        groups.into_iter().map(|(_, idxs)| idxs).collect()
    }

    /// Partition ID of this shard.
    #[inline]
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Local vertex range.
    #[inline]
    pub fn local_range(&self) -> VertexRange {
        self.local
    }

    /// Number of local vertices.
    #[inline]
    pub fn num_local(&self) -> usize {
        self.local.len() as usize
    }

    /// Number of vertices in the whole graph.
    #[inline]
    pub fn num_global_vertices(&self) -> u64 {
        self.num_global_vertices
    }

    /// True when `v` is a local vertex of this shard.
    #[inline]
    pub fn is_local(&self, v: VertexId) -> bool {
        self.local.contains(v)
    }

    /// True when `v` is a boundary vertex of this shard (remote, but
    /// adjacent to a local vertex).
    pub fn is_boundary(&self, v: VertexId) -> bool {
        self.boundary.binary_search(&v).is_ok()
    }

    /// Global-to-local index of a local vertex.
    #[inline]
    pub fn to_local(&self, v: VertexId) -> u32 {
        self.local.to_local(v)
    }

    /// Local-to-global ID.
    #[inline]
    pub fn to_global(&self, l: u32) -> VertexId {
        self.local.to_global(l)
    }

    /// The blocked out-edge view.
    #[inline]
    pub fn out_sets(&self) -> &EdgeSetGraph {
        &self.out_sets
    }

    /// Tile-index groups with disjoint destination ranges (parallel
    /// processing units).
    #[inline]
    pub fn dst_disjoint_groups(&self) -> &[Vec<usize>] {
        &self.dst_disjoint_groups
    }

    /// In-edges of local vertices (panics if built traversal-only).
    #[inline]
    pub fn in_edges(&self) -> &Csc {
        self.in_edges.as_ref().expect("shard built without in-edges (traversal_only)")
    }

    /// True when the CSC view exists.
    pub fn has_in_edges(&self) -> bool {
        self.in_edges.is_some()
    }

    /// Sorted boundary vertices.
    #[inline]
    pub fn boundary_vertices(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Global out-degree of any vertex (local or remote).
    #[inline]
    pub fn global_out_degree(&self, v: VertexId) -> u32 {
        self.global_out_degrees[v as usize]
    }

    /// Number of out-edges stored in this shard.
    pub fn num_out_edges(&self) -> usize {
        self.out_sets.num_edges()
    }

    /// Out-neighbours of a local vertex (collected across tiles; hot
    /// loops iterate tiles directly instead).
    pub fn out_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        debug_assert!(self.is_local(v));
        self.out_sets.out_neighbors(v)
    }

    /// Out-neighbours of a local vertex with edge weights.
    pub fn out_neighbors_weighted(&self, v: VertexId) -> Vec<(VertexId, f32)> {
        debug_assert!(self.is_local(v));
        let mut out: Vec<(VertexId, f32)> = self
            .out_sets
            .sets()
            .iter()
            .flat_map(|s| s.neighbors(v).iter().copied().zip(s.neighbor_weights(v).iter().copied()))
            .collect();
        out.sort_unstable_by_key(|a| a.0);
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.out_sets.size_bytes()
            + self.in_edges.as_ref().map_or(0, |c| c.size_bytes())
            + self.boundary.len() * 8
            + self.global_out_degrees.len() * 4
    }
}

/// Builds all `p` shards for a graph (helper used by the engine and by
/// tests; shards are independent, so this parallelises trivially — but
/// build cost is dominated by the per-shard edge scans, which rayon
/// already parallelises inside `EdgeSetGraph::build`'s sort).
pub fn build_shards(
    partition: &RangePartition,
    edges: &[Edge],
    policy: ConsolidationPolicy,
    build_in_edges: bool,
) -> Vec<Shard> {
    (0..partition.num_partitions())
        .map(|i| Shard::build(i, partition, edges, policy, build_in_edges))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::EdgeList;

    fn ring(n: u64) -> EdgeList {
        (0..n).map(|v| (v, (v + 1) % n)).collect()
    }

    #[test]
    fn shards_partition_edges_exactly() {
        let g = ring(20);
        let part = RangePartition::from_edges(20, g.edges(), 3);
        let shards = build_shards(&part, g.edges(), ConsolidationPolicy::default(), true);
        let total: usize = shards.iter().map(|s| s.num_out_edges()).sum();
        assert_eq!(total, 20);
        for s in &shards {
            for v in s.local_range().iter() {
                assert_eq!(s.out_neighbors(v), vec![(v + 1) % 20]);
            }
        }
    }

    #[test]
    fn boundary_vertices_are_remote_neighbors() {
        let g = ring(10);
        let part = RangePartition::by_vertices(10, 2);
        let shards = build_shards(&part, g.edges(), ConsolidationPolicy::default(), false);
        // shard 0 = [0,5): its only remote neighbour is 5 (from vertex 4)
        assert_eq!(shards[0].boundary_vertices(), &[5]);
        assert!(shards[0].is_boundary(5));
        assert!(!shards[0].is_boundary(3));
        // shard 1 = [5,10): remote neighbour is 0 (from vertex 9)
        assert_eq!(shards[1].boundary_vertices(), &[0]);
    }

    #[test]
    fn in_edges_cover_local_destinations() {
        let g = ring(10);
        let part = RangePartition::by_vertices(10, 2);
        let shards = build_shards(&part, g.edges(), ConsolidationPolicy::default(), true);
        // vertex 5 is local to shard 1 and has in-edge from 4
        assert_eq!(shards[1].in_edges().in_neighbors(5), &[4]);
        // shard 0 has no in-edge info for vertex 5
        assert!(shards[0].in_edges().in_neighbors(5).is_empty());
    }

    #[test]
    fn traversal_only_skips_csc() {
        let g = ring(6);
        let part = RangePartition::by_vertices(6, 2);
        let s = Shard::build(0, &part, g.edges(), ConsolidationPolicy::default(), false);
        assert!(!s.has_in_edges());
    }

    #[test]
    fn global_out_degrees_known_everywhere() {
        let mut g = ring(8);
        g.push_pair(0, 3);
        g.push_pair(0, 5);
        let part = RangePartition::by_vertices(8, 2);
        let shards = build_shards(&part, g.edges(), ConsolidationPolicy::default(), false);
        for s in &shards {
            assert_eq!(s.global_out_degree(0), 3);
            assert_eq!(s.global_out_degree(1), 1);
        }
    }

    #[test]
    fn disjoint_groups_are_disjoint_and_complete() {
        let g = ring(64);
        let part = RangePartition::by_vertices(64, 2);
        let s = Shard::build(0, &part, g.edges(), ConsolidationPolicy::grid(4), false);
        let groups = s.dst_disjoint_groups();
        let mut seen = vec![false; s.out_sets().sets().len()];
        for group in groups {
            for &i in group {
                assert!(!seen[i], "tile {i} in two groups");
                seen[i] = true;
            }
            // pairwise disjoint col ranges within the group
            for (a_pos, &a) in group.iter().enumerate() {
                for &b in &group[a_pos + 1..] {
                    let ra = s.out_sets().sets()[a].col_range;
                    let rb = s.out_sets().sets()[b].col_range;
                    assert!(ra.end <= rb.start || rb.end <= ra.start, "{ra:?} overlaps {rb:?}");
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "some tile missing from groups");
    }

    #[test]
    fn local_global_roundtrip() {
        let g = ring(10);
        let part = RangePartition::by_vertices(10, 3);
        let s = Shard::build(1, &part, g.edges(), ConsolidationPolicy::default(), false);
        for v in s.local_range().iter() {
            assert_eq!(s.to_global(s.to_local(v)), v);
        }
    }
}
