//! Query descriptors and results.
//!
//! The paper's workload unit (§4.2): "We run 100 concurrent queries …
//! with each query containing 10 source vertices", each query a k-hop
//! traversal (most experiments use k = 3; full BFS is "a special case
//! of k-hop, where k → ∞").

use cgraph_graph::VertexId;
use std::time::Duration;

/// Marker value for "unbounded hops" — full BFS.
pub const UNBOUNDED_HOPS: u32 = u32::MAX;

/// One k-hop reachability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KhopQuery {
    /// Caller-assigned identifier (unique within a submission).
    pub id: usize,
    /// Source vertices (the paper issues 10 per query; any number ≥ 1
    /// works — each source is traversed independently and the response
    /// time averaged, mirroring §4.2's methodology).
    pub sources: Vec<VertexId>,
    /// Maximum hop count `k` ([`UNBOUNDED_HOPS`] = full BFS).
    pub k: u32,
}

impl KhopQuery {
    /// Single-source k-hop query.
    pub fn single(id: usize, source: VertexId, k: u32) -> Self {
        Self { id, sources: vec![source], k }
    }

    /// Multi-source k-hop query.
    pub fn multi(id: usize, sources: Vec<VertexId>, k: u32) -> Self {
        assert!(!sources.is_empty(), "query needs at least one source");
        Self { id, sources, k }
    }

    /// Full-BFS query (k unbounded).
    pub fn bfs(id: usize, source: VertexId) -> Self {
        Self::single(id, source, UNBOUNDED_HOPS)
    }
}

/// Result of one k-hop query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// The query's caller-assigned ID.
    pub id: usize,
    /// Total distinct vertices reached (including the sources).
    pub visited: u64,
    /// Vertices first reached at each hop; `per_level[0]` counts the
    /// sources, `per_level[h]` the vertices at distance exactly `h`.
    pub per_level: Vec<u64>,
    /// End-to-end response time: queue wait + execution (what a user
    /// of the concurrent system observes — the metric of Figs. 7–13).
    pub response_time: Duration,
    /// Execution time only (excludes scheduler queue wait).
    pub exec_time: Duration,
    /// Graph epoch this answer was computed against — the snapshot the
    /// query was admitted to (a commit during execution does not change
    /// an in-flight query's answer).
    pub epoch: u64,
}

impl QueryResult {
    /// Hops actually traversed (levels beyond the sources).
    pub fn depth(&self) -> usize {
        self.per_level.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let q = KhopQuery::single(1, 42, 3);
        assert_eq!(q.sources, vec![42]);
        let b = KhopQuery::bfs(2, 7);
        assert_eq!(b.k, UNBOUNDED_HOPS);
    }

    #[test]
    #[should_panic]
    fn empty_sources_rejected() {
        KhopQuery::multi(0, vec![], 3);
    }

    #[test]
    fn depth_counts_levels_after_source() {
        let r = QueryResult {
            id: 0,
            visited: 6,
            per_level: vec![1, 2, 3],
            response_time: Duration::ZERO,
            exec_time: Duration::ZERO,
            epoch: 0,
        };
        assert_eq!(r.depth(), 2);
    }
}
