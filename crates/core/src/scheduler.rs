//! The concurrent-query front end (§3.3, §3.5).
//!
//! "Concurrent queries can be executed individually in request order,
//! or processed in batches to enable subgraph sharing among queries."
//! [`QueryScheduler`] implements both policies:
//!
//! * **Shared** (the C-Graph way): queries are exploded into their
//!   traversals, packed into lane batches up to [`MAX_LANES`] wide
//!   ("a fixed number of
//!   concurrent queries are decided based on hardware parameters"), and
//!   each batch runs as one bit-frontier pass over the shared edge-set
//!   scans at the narrowest width `W ∈ {64, 128, 256, 512}` that fits
//!   the lane count.
//! * **Serial** (the baseline way): one traversal at a time, in request
//!   order — what Gemini-style engines are reduced to.
//!
//! The scheduler enforces a memory budget: the per-batch bit state
//! costs `3 × (W/8) bytes × |V_local|` per machine — it scales
//! linearly with the batch width `W` — so when a budget is set, the
//! width steps down `512 → 256 → 128 → 64` (then lanes shrink below
//! one word) until the batch fits ("the slowdown of the framework is
//! mainly caused by resource limits, especially due to the large
//! memory footprint required for concurrent queries", §4.2).
//!
//! Response time of a query = queue wait until its batch starts + batch
//! execution — the quantity Figs. 7–13 measure; a query spanning
//! several traversals reports the mean over them (the paper's §4.2
//! methodology: "the average response time for a query is calculated
//! from the 10 subgraph traversals of each query").

use crate::engine::DistributedEngine;
use crate::index_api::ReachIndex;
use crate::query::{KhopQuery, QueryResult};
use cgraph_graph::bitmap::LANES;
use cgraph_graph::{LaneWidth, MAX_LANES};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scheduling policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Max lanes per batch (≤ [`MAX_LANES`]; rounded up to a supported
    /// batch width `W ∈ {64, 128, 256, 512}` at execution time).
    pub batch_lanes: usize,
    /// Enable subgraph sharing (batched bit traversal). When false,
    /// traversals run one by one — the ablation A2 baseline.
    pub share_subgraphs: bool,
    /// Optional cap on per-machine traversal-state bytes; shrinks the
    /// lane width when the default batch would not fit.
    pub memory_budget_bytes: Option<usize>,
    /// Account response times in *simulated cluster time* (straggler
    /// machine busy time + simulated network time) instead of wall
    /// clock. Required for machine-scaling experiments on hosts with
    /// fewer cores than simulated machines, where wall clock cannot
    /// reflect cluster parallelism.
    pub use_sim_time: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            batch_lanes: LANES,
            share_subgraphs: true,
            memory_budget_bytes: None,
            use_sim_time: false,
        }
    }
}

impl SchedulerConfig {
    /// The serial (no sharing) policy.
    pub fn serial() -> Self {
        Self { share_subgraphs: false, ..Default::default() }
    }
}

/// Schedules concurrent k-hop queries onto a [`DistributedEngine`].
///
/// ```
/// use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery,
///                   QueryScheduler, SchedulerConfig};
/// let edges: cgraph_graph::EdgeList = (0..20u64).map(|v| (v, (v + 1) % 20)).collect();
/// let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
/// let queries = vec![KhopQuery::single(0, 0, 3), KhopQuery::single(1, 10, 2)];
/// let results = QueryScheduler::new(&engine, SchedulerConfig::default())
///     .execute(&queries);
/// assert_eq!(results[0].visited, 4); // ring: k hops reach k + 1 vertices
/// assert_eq!(results[1].visited, 3);
/// ```
pub struct QueryScheduler<'e> {
    engine: &'e DistributedEngine,
    config: SchedulerConfig,
    index: Option<Arc<dyn ReachIndex>>,
}

impl<'e> QueryScheduler<'e> {
    /// Creates a scheduler over `engine`.
    pub fn new(engine: &'e DistributedEngine, config: SchedulerConfig) -> Self {
        Self { engine, config, index: None }
    }

    /// Attaches a reachability index (see `INDEXING.md`).
    ///
    /// The index is consulted at two points of [`execute`](Self::execute),
    /// and only while its [`epoch`](ReachIndex::epoch) matches the
    /// engine's — a stale index is ignored entirely:
    ///
    /// * **Index-only answers.** A traversal whose `(source, k)` the
    ///   index covers exactly ([`ReachIndex::answer`]) never enters a
    ///   batch: its visited count and level profile come straight from
    ///   the distance sketch, bit-identical to what the traversal
    ///   would have produced.
    /// * **Superstep pruning.** For traversals that do run, the
    ///   index's per-partition level-set masks
    ///   ([`ReachIndex::prune_plan`]) let the engine drop
    ///   cross-machine frontier deliveries that are provably no-ops.
    ///   Pruning never changes any answer — see the soundness
    ///   argument in `INDEXING.md`.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use cgraph_core::index_api::{IndexBuilder, IndexConfig};
    /// use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery,
    ///                   QueryScheduler, SchedulerConfig};
    /// use cgraph_index::BoundaryIndexBuilder;
    ///
    /// let edges: cgraph_graph::EdgeList = (0..6u64).map(|v| (v, v + 1)).take(5).collect();
    /// let engine = DistributedEngine::new(&edges, EngineConfig::new(2));
    /// let index = BoundaryIndexBuilder::new(IndexConfig::default()).build(&engine).unwrap();
    ///
    /// let s = index.prune_plan(&[3]).map(|_| 3).unwrap_or(4); // a boundary vertex
    /// let queries = vec![KhopQuery::single(0, s, 2), KhopQuery::single(1, 0, 3)];
    /// let plain = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);
    /// let fast = QueryScheduler::new(&engine, SchedulerConfig::default())
    ///     .with_index(index)
    ///     .execute(&queries);
    /// for (a, b) in plain.iter().zip(&fast) {
    ///     assert_eq!(a.visited, b.visited);       // bit-identical answers,
    ///     assert_eq!(a.per_level, b.per_level);   // indexed or not
    /// }
    /// ```
    pub fn with_index(mut self, index: Arc<dyn ReachIndex>) -> Self {
        self.index = Some(index);
        self
    }

    /// Lanes per batch after applying the memory budget.
    ///
    /// The per-machine bit state costs `3 × 8 × (W/64) bytes` per local
    /// vertex — three lane matrices of `W/64` words each — so it scales
    /// **linearly with the batch width `W`**, not independently of lane
    /// count as the pre-width cost model assumed. Under a budget, the
    /// width steps down through the supported set `512 → 256 → 128 →
    /// 64` until the three matrices fit; if even the single-word
    /// footprint exceeds the budget, the lane count degrades
    /// proportionally below 64 (≥ 1 lane).
    pub fn effective_lanes(&self) -> usize {
        if !self.config.share_subgraphs {
            return 1;
        }
        let want = self.config.batch_lanes.clamp(1, MAX_LANES);
        match self.config.memory_budget_bytes {
            None => want,
            Some(budget) => {
                let max_local =
                    self.engine.shards().iter().map(|s| s.num_local()).max().unwrap_or(0);
                // A live delta overlay is resident on every machine's
                // scan path, so the straggler's overlay bytes come off
                // the same per-machine budget as the batch bit state.
                let delta = self.engine.max_delta_bytes();
                let mut width = LaneWidth::for_lanes(want);
                while 3 * 8 * width.words() * max_local + delta > budget {
                    match width.narrower() {
                        Some(w) => width = w,
                        None => break,
                    }
                }
                if 3 * 8 * width.words() * max_local + delta <= budget {
                    want.min(width.bits())
                } else {
                    // Budget below even the one-word cost: degrade to
                    // the fraction of the word that fits, ≥ 1 lane.
                    let base = 3 * 8 * max_local;
                    ((want.min(LANES) * budget.saturating_sub(delta)) / base.max(1)).max(1)
                }
            }
        }
    }

    /// Executes `queries` "issued simultaneously": all are considered
    /// submitted at call time, so response times include queue wait.
    ///
    /// # Panics
    ///
    /// Every query source must lie inside the engine's vertex range;
    /// an out-of-range source panics (the streaming
    /// [`QueryService`](crate::service::QueryService) validates at
    /// admission instead).
    pub fn execute(&self, queries: &[KhopQuery]) -> Vec<QueryResult> {
        // Explode queries into (query index, source) traversals,
        // preserving request order.
        let mut traversals: Vec<(usize, u64, u32)> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            for &s in &q.sources {
                traversals.push((qi, s, q.k));
            }
        }
        let lanes = self.effective_lanes();
        let submit = Instant::now();
        // Simulated clock: advances by each batch's simulated duration.
        let mut sim_clock = Duration::ZERO;

        // Per-traversal (response, exec, visited, levels)
        let mut t_resp: Vec<Duration> = vec![Duration::ZERO; traversals.len()];
        let mut t_exec: Vec<Duration> = vec![Duration::ZERO; traversals.len()];
        let mut t_visited: Vec<u64> = vec![0; traversals.len()];
        let mut t_levels: Vec<Vec<u64>> = vec![Vec::new(); traversals.len()];

        // Index fast path: a current-epoch index answers covered
        // (source, k) pairs without traversing; only the rest batch.
        let index = self.index.as_deref().filter(|ix| ix.epoch() == self.engine.graph_epoch());
        let mut pending: Vec<usize> = Vec::with_capacity(traversals.len());
        for (i, &(_, s, k)) in traversals.iter().enumerate() {
            match index.and_then(|ix| ix.answer(s, k)) {
                Some(ans) => {
                    t_visited[i] = ans.visited;
                    t_levels[i] = ans.per_level;
                    // Answered before any batch runs: response is the
                    // (near-zero) lookup latency, zero in sim time.
                    t_resp[i] =
                        if self.config.use_sim_time { Duration::ZERO } else { submit.elapsed() };
                }
                None => pending.push(i),
            }
        }

        for chunk in pending.chunks(lanes) {
            let sources: Vec<u64> = chunk.iter().map(|&i| traversals[i].1).collect();
            let ks: Vec<u32> = chunk.iter().map(|&i| traversals[i].2).collect();
            // Indexed lanes contribute level-set masks that suppress
            // provably no-op cross-machine deliveries (INDEXING.md).
            let plan = index.and_then(|ix| ix.prune_plan(&sources));
            // Precondition: query sources lie inside the vertex range
            // and chunks respect MAX_LANES, so shape errors are bugs.
            let br = self
                .engine
                .run_traversal_batch_pruned(&sources, &ks, plan.as_ref())
                .expect("scheduler batches are shape-valid");
            let (batch_dur, batch_end) = if self.config.use_sim_time {
                let d = br.sim_exec_time();
                sim_clock += d;
                (d, sim_clock)
            } else {
                (br.exec_time, submit.elapsed())
            };
            // Within the batch, a lane finishes after a fraction of the
            // batch given by its completion point on machine 0's clock.
            let frac = |lane: usize| {
                let done = br.lane_completion[lane].min(br.exec_time);
                if br.exec_time.is_zero() {
                    1.0
                } else {
                    done.as_secs_f64() / br.exec_time.as_secs_f64()
                }
            };
            for (lane, &ti) in chunk.iter().enumerate() {
                // A traversal completes when its lane goes quiet; its
                // response spans from submission to that moment.
                let lane_done = batch_dur.mul_f64(frac(lane));
                t_resp[ti] = batch_end - (batch_dur - lane_done);
                t_exec[ti] = lane_done;
                t_visited[ti] = br.per_lane_visited[lane];
                t_levels[ti] = br.per_level.iter().map(|row| row[lane]).collect();
            }
        }

        // Fold traversals back into per-query results (one linear pass
        // to group traversal indices by query).
        let mut per_query_idxs: Vec<Vec<usize>> = vec![Vec::new(); queries.len()];
        for (i, t) in traversals.iter().enumerate() {
            per_query_idxs[t.0].push(i);
        }
        queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let idxs = std::mem::take(&mut per_query_idxs[qi]);
                let n = idxs.len() as u32;
                let response_time = idxs.iter().map(|&i| t_resp[i]).sum::<Duration>() / n.max(1);
                let exec_time = idxs.iter().map(|&i| t_exec[i]).sum::<Duration>() / n.max(1);
                let visited = idxs.iter().map(|&i| t_visited[i]).sum::<u64>();
                let levels = idxs.iter().map(|&i| t_levels[i].len()).max().unwrap_or(0);
                let mut per_level = vec![0u64; levels];
                for &i in &idxs {
                    for (h, &c) in t_levels[i].iter().enumerate() {
                        per_level[h] += c;
                    }
                }
                // Canonical level profile: a batched lane is padded to
                // its batch's depth (which depends on packing) while an
                // index answer is already trimmed — drop trailing
                // zeros so results are composition-invariant.
                while per_level.last() == Some(&0) {
                    per_level.pop();
                }
                QueryResult {
                    id: q.id,
                    visited,
                    per_level,
                    response_time,
                    exec_time,
                    epoch: self.engine.graph_epoch(),
                }
            })
            .collect()
    }

    /// Estimated per-machine bytes for one batch of the effective lane
    /// width (reported by the memory ablation): three lane matrices of
    /// `W/64` words per local vertex.
    pub fn batch_state_bytes(&self) -> usize {
        let max_local = self.engine.shards().iter().map(|s| s.num_local()).max().unwrap_or(0);
        3 * 8 * LaneWidth::for_lanes(self.effective_lanes()).words() * max_local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use cgraph_graph::EdgeList;

    fn ring_engine(n: u64, p: usize) -> DistributedEngine {
        let g: EdgeList = (0..n).map(|v| (v, (v + 1) % n)).collect();
        DistributedEngine::new(&g, EngineConfig::new(p))
    }

    #[test]
    fn shared_and_serial_agree_on_results() {
        let e = ring_engine(40, 3);
        let queries: Vec<KhopQuery> =
            (0..10).map(|i| KhopQuery::single(i, (i * 4) as u64, 3)).collect();
        let shared = QueryScheduler::new(&e, SchedulerConfig::default()).execute(&queries);
        let serial = QueryScheduler::new(&e, SchedulerConfig::serial()).execute(&queries);
        for (a, b) in shared.iter().zip(&serial) {
            assert_eq!(a.visited, b.visited);
            assert_eq!(a.per_level, b.per_level);
        }
    }

    #[test]
    fn ring_khop_counts() {
        let e = ring_engine(40, 2);
        let queries = vec![KhopQuery::single(7, 0, 5)];
        let r = QueryScheduler::new(&e, SchedulerConfig::default()).execute(&queries);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, 7);
        assert_eq!(r[0].visited, 6);
        assert_eq!(r[0].per_level, vec![1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn multi_source_query_sums_traversals() {
        let e = ring_engine(40, 2);
        let queries = vec![KhopQuery::multi(0, vec![0, 20], 2)];
        let r = QueryScheduler::new(&e, SchedulerConfig::default()).execute(&queries);
        assert_eq!(r[0].visited, 6); // two independent 3-vertex traversals
    }

    #[test]
    fn more_queries_than_lanes() {
        let e = ring_engine(256, 2);
        let queries: Vec<KhopQuery> =
            (0..100).map(|i| KhopQuery::single(i, (i * 2) as u64, 2)).collect();
        let r = QueryScheduler::new(&e, SchedulerConfig::default()).execute(&queries);
        assert_eq!(r.len(), 100);
        assert!(r.iter().all(|q| q.visited == 3));
        // Later queries waited for earlier batches: response times are
        // monotonically non-decreasing across batch boundaries.
        assert!(r[99].response_time >= r[0].exec_time);
    }

    #[test]
    fn memory_budget_narrows_lanes() {
        let e = ring_engine(1000, 2);
        let full = QueryScheduler::new(&e, SchedulerConfig::default());
        assert_eq!(full.effective_lanes(), 64);
        let tight = QueryScheduler::new(
            &e,
            SchedulerConfig {
                memory_budget_bytes: Some(full.batch_state_bytes() / 4),
                ..Default::default()
            },
        );
        let lanes = tight.effective_lanes();
        assert!((1..64).contains(&lanes), "lanes = {lanes}");
    }

    #[test]
    fn wide_batches_pack_beyond_64_lanes() {
        let e = ring_engine(600, 2);
        let wide =
            QueryScheduler::new(&e, SchedulerConfig { batch_lanes: 256, ..Default::default() });
        assert_eq!(wide.effective_lanes(), 256);
        // 150 queries fit one 256-lane batch: every lane runs together.
        let queries: Vec<KhopQuery> =
            (0..150).map(|i| KhopQuery::single(i, (i * 4) as u64, 2)).collect();
        let r = wide.execute(&queries);
        assert_eq!(r.len(), 150);
        assert!(r.iter().all(|q| q.visited == 3));
    }

    #[test]
    fn memory_budget_steps_width_down() {
        let e = ring_engine(1000, 2); // max_local = 500
        let base = 3 * 8 * 500; // one-word (W=64) footprint
                                // Budget fits two words: 256 requested lanes narrow to 128.
        let s = QueryScheduler::new(
            &e,
            SchedulerConfig {
                batch_lanes: 256,
                memory_budget_bytes: Some(2 * base),
                ..Default::default()
            },
        );
        assert_eq!(s.effective_lanes(), 128);
        assert_eq!(s.batch_state_bytes(), 2 * base);
        // Budget fits four words: the full 256 lanes stay.
        let s = QueryScheduler::new(
            &e,
            SchedulerConfig {
                batch_lanes: 256,
                memory_budget_bytes: Some(4 * base),
                ..Default::default()
            },
        );
        assert_eq!(s.effective_lanes(), 256);
    }

    #[test]
    fn serial_mode_uses_one_lane() {
        let e = ring_engine(10, 1);
        let s = QueryScheduler::new(&e, SchedulerConfig::serial());
        assert_eq!(s.effective_lanes(), 1);
    }

    #[test]
    fn stale_index_is_ignored() {
        use crate::index_api::{IndexAnswer, PrunePlan, ReachIndex};
        /// An index from a bygone epoch that would corrupt any query
        /// it actually answered.
        struct Stale;
        impl ReachIndex for Stale {
            fn epoch(&self) -> u64 {
                u64::MAX
            }
            fn answer(&self, _: u64, _: u32) -> Option<IndexAnswer> {
                Some(IndexAnswer { visited: 999_999, per_level: vec![999_999] })
            }
            fn prune_plan(&self, sources: &[u64]) -> Option<PrunePlan> {
                // Masks that would suppress *every* delivery.
                let mut plan = PrunePlan::new(2, sources.len());
                for lane in 0..sources.len() {
                    plan.set_lane(lane, vec![0; 2]);
                }
                Some(plan)
            }
            fn reaches(&self, _: u64, _: u64) -> Option<bool> {
                Some(false)
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn num_sources(&self) -> usize {
                0
            }
        }
        let e = ring_engine(40, 2);
        let queries = vec![KhopQuery::single(7, 0, 5)];
        let r = QueryScheduler::new(&e, SchedulerConfig::default())
            .with_index(std::sync::Arc::new(Stale))
            .execute(&queries);
        // The epoch fence keeps the stale index out of the query path.
        assert_eq!(r[0].visited, 6);
        assert_eq!(r[0].per_level, vec![1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn response_includes_queue_wait() {
        let e = ring_engine(300, 2);
        // 130 single-source queries → 3 batches of ≤64.
        let queries: Vec<KhopQuery> = (0..130).map(|i| KhopQuery::single(i, i as u64, 3)).collect();
        let r = QueryScheduler::new(&e, SchedulerConfig::default()).execute(&queries);
        let first_batch_mean: Duration =
            r[..64].iter().map(|q| q.response_time).sum::<Duration>() / 64;
        let last_batch_mean: Duration =
            r[128..].iter().map(|q| q.response_time).sum::<Duration>() / 2;
        assert!(last_batch_mean > first_batch_mean, "{last_batch_mean:?} vs {first_batch_mean:?}");
    }
}
