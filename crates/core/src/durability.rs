//! The durability plane: epoch snapshots + update WAL on disk.
//!
//! Everything the service serves lives in RAM — the base shards, the
//! delta overlays, the epoch counter. This module makes the *committed*
//! part of that state survive `kill -9`:
//!
//! * every [`QueryService::apply_updates`](crate::QueryService::apply_updates)
//!   batch is appended to a checksummed **write-ahead log** *before*
//!   it is buffered anywhere (write-ahead ordering), and every epoch
//!   commit appends a `Commit` fence naming the epoch it published;
//! * at a configurable commit cadence the whole engine value — base
//!   adjacency, live delta overlays, partition boundaries, epoch — is
//!   written as a **snapshot** (temp file + atomic rename, every frame
//!   CRC-checksummed, see [`cgraph_graph::snapshot`]);
//! * [`QueryService::open_or_recover`](crate::QueryService::open_or_recover)
//!   rebuilds the newest *valid* snapshot (torn or bit-flipped tips
//!   are detected by checksum and skipped), replays the WAL tail past
//!   the snapshot's sequence number commit by commit, restores any
//!   uncommitted logged updates into the pending buffer, and resumes
//!   serving at the recovered epoch.
//!
//! Recovery never reads past a failed checksum: a torn WAL tail is
//! truncated (once, at open), and a snapshot that fails *any* frame
//! checksum is rejected whole.
//!
//! Disk faults from the chaos plane
//! ([`FaultPlan::with_torn_write`](cgraph_comm::chaos::FaultPlan::with_torn_write)
//! and friends) are injected here, on the write path, via
//! [`cgraph_graph::DiskFaults`] — deterministic torn/short/bit-flip
//! writes and lost renames, so crash-restart tests can prove the
//! recovery invariants under scripted corruption.

use crate::config::EngineConfig;
use crate::engine::DistributedEngine;
use crate::partition::RangePartition;
use cgraph_graph::snapshot::{
    decode_snapshot, decode_wal, encode_snapshot, encode_wal_record, DiskFaults, PartitionData,
    SnapshotData, WalRecord,
};
use cgraph_graph::types::VertexRange;
use cgraph_graph::{DeltaOverlay, Edge, EdgeList, EdgeUpdate};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the update WAL inside the data directory.
const WAL_FILE: &str = "wal.log";

/// Knobs of the durability plane.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Data directory holding the WAL and the epoch snapshots; created
    /// on first use.
    pub dir: PathBuf,
    /// Epoch commits between snapshots: `1` snapshots every commit,
    /// `8` (the default) every eighth. Must be non-zero — validated at
    /// service construction.
    pub snapshot_every: u64,
    /// Valid snapshots retained on disk; older ones are pruned after
    /// each successful snapshot write. Must be at least 1.
    pub keep_snapshots: usize,
}

impl DurabilityConfig {
    /// Durability into `dir` with the default cadence (snapshot every
    /// 8 commits, keep 3 snapshots).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), snapshot_every: 8, keep_snapshots: 3 }
    }

    /// Sets the snapshot cadence (commits between snapshots).
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }
}

/// Lifetime counters of the durability plane — mirrored one-for-one by
/// the `cgraph_durability_*` metric families.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (updates + commit fences).
    pub wal_records: u64,
    /// Bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Snapshots written (counted when the rename lands; a rename lost
    /// to fault injection still counts the attempt's bytes but not the
    /// snapshot).
    pub snapshots_written: u64,
    /// Bytes of encoded snapshot data written.
    pub snapshot_bytes: u64,
    /// WAL records replayed during recovery.
    pub wal_replayed: u64,
    /// Snapshot files rejected during recovery (failed checksum,
    /// truncation, bad magic) before a valid one was found.
    pub snapshots_corrupt: u64,
    /// Crash recoveries performed (0 on a fresh start, 1 when this
    /// service was rebuilt from durable state).
    pub recoveries: u64,
    /// Epoch of the newest snapshot that reached its final name.
    pub last_snapshot_epoch: u64,
}

/// What [`QueryService::open_or_recover`](crate::QueryService::open_or_recover)
/// found and did before the service started serving.
#[derive(Clone, Debug, Default)]
pub struct RecoveryOutcome {
    /// True when durable state was found and the engine was rebuilt
    /// from it; false on a fresh start.
    pub recovered: bool,
    /// The graph epoch the service resumed at.
    pub epoch: u64,
    /// Snapshot files examined during the scan.
    pub snapshots_scanned: usize,
    /// Snapshot files rejected as corrupt before a valid one was found.
    pub snapshots_corrupt: usize,
    /// WAL records replayed past the snapshot's sequence number.
    pub wal_records_replayed: u64,
    /// Torn-tail bytes truncated off the WAL.
    pub wal_truncated_bytes: u64,
    /// Logged-but-uncommitted updates restored into the pending buffer.
    pub pending_restored: usize,
}

/// Why the durability plane failed to open, write, or recover.
#[derive(Debug)]
pub enum DurabilityError {
    /// Filesystem failure (open, write, sync, rename).
    Io(std::io::Error),
    /// The durable state is internally inconsistent — e.g. a WAL
    /// commit record names an epoch the replayed engine did not reach.
    Inconsistent(String),
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O failure: {e}"),
            DurabilityError::Inconsistent(what) => {
                write!(f, "durable state inconsistent: {what}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// Captures `engine`'s full logical state as snapshot data covering
/// WAL records up to and including `last_seq`. Rows are emitted in
/// vertex order, so the same engine state always encodes to the same
/// bytes.
pub fn snapshot_of(engine: &DistributedEngine, last_seq: u64) -> SnapshotData {
    let ranges = engine.partition().ranges().iter().map(|r| (r.start, r.end)).collect();
    let mut partitions = Vec::with_capacity(engine.num_machines());
    for (m, shard) in engine.shards().iter().enumerate() {
        let mut base_rows = Vec::new();
        for v in shard.local_range().iter() {
            let row = shard.out_neighbors_weighted(v);
            if !row.is_empty() {
                base_rows.push((v, row));
            }
        }
        let mut delta_inserts = Vec::new();
        let mut delta_deletes = Vec::new();
        if let Some(d) = engine.delta(m) {
            let mut rows: Vec<_> = d.rows().collect();
            rows.sort_by_key(|&(v, _)| v);
            for (v, row) in rows {
                if !row.inserts().is_empty() {
                    delta_inserts.push((v, row.inserts().to_vec()));
                }
                if !row.deletes().is_empty() {
                    delta_deletes.push((v, row.deletes().to_vec()));
                }
            }
        }
        partitions.push(PartitionData { base_rows, delta_inserts, delta_deletes });
    }
    SnapshotData {
        epoch: engine.graph_epoch(),
        last_seq,
        num_vertices: engine.num_vertices(),
        ranges,
        partitions,
    }
}

/// Rebuilds an engine value from decoded snapshot data. The snapshot's
/// own partition boundaries and machine count win over
/// `config.num_machines` — a snapshot taken after the service degraded
/// onto fewer machines restores at that width.
pub fn engine_from_snapshot(snap: &SnapshotData, mut config: EngineConfig) -> DistributedEngine {
    config.num_machines = snap.ranges.len();
    let partition = RangePartition::from_ranges(
        snap.ranges.iter().map(|&(s, e)| VertexRange::new(s, e)).collect(),
    );
    let mut edges = EdgeList::new();
    for part in &snap.partitions {
        for (src, row) in &part.base_rows {
            for &(dst, w) in row {
                edges.push(Edge::weighted(*src, dst, w));
            }
        }
    }
    edges.set_num_vertices(snap.num_vertices);
    // DeltaRow state is rebuilt by replaying the persisted rows through
    // the overlay's own `apply` (deletes and inserts of one row are
    // disjoint sets, so the order between them cannot interfere) —
    // last-update-wins semantics are delta.rs's, not re-implemented.
    let mut overlays: Vec<DeltaOverlay> =
        (0..snap.partitions.len()).map(|_| DeltaOverlay::new()).collect();
    for (m, part) in snap.partitions.iter().enumerate() {
        for (src, dels) in &part.delta_deletes {
            for &dst in dels {
                overlays[m].apply(&EdgeUpdate::Delete { src: *src, dst });
            }
        }
        for (src, ins) in &part.delta_inserts {
            for &(dst, weight) in ins {
                overlays[m].apply(&EdgeUpdate::Insert { src: *src, dst, weight });
            }
        }
    }
    DistributedEngine::restored(&edges, partition, overlays, snap.epoch, config)
}

/// One valid snapshot file found during the recovery scan.
struct ScannedSnapshot {
    data: SnapshotData,
}

/// Result of scanning a data directory for durable state.
pub(crate) struct ScanResult {
    /// Newest snapshot that decoded and checksummed cleanly.
    snapshot: Option<ScannedSnapshot>,
    /// Snapshot files rejected before (and after) the valid one.
    corrupt: usize,
    /// Snapshot files examined.
    scanned: usize,
    /// Valid-prefix WAL records, sequence-ascending.
    records: Vec<WalRecord>,
    /// Byte length of the WAL's valid prefix.
    wal_valid_len: u64,
    /// Bytes past the valid prefix (the torn tail to truncate).
    wal_torn_bytes: u64,
}

impl ScanResult {
    /// True when the directory holds any durable footprint — a
    /// snapshot (valid or corrupt) or any WAL bytes. A fresh durable
    /// start refuses such a directory; resuming is recovery's job.
    pub(crate) fn has_state(&self) -> bool {
        self.scanned > 0 || !self.records.is_empty() || self.wal_torn_bytes > 0
    }
}

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snap-{epoch:016x}.cgs"))
}

/// Creates `dir` if needed and scans it — the fresh-durable-start
/// entry point ([`QueryService::try_start`](crate::QueryService::try_start)
/// uses the result to refuse directories that already hold state).
pub(crate) fn scan_for_start(dir: &Path) -> Result<ScanResult, DurabilityError> {
    fs::create_dir_all(dir)?;
    scan_dir(dir)
}

/// Scans `dir`: decodes the WAL's valid prefix and finds the newest
/// snapshot whose every frame checksums. Corrupt snapshots are
/// counted and skipped — never partially read. `*.tmp` files (writes
/// that never reached their rename) are ignored entirely.
fn scan_dir(dir: &Path) -> Result<ScanResult, DurabilityError> {
    let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name.strip_prefix("snap-").and_then(|n| n.strip_suffix(".cgs")) {
            if let Ok(epoch) = u64::from_str_radix(hex, 16) {
                snaps.push((epoch, entry.path()));
            }
        }
    }
    snaps.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
    let mut corrupt = 0usize;
    let mut scanned = 0usize;
    let mut snapshot = None;
    for (_, path) in snaps {
        scanned += 1;
        let bytes = fs::read(&path)?;
        match decode_snapshot(&bytes) {
            Ok(data) => {
                snapshot = Some(ScannedSnapshot { data });
                break;
            }
            Err(_) => corrupt += 1,
        }
    }
    let wal_path = dir.join(WAL_FILE);
    let (records, valid_len, total_len) = if wal_path.exists() {
        let bytes = fs::read(&wal_path)?;
        let (records, valid_len) = decode_wal(&bytes);
        (records, valid_len as u64, bytes.len() as u64)
    } else {
        (Vec::new(), 0, 0)
    };
    Ok(ScanResult {
        snapshot,
        corrupt,
        scanned,
        records,
        wal_valid_len: valid_len,
        wal_torn_bytes: total_len - valid_len,
    })
}

/// The durable state recovery rebuilt, ready to start a service from.
pub(crate) struct RecoveredState {
    /// The rebuilt engine: newest valid snapshot plus replayed WAL
    /// commits — or the caller's bootstrap engine when the directory
    /// held no usable state (fresh start, `outcome.recovered` false).
    pub engine: DistributedEngine,
    /// Logged-but-uncommitted updates to restore into the pending
    /// buffer. Already in the WAL — they must not be re-appended.
    pub pending: Vec<EdgeUpdate>,
    /// What happened, for stats and logs.
    pub outcome: RecoveryOutcome,
}

/// Scans `dir` and rebuilds the newest recoverable state: newest valid
/// snapshot, plus every WAL commit past its sequence number, plus the
/// uncommitted logged tail. When no snapshot survived (all torn, or
/// the initial one's rename was lost) the WAL replays from sequence 0
/// onto `bootstrap()` — the same base graph the original durable
/// start ingested. `fold_threshold` governs replayed commits exactly
/// as it governed the original ones (answers are fold-invariant, so
/// the threshold need not match the crashed process's).
pub(crate) fn recover(
    dir: &Path,
    engine_config: EngineConfig,
    fold_threshold: usize,
    bootstrap: impl FnOnce() -> DistributedEngine,
) -> Result<(RecoveredState, ScanResult), DurabilityError> {
    let scan = scan_dir(dir)?;
    let mut outcome = RecoveryOutcome {
        snapshots_scanned: scan.scanned,
        snapshots_corrupt: scan.corrupt,
        wal_truncated_bytes: scan.wal_torn_bytes,
        ..RecoveryOutcome::default()
    };
    outcome.recovered = scan.snapshot.is_some() || !scan.records.is_empty();
    let (mut engine, last_seq) = match &scan.snapshot {
        Some(s) => (engine_from_snapshot(&s.data, engine_config), s.data.last_seq),
        None => (bootstrap(), 0),
    };
    if scan.snapshot.is_none() && engine.graph_epoch() != 0 {
        return Err(DurabilityError::Inconsistent(format!(
            "bootstrap engine is at epoch {} (expected 0): WAL replay from \
             sequence 0 needs the pristine base graph",
            engine.graph_epoch()
        )));
    }
    let mut pending: Vec<EdgeUpdate> = Vec::new();
    for rec in &scan.records {
        if rec.seq() <= last_seq {
            continue; // already folded into the snapshot: idempotent replay
        }
        outcome.wal_records_replayed += 1;
        match rec {
            WalRecord::Updates { updates, .. } => pending.extend(updates.iter().cloned()),
            WalRecord::Commit { epoch, .. } => {
                let (next, _) = engine.with_updates(&pending, fold_threshold);
                pending.clear();
                if next.graph_epoch() != *epoch {
                    return Err(DurabilityError::Inconsistent(format!(
                        "WAL commit record names epoch {epoch} but replay reached {}",
                        next.graph_epoch()
                    )));
                }
                engine = next;
            }
        }
    }
    outcome.pending_restored = pending.len();
    outcome.epoch = engine.graph_epoch();
    Ok((RecoveredState { engine, pending, outcome }, scan))
}

/// The live durability plane of one running service: the open WAL,
/// the sequence counter, the snapshot cadence state, and the fault
/// injector. The service guards it with a mutex that nests strictly
/// inside the pending-updates lock (WAL order must equal buffer
/// order).
#[derive(Debug)]
pub(crate) struct DurabilityPlane {
    cfg: DurabilityConfig,
    wal: File,
    /// Next WAL sequence number to assign.
    next_seq: u64,
    /// Sequence number of the last `Commit` record whose effects are
    /// in the published engine. Snapshots cover exactly this — never a
    /// logged-but-uncommitted updates record, whose effects live only
    /// in the pending buffer and must replay after a crash.
    last_committed_seq: u64,
    /// Commits since the last snapshot that reached its final name.
    commits_since_snapshot: u64,
    faults: Option<DiskFaults>,
    stats: DurabilityStats,
}

impl DurabilityPlane {
    /// Opens the plane over a scanned directory: truncates the WAL's
    /// torn tail (the one place recovery discards bytes), reopens it
    /// for append, and resumes the sequence counter past every logged
    /// record.
    pub(crate) fn open(
        cfg: DurabilityConfig,
        scan: &ScanResult,
        faults: Option<DiskFaults>,
        recovered: bool,
    ) -> Result<Self, DurabilityError> {
        fs::create_dir_all(&cfg.dir)?;
        let wal_path = cfg.dir.join(WAL_FILE);
        if scan.wal_torn_bytes > 0 {
            let f = OpenOptions::new().write(true).open(&wal_path)?;
            f.set_len(scan.wal_valid_len)?;
            f.sync_all()?;
        }
        let wal = OpenOptions::new().create(true).append(true).open(&wal_path)?;
        let next_seq = scan.records.last().map(|r| r.seq() + 1).unwrap_or(1);
        let last_snapshot_epoch = scan.snapshot.as_ref().map(|s| s.data.epoch).unwrap_or(0);
        let last_committed_seq = scan
            .records
            .iter()
            .rev()
            .find(|r| matches!(r, WalRecord::Commit { .. }))
            .map(|r| r.seq())
            .unwrap_or_else(|| scan.snapshot.as_ref().map(|s| s.data.last_seq).unwrap_or(0));
        Ok(Self {
            cfg,
            wal,
            next_seq,
            last_committed_seq,
            commits_since_snapshot: 0,
            faults,
            stats: DurabilityStats {
                snapshots_corrupt: scan.corrupt as u64,
                recoveries: u64::from(recovered),
                last_snapshot_epoch,
                ..DurabilityStats::default()
            },
        })
    }

    /// Lifetime counters (includes recovery-time counts).
    pub(crate) fn stats(&self) -> DurabilityStats {
        self.stats
    }

    /// Adds recovery-time replay counts (recovery happens before the
    /// plane exists, so the outcome is folded in afterwards).
    pub(crate) fn note_recovery(&mut self, outcome: &RecoveryOutcome) {
        self.stats.wal_replayed += outcome.wal_records_replayed;
    }

    /// Appends one record to the WAL through the fault injector and
    /// returns `(seq, bytes_appended)`. A mangled append lands exactly
    /// as a crash mid-write would leave it; the in-memory service keeps
    /// running and recovery later truncates at the damage.
    fn append(&mut self, rec: WalRecord) -> Result<(u64, u64), DurabilityError> {
        let seq = rec.seq();
        let mut bytes = encode_wal_record(&rec);
        if let Some(f) = &self.faults {
            f.mangle(&mut bytes);
        }
        self.wal.write_all(&bytes)?;
        self.next_seq = seq + 1;
        self.stats.wal_records += 1;
        self.stats.wal_bytes += bytes.len() as u64;
        Ok((seq, bytes.len() as u64))
    }

    /// Logs one buffered-updates batch (write-ahead: called before the
    /// updates enter the pending buffer).
    pub(crate) fn append_updates(
        &mut self,
        updates: &[EdgeUpdate],
    ) -> Result<(u64, u64), DurabilityError> {
        self.append(WalRecord::Updates { seq: self.next_seq, updates: updates.to_vec() })
    }

    /// Logs an epoch-commit fence and syncs the WAL (group commit: the
    /// sync covers every update record logged before it).
    pub(crate) fn append_commit(&mut self, epoch: u64) -> Result<(u64, u64), DurabilityError> {
        let r = self.append(WalRecord::Commit { seq: self.next_seq, epoch })?;
        self.last_committed_seq = r.0;
        self.wal.sync_all()?;
        Ok(r)
    }

    /// Whether the snapshot cadence is due after one more commit.
    pub(crate) fn snapshot_due(&mut self) -> bool {
        self.commits_since_snapshot += 1;
        self.commits_since_snapshot >= self.cfg.snapshot_every
    }

    /// Writes `engine` as an epoch snapshot covering WAL records up to
    /// the last commit fence: encode, (maybe) mangle, write to `.tmp`,
    /// sync, atomic rename, prune old snapshots. Returns the bytes
    /// written and whether the rename landed (`false` = lost to fault
    /// injection, exactly the crash window between write and rename —
    /// the service carries on; recovery falls back to an older
    /// snapshot).
    pub(crate) fn write_snapshot(
        &mut self,
        engine: &DistributedEngine,
    ) -> Result<(u64, bool), DurabilityError> {
        let snap = snapshot_of(engine, self.last_committed_seq);
        let epoch = snap.epoch;
        let mut bytes = encode_snapshot(&snap);
        if let Some(f) = &self.faults {
            f.mangle(&mut bytes);
        }
        let final_path = snapshot_path(&self.cfg.dir, epoch);
        let tmp_path = final_path.with_extension("cgs.tmp");
        let written = bytes.len() as u64;
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        self.stats.snapshot_bytes += written;
        let renamed = !self.faults.as_ref().is_some_and(|f| f.drop_rename());
        if renamed {
            fs::rename(&tmp_path, &final_path)?;
            self.stats.snapshots_written += 1;
            self.stats.last_snapshot_epoch = epoch;
            self.commits_since_snapshot = 0;
            self.prune()?;
        }
        Ok((written, renamed))
    }

    /// Removes all but the newest [`DurabilityConfig::keep_snapshots`]
    /// snapshot files, plus any stale `.tmp` leftovers.
    fn prune(&self) -> Result<(), DurabilityError> {
        let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(hex) = name.strip_prefix("snap-").and_then(|n| n.strip_suffix(".cgs")) {
                if let Ok(epoch) = u64::from_str_radix(hex, 16) {
                    snaps.push((epoch, entry.path()));
                }
            }
        }
        snaps.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
        for (_, path) in snaps.into_iter().skip(self.cfg.keep_snapshots.max(1)) {
            let _ = fs::remove_file(path);
        }
        Ok(())
    }

    /// Flushes and syncs the WAL — the shutdown barrier: once this
    /// returns, every logged update survives a subsequent kill.
    pub(crate) fn sync(&mut self) -> Result<(), DurabilityError> {
        self.wal.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;

    fn test_engine() -> DistributedEngine {
        let edges: EdgeList = [(0u64, 1u64), (1, 2), (2, 3), (3, 0), (1, 3)].into_iter().collect();
        DistributedEngine::new(&edges, EngineConfig::new(2))
    }

    #[test]
    fn snapshot_round_trips_through_engine() {
        let engine = test_engine();
        let (engine, _) =
            engine.with_updates(&[EdgeUpdate::insert(0, 3), EdgeUpdate::delete(1, 2)], usize::MAX);
        let snap = snapshot_of(&engine, 17);
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.last_seq, 17);
        let restored = engine_from_snapshot(&snap, *engine.config());
        assert_eq!(restored.graph_epoch(), 1);
        assert_eq!(restored.num_vertices(), engine.num_vertices());
        assert_eq!(restored.delta_entries(), engine.delta_entries());
        // Logical equality: the re-snapshot of the restored engine is
        // identical, covering base rows and overlay rows alike.
        assert_eq!(snapshot_of(&restored, 17), snap);
    }

    #[test]
    fn folded_and_overlay_restores_agree() {
        let updates = [EdgeUpdate::insert(2, 0), EdgeUpdate::delete(3, 0)];
        let (overlaid, folded_flag) = test_engine().with_updates(&updates, usize::MAX);
        assert!(!folded_flag);
        let (folded, folded_flag) = test_engine().with_updates(&updates, 0);
        assert!(folded_flag);
        let a = engine_from_snapshot(&snapshot_of(&overlaid, 1), *overlaid.config());
        let b = engine_from_snapshot(&snapshot_of(&folded, 1), *folded.config());
        // Different physical states (overlay vs folded base), same
        // logical adjacency: effective out-rows must agree everywhere.
        for v in 0..a.num_vertices() {
            let row = |e: &DistributedEngine, v: u64| {
                let m = e.partition().owner(v);
                let shard = &e.shards()[m];
                let base = shard.out_neighbors_weighted(v);
                match e.delta(m) {
                    Some(d) => d.merge_row(v, &base),
                    None => base,
                }
            };
            assert_eq!(row(&a, v), row(&b, v), "vertex {v}");
        }
    }

    #[test]
    fn wal_append_and_recover_round_trip() {
        let dir = std::env::temp_dir().join(format!("cgraph-dur-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let cfg = DurabilityConfig::new(&dir).snapshot_every(1);
        let scan = scan_dir(&dir).unwrap();
        let mut plane = DurabilityPlane::open(cfg.clone(), &scan, None, false).unwrap();
        let engine = test_engine();
        plane.write_snapshot(&engine).unwrap();
        plane.append_updates(&[EdgeUpdate::insert(0, 2)]).unwrap();
        plane.append_commit(1).unwrap();
        plane.append_updates(&[EdgeUpdate::delete(0, 2)]).unwrap();
        drop(plane);

        let (state, _scan) =
            recover(&dir, *engine.config(), usize::MAX, || unreachable!("snapshot exists"))
                .unwrap();
        assert_eq!(state.engine.graph_epoch(), 1, "one commit replayed");
        assert_eq!(state.pending, vec![EdgeUpdate::delete(0, 2)], "uncommitted tail restored");
        assert!(state.outcome.recovered);
        assert_eq!(state.outcome.epoch, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_valid_one() {
        let dir = std::env::temp_dir().join(format!("cgraph-dur-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let engine = test_engine();
        let good = encode_snapshot(&snapshot_of(&engine, 0));
        fs::write(snapshot_path(&dir, 0), &good).unwrap();
        // A newer snapshot, torn mid-file: must be skipped whole.
        let (newer, _) = engine.with_updates(&[EdgeUpdate::insert(0, 2)], usize::MAX);
        let torn = encode_snapshot(&snapshot_of(&newer, 2));
        fs::write(snapshot_path(&dir, 1), &torn[..torn.len() / 2]).unwrap();

        let (state, scan) =
            recover(&dir, *engine.config(), usize::MAX, || unreachable!("valid snapshot exists"))
                .unwrap();
        assert_eq!(scan.corrupt, 1);
        assert_eq!(state.outcome.snapshots_corrupt, 1);
        assert_eq!(state.outcome.snapshots_scanned, 2);
        assert_eq!(state.engine.graph_epoch(), 0, "fell back to the valid epoch");
        let _ = fs::remove_dir_all(&dir);
    }
}
