//! Per-replica state and the dispatcher loop.
//!
//! A [`Replica`] is one query front-end: its own admission queue,
//! result cache, coalescer and packer knobs, and one dispatcher
//! thread. Everything a replica cannot own alone — the engine
//! snapshot chain, the persistent cluster, the mutation buffer, the
//! durability plane, the epoch — lives in the
//! [`SharedCore`](super::shared::SharedCore) it is attached to.
//! Replicas serialise on the core's exec lock only for the cluster
//! round-trip itself; admission, cache probes, coalescing and batch
//! formation run concurrently across replicas.

use super::shared::{degrade, perform_commit, take_commit_request, SharedCore};
use super::{lock, wait, QueryTicket, ServiceError};
use crate::engine::{BatchResult, EngineError, FaultInjection};
use crate::query::{KhopQuery, QueryResult};
use cgraph_cache::{
    pack_fifo, pack_locality, CacheKey, CachedTraversal, Coalescer, PackItem, PackPolicy,
    ResultCache,
};
use cgraph_comm::ClusterError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued traversal: a single `(source, k)` of some query.
pub(super) struct Traversal {
    pub(super) source: u64,
    pub(super) k: u32,
    pub(super) submitted: Instant,
    pub(super) deadline: Option<Instant>,
    pub(super) ticket: Arc<TicketState>,
    /// Batches this traversal has been passed over by locality
    /// packing — the packer's fairness bound caps it.
    pub(super) skips: u32,
}

impl Traversal {
    /// The query-plane identity of this traversal under `epoch`.
    pub(super) fn key(&self, epoch: u64) -> CacheKey {
        CacheKey { source: self.source, k: self.k, epoch }
    }
}

/// One lane of a formed batch: the `primary` traversal executes; every
/// `follower` is an identical `(source, k)` traversal sharing its
/// result — in-batch duplicates, queued duplicates, and (while the
/// batch runs) coalesced late arrivals.
pub(super) struct LaneGroup {
    pub(super) key: CacheKey,
    pub(super) primary: Traversal,
    pub(super) followers: Vec<Traversal>,
}

/// Shared completion state of one query across its traversals.
pub(super) struct TicketState {
    pub(super) id: usize,
    pub(super) total: usize,
    pub(super) acc: Mutex<TicketAcc>,
    pub(super) reply: crossbeam_channel::Sender<Result<QueryResult, ServiceError>>,
}

#[derive(Default)]
pub(super) struct TicketAcc {
    pub(super) done: usize,
    pub(super) failed: Option<ServiceError>,
    pub(super) visited: u64,
    pub(super) per_level: Vec<u64>,
    pub(super) wait_sum: Duration,
    pub(super) exec_sum: Duration,
    pub(super) resp_sum: Duration,
    /// Newest epoch any traversal of the query answered against (the
    /// traversals of one query can straddle a commit; the folded
    /// result is labelled conservatively with the newest).
    pub(super) epoch: u64,
}

pub(super) struct QueueState {
    pub(super) queue: VecDeque<Traversal>,
    pub(super) closed: bool,
    /// Depth last published to the group-wide `cgraph_queue_depth`
    /// gauge — each replica adds its *delta* so concurrent replicas
    /// never clobber each other's contribution.
    pub(super) published_depth: i64,
}

/// The per-replica slice of the query plane: result cache, in-flight
/// coalescer, and batch-packing knobs. The graph epoch these key
/// against is shared — it lives on the core.
pub(super) struct QueryPlane {
    pub(super) cache: Option<Mutex<ResultCache>>,
    pub(super) coalescer: Option<Mutex<Coalescer<CacheKey, Traversal>>>,
    pub(super) pack_locality: bool,
    pub(super) fairness: u32,
}

impl QueryPlane {
    pub(super) fn new(cfg: &super::QueryPlaneConfig) -> Self {
        Self {
            cache: cfg.cache_capacity_bytes.map(|b| Mutex::new(ResultCache::new(b))),
            coalescer: cfg.coalesce.then(|| Mutex::new(Coalescer::new())),
            pack_locality: cfg.pack_locality,
            fairness: cfg.locality_fairness,
        }
    }
}

/// One query front-end: admission queue + query plane + the condvars
/// its submitters and dispatcher rendezvous on.
pub(super) struct Replica {
    /// Position in the group (0 for a solo service) — the row this
    /// replica heats in the group's
    /// [`HeatTable`](cgraph_cache::HeatTable).
    pub(super) id: usize,
    pub(super) plane: QueryPlane,
    pub(super) state: Mutex<QueueState>,
    pub(super) work: Condvar,
    pub(super) space: Condvar,
    /// Cache occupancy last published to the group-wide gauges (delta
    /// publication, like [`QueueState::published_depth`]). Updated
    /// only under the core's exec lock.
    pub(super) pub_entries: AtomicI64,
    pub(super) pub_bytes: AtomicI64,
}

impl Replica {
    pub(super) fn new(id: usize, cfg: &super::QueryPlaneConfig) -> Arc<Self> {
        Arc::new(Self {
            id,
            plane: QueryPlane::new(cfg),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
                published_depth: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            pub_entries: AtomicI64::new(0),
            pub_bytes: AtomicI64::new(0),
        })
    }
}

/// Publishes this replica's queue depth to the group gauge as a delta
/// (must hold the state lock, which `st` proves).
fn publish_depth(core: &SharedCore, st: &mut QueueState) {
    if let Some(o) = &core.obs {
        let depth = st.queue.len() as i64;
        o.queue_depth.add(depth - st.published_depth);
        st.published_depth = depth;
    }
}

/// Admits `query` on `replica`, blocking while its admission queue is
/// full. Returns a ticket redeemable for the result, or
/// [`ServiceError::ShutDown`] once the replica is closed.
pub(super) fn submit(
    core: &SharedCore,
    replica: &Replica,
    query: KhopQuery,
) -> Result<QueryTicket, ServiceError> {
    let mut st = lock(&replica.state);
    while !st.closed && st.queue.len() >= core.config.max_queue_depth {
        st = wait(&replica.space, st);
    }
    if st.closed {
        return Err(ServiceError::ShutDown);
    }
    if query.sources.is_empty() {
        // Nothing to traverse: complete immediately instead of
        // enqueueing zero traversals (whose ticket would otherwise
        // never be replied to and read as a shutdown).
        drop(st);
        let (tx, rx) = crossbeam_channel::unbounded();
        lock(&core.metrics).completed += 1;
        if let Some(o) = &core.obs {
            o.queries_submitted.inc();
            o.queries_completed.inc();
        }
        let _ = tx.send(Ok(QueryResult {
            id: query.id,
            visited: 0,
            per_level: Vec::new(),
            response_time: Duration::ZERO,
            exec_time: Duration::ZERO,
            epoch: core.epoch.load(Ordering::SeqCst),
        }));
        return Ok(QueryTicket { rx, deadline: None });
    }
    // Admission-time shape validation: the closed-batch scheduler
    // panics on an out-of-range source, but a *service* must reject
    // the one bad query and keep serving everyone else.
    let engine = Arc::clone(&lock(&core.live_engine));
    let n = engine.num_vertices();
    if let Some(&bad) = query.sources.iter().find(|&&s| s >= n) {
        return Err(ServiceError::InvalidQuery(format!(
            "source {bad} out of range for a graph of {n} vertices"
        )));
    }
    let (tx, rx) = crossbeam_channel::unbounded();
    let ticket = Arc::new(TicketState {
        id: query.id,
        total: query.sources.len(),
        acc: Mutex::new(TicketAcc::default()),
        reply: tx,
    });
    let now = Instant::now();
    let deadline = core.config.query_deadline.map(|d| now + d);
    let epoch = core.epoch.load(Ordering::SeqCst);
    for &source in &query.sources {
        let t = Traversal {
            source,
            k: query.k,
            submitted: now,
            deadline,
            ticket: Arc::clone(&ticket),
            skips: 0,
        };
        let key = t.key(epoch);
        // 1. Result cache: a hit completes the traversal right at
        // admission — zero queue wait, zero lane time.
        if let Some(cm) = &replica.plane.cache {
            let hit = lock(cm).get(&key).cloned();
            match hit {
                Some(v) => {
                    lock(&core.metrics).cache_hits += 1;
                    if let Some(o) = &core.obs {
                        o.cache_hits.inc();
                    }
                    // The hit proves this replica's cache is hot for
                    // the source's partition — feed the router.
                    if let Some(h) = &core.heat {
                        h.bump(replica.id, engine.partition().owner(t.source));
                    }
                    complete_traversal(
                        core,
                        &t.ticket,
                        Ok((v.visited, v.per_level, Duration::ZERO, Duration::ZERO, epoch)),
                    );
                    continue;
                }
                None => {
                    lock(&core.metrics).cache_misses += 1;
                    if let Some(o) = &core.obs {
                        o.cache_misses.inc();
                    }
                }
            }
        }
        // 2. Index-only fast path: a current-epoch reachability
        // index whose sketch covers `(source, k)` exactly answers
        // at admission — bit-identical to the traversal, no lane
        // spent (see INDEXING.md).
        if let Some(ans) = core.current_index(epoch).and_then(|ix| ix.answer(t.source, t.k)) {
            lock(&core.metrics).index_only += 1;
            if let Some(o) = &core.obs {
                o.index_only_answers.inc();
            }
            complete_traversal(
                core,
                &t.ticket,
                Ok((ans.visited, ans.per_level, Duration::ZERO, Duration::ZERO, epoch)),
            );
            continue;
        }
        // 3. In-flight coalescing: an identical traversal already
        // executing on this replica answers this one too.
        let t = if let Some(co) = &replica.plane.coalescer {
            match lock(co).attach(&key, t) {
                None => {
                    lock(&core.metrics).coalesced += 1;
                    if let Some(o) = &core.obs {
                        o.cache_coalesced.inc();
                    }
                    continue;
                }
                Some(t) => t,
            }
        } else {
            t
        };
        st.queue.push_back(t);
    }
    if let Some(o) = &core.obs {
        o.queries_submitted.inc();
    }
    publish_depth(core, &mut st);
    replica.work.notify_all();
    Ok(QueryTicket { rx, deadline })
}

/// What the dispatcher's wait loop decided to do next.
enum Step {
    /// An epoch commit is due — run it (any replica's dispatcher may).
    Commit,
    /// A batch formed under the state lock — execute it.
    Batch(FormedBatch),
    /// Closed and drained — leave the loop (unless a late commit
    /// request slipped in; see [`exit_replica`]).
    Exit,
}

/// The dispatcher: block for work, pack a batch under the
/// fill-or-deadline policy, execute it on the shared persistent
/// cluster, fan results back out to tickets. Epoch commits run here
/// too — under the core's exec lock, strictly *between* batches
/// group-wide. Exits once this replica is closed *and* drained
/// (queries and pending commits).
pub(super) fn dispatch_loop(core: &SharedCore, replica: &Replica) {
    loop {
        let step = {
            let mut st = lock(&replica.state);
            loop {
                // A due commit preempts batch formation: queued
                // traversals are keyed (and executed) under the *new*
                // epoch once the commit lands.
                if lock(&core.pending).requested {
                    break Step::Commit;
                }
                if st.queue.is_empty() {
                    if st.closed {
                        break Step::Exit;
                    }
                    st = wait(&replica.work, st);
                    continue;
                }
                if st.queue.len() >= core.lanes || st.closed {
                    // Filled (or draining after shutdown).
                } else {
                    let age = st.queue.front().expect("non-empty").submitted.elapsed();
                    if age < core.config.max_batch_delay {
                        let (g, _) = replica
                            .work
                            .wait_timeout(st, core.config.max_batch_delay - age)
                            .unwrap_or_else(|e| e.into_inner());
                        st = g;
                        continue;
                    }
                    // Deadline: flush the partial batch.
                }
                let formed = form_batch(core, replica, &mut st);
                publish_depth(core, &mut st);
                replica.space.notify_all();
                break Step::Batch(formed);
            }
        };
        let formed = match step {
            Step::Commit => {
                run_commit(core);
                continue;
            }
            Step::Exit => {
                if exit_replica(core) {
                    return;
                }
                // A commit request arrived after the queue drained —
                // loop back and serve it before exiting.
                continue;
            }
            Step::Batch(formed) => formed,
        };
        for t in formed.expired {
            complete_traversal(core, &t.ticket, Err(ServiceError::DeadlineExceeded));
        }
        if let Some(o) = &core.obs {
            let seq_now = core.batch_seq.load(Ordering::SeqCst);
            if !formed.hits.is_empty() {
                o.tracer.instant("cache_hit", o.ctx(seq_now, 0), formed.hits.len() as u64);
            }
            if replica.plane.cache.is_some() && !formed.groups.is_empty() {
                // The lanes actually dispatched are the misses that
                // stayed misses all the way to batch formation.
                o.tracer.instant("cache_miss", o.ctx(seq_now, 0), formed.groups.len() as u64);
            }
        }
        for (t, v) in formed.hits {
            let wait = t.submitted.elapsed();
            complete_traversal(
                core,
                &t.ticket,
                Ok((v.visited, v.per_level, wait, Duration::ZERO, formed.epoch)),
            );
        }
        for (t, ans) in formed.index_hits {
            let wait = t.submitted.elapsed();
            complete_traversal(
                core,
                &t.ticket,
                Ok((ans.visited, ans.per_level, wait, Duration::ZERO, formed.epoch)),
            );
        }
        if !formed.groups.is_empty() {
            execute_batch(core, replica, formed.groups);
        }
    }
}

/// Runs a due epoch commit under the exec lock (the group-wide
/// quiesce) and the stats fence. Idempotent across racing dispatchers:
/// [`take_commit_request`] hands the batch to exactly one.
fn run_commit(core: &SharedCore) {
    let mut guard = lock(&core.exec);
    let ctx = &mut *guard;
    let _gate = lock(&core.stats_gate);
    let next_epoch = ctx.engine.graph_epoch() + 1;
    if let Some((updates, waiters, wal_seq)) = take_commit_request(core, next_epoch) {
        perform_commit(core, ctx, updates, waiters, wal_seq);
    }
}

/// The drained-and-closed exit path. Returns `false` when a commit
/// request slipped in after the drain check — the dispatcher must go
/// back and serve it (otherwise its waiters would hang forever).
/// Otherwise deregisters this dispatcher; the **last one out** (and
/// only it) syncs the WAL and parks the shared cluster, so a replica
/// shutting down never tears down infrastructure its siblings still
/// use, and the shutdown barrier runs exactly once per group.
fn exit_replica(core: &SharedCore) -> bool {
    let mut p = lock(&core.pending);
    if p.requested {
        return false;
    }
    let remaining = core.live_replicas.fetch_sub(1, Ordering::SeqCst) - 1;
    if remaining > 0 {
        return true;
    }
    // Last replica out. `serving_done` is set under the pending lock,
    // so no new commit waiter can register concurrently — and
    // `requested` was false just now, so none is stranded.
    p.serving_done = true;
    drop(p);
    // Shutdown barrier: buffered-but-uncommitted updates are already
    // WAL-logged (write-ahead); the sync makes them crash-proof before
    // shutdown() returns to the caller.
    if let Some(dm) = &core.durability {
        if let Err(e) = lock(dm).sync() {
            eprintln!("cgraph durability: WAL sync at shutdown failed: {e}");
        }
    }
    lock(&core.exec).cluster.shutdown();
    true
}

/// Output of one batch-formation pass over the admission queue.
struct FormedBatch {
    /// Lanes to execute (primary + identical-key followers each).
    groups: Vec<LaneGroup>,
    /// Traversals answered by the result cache at pack time (their key
    /// was committed by an earlier batch while they sat queued).
    hits: Vec<(Traversal, CachedTraversal)>,
    /// Traversals answered by the reachability index at pack time
    /// (admitted before the current index existed — e.g. across an
    /// epoch commit that rebuilt it).
    index_hits: Vec<(Traversal, crate::index_api::IndexAnswer)>,
    /// Traversals whose query deadline elapsed while queued.
    expired: Vec<Traversal>,
    /// Graph epoch the batch was formed under — its admission epoch.
    /// A cross-replica commit may land between formation and the exec
    /// lock; [`execute_batch`] re-reads the epoch under that lock and
    /// keys results to what it actually ran against.
    epoch: u64,
}

/// Forms one batch under the state lock: sweeps the queue against the
/// result cache, selects up to [`SharedCore::lanes`] distinct keys
/// (FIFO or locality-packed), collapses identical-key duplicates into
/// followers, and — with coalescing on — registers every selected key
/// as in flight so late arrivals can attach mid-batch.
fn form_batch(core: &SharedCore, replica: &Replica, st: &mut QueueState) -> FormedBatch {
    let epoch = core.epoch.load(Ordering::SeqCst);

    // 1. Cache sweep: keys committed since these traversals were
    // admitted are answered now, before they cost a lane. The whole
    // queue is swept, not just this batch's window — a hit behind the
    // window frees queue space all the same.
    let mut hits = Vec::new();
    if let Some(cm) = &replica.plane.cache {
        let mut c = lock(cm);
        let mut i = 0;
        while i < st.queue.len() {
            let key = st.queue[i].key(epoch);
            if let Some(v) = c.get(&key) {
                let v = v.clone();
                let t = st.queue.remove(i).expect("index in range");
                hits.push((t, v));
            } else {
                i += 1;
            }
        }
        if !hits.is_empty() {
            lock(&core.metrics).cache_hits += hits.len() as u64;
            if let Some(o) = &core.obs {
                o.cache_hits.add(hits.len() as u64);
            }
        }
    }

    // 1b. Index sweep: same shape as the cache sweep, against the
    // current-epoch reachability index. Catches traversals admitted
    // before this index existed (it is rebuilt at every commit).
    let mut index_hits = Vec::new();
    if let Some(ix) = core.current_index(epoch) {
        let mut i = 0;
        while i < st.queue.len() {
            match ix.answer(st.queue[i].source, st.queue[i].k) {
                Some(ans) => {
                    let t = st.queue.remove(i).expect("index in range");
                    index_hits.push((t, ans));
                }
                None => i += 1,
            }
        }
        if !index_hits.is_empty() {
            lock(&core.metrics).index_only += index_hits.len() as u64;
            if let Some(o) = &core.obs {
                o.index_only_answers.add(index_hits.len() as u64);
            }
        }
    }

    // 2. Lane selection: which queue positions anchor this batch.
    let sel: Vec<usize> = if replica.plane.pack_locality && st.queue.len() > core.lanes {
        let engine = Arc::clone(&lock(&core.live_engine));
        let part = engine.partition();
        let items: Vec<PackItem> = st
            .queue
            .iter()
            .map(|t| PackItem { partition: part.owner(t.source), skips: t.skips })
            .collect();
        pack_locality(&items, core.lanes, PackPolicy { fairness_bound: replica.plane.fairness })
    } else {
        pack_fifo(st.queue.len(), core.lanes)
    };

    // 3. Grouping walk. Identical `(source, k)` traversals never take
    // two lanes: within the selection window duplicates always
    // collapse into followers; with coalescing on, the walk extends
    // over the whole queue, attaching every queued duplicate of a
    // selected key and refilling lanes duplicates freed.
    let deep = replica.plane.coalescer.is_some();
    let mut in_sel = vec![false; st.queue.len()];
    for &i in &sel {
        in_sel[i] = true;
    }
    let scan: Vec<usize> = if deep {
        sel.iter().copied().chain((0..st.queue.len()).filter(|&i| !in_sel[i])).collect()
    } else {
        sel
    };
    let mut group_of: HashMap<CacheKey, usize> = HashMap::new();
    // (queue index, group ordinal) of every traversal leaving the queue.
    let mut assign: Vec<(usize, usize)> = Vec::new();
    let mut n_groups = 0usize;
    for i in scan {
        let key = st.queue[i].key(epoch);
        if let Some(&g) = group_of.get(&key) {
            assign.push((i, g));
        } else if n_groups < core.lanes {
            group_of.insert(key, n_groups);
            assign.push((i, n_groups));
            n_groups += 1;
        }
    }
    let coalesced_in_queue = (assign.len() - n_groups) as u64;
    if coalesced_in_queue > 0 {
        lock(&core.metrics).coalesced += coalesced_in_queue;
        if let Some(o) = &core.obs {
            o.cache_coalesced.add(coalesced_in_queue);
        }
    }

    // Pull assigned traversals out (descending index keeps the
    // remaining indices valid), then rebuild FIFO order per group.
    assign.sort_by_key(|&(i, _)| std::cmp::Reverse(i));
    let mut pulled: Vec<(usize, usize, Traversal)> = assign
        .into_iter()
        .map(|(i, g)| (g, i, st.queue.remove(i).expect("index in range")))
        .collect();
    pulled.sort_by_key(|&(g, i, _)| (g, i));
    let mut groups: Vec<LaneGroup> = Vec::with_capacity(n_groups);
    for (g, _, t) in pulled {
        if g == groups.len() {
            let key = t.key(epoch);
            groups.push(LaneGroup { key, primary: t, followers: Vec::new() });
        } else {
            groups[g].followers.push(t);
        }
    }

    // 4. Deadline policy: members whose query deadline already passed
    // are failed up front rather than spending cluster time on them.
    let now = Instant::now();
    let mut expired = Vec::new();
    let live = |t: &Traversal| t.deadline.is_none_or(|d| now < d);
    let mut surviving = Vec::with_capacity(groups.len());
    for g in groups {
        let LaneGroup { key, primary, followers } = g;
        let (keep, dead): (Vec<_>, Vec<_>) = followers.into_iter().partition(live);
        expired.extend(dead);
        if live(&primary) {
            surviving.push(LaneGroup { key, primary, followers: keep });
        } else {
            // The primary expired: promote the oldest live follower,
            // or drop the lane entirely.
            expired.push(primary);
            let mut members = keep.into_iter();
            if let Some(p) = members.next() {
                surviving.push(LaneGroup { key, primary: p, followers: members.collect() });
            }
        }
    }
    let groups = surviving;

    // 5. Register surviving keys as in flight so identical queries
    // submitted while the batch runs attach instead of re-queueing.
    if let Some(co) = &replica.plane.coalescer {
        let mut co = lock(co);
        for g in &groups {
            co.begin(g.key);
        }
    }

    // 6. Age everything left behind — locality packing's fairness
    // bound counts these skips.
    for t in st.queue.iter_mut() {
        t.skips = t.skips.saturating_add(1);
    }

    FormedBatch { groups, hits, index_hits, expired, epoch }
}

/// Exponential backoff with deterministic jitter (splitmix64 of the
/// batch's job id and the retry ordinal) — reproducible under a fixed
/// chaos seed, yet de-synchronised across batches. Saturating
/// throughout: an extreme `max_retries` × `retry_backoff` config
/// pins at `Duration::MAX` instead of panicking on overflow, and a
/// base beyond `u64::MAX` nanoseconds clamps the jitter modulus
/// rather than silently truncating it.
fn backoff_delay(base: Duration, retry: u32, job: u64) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let exp = base.saturating_mul(1u32 << retry.min(16));
    let mut z = job ^ (u64::from(retry) + 1).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    let modulus = u64::try_from(base.as_nanos()).unwrap_or(u64::MAX).max(1);
    exp.saturating_add(Duration::from_nanos(z % modulus))
}

#[cfg(test)]
pub(super) fn backoff_delay_for_test(base: Duration, retry: u32, job: u64) -> Duration {
    backoff_delay(base, retry, job)
}

/// Executes one formed batch on the shared cluster, under the core's
/// exec lock — the group-wide mutual exclusion between batches,
/// commits and degradations. The epoch is re-read under the lock: a
/// cross-replica commit may have landed since formation, in which case
/// the batch runs against (and its results are keyed and labelled
/// with) the *new* snapshot — never a stale one.
fn execute_batch(core: &SharedCore, replica: &Replica, groups: Vec<LaneGroup>) {
    let mut guard = lock(&core.exec);
    let ctx = &mut *guard;
    let exec_epoch = ctx.engine.graph_epoch();
    let job = core.batch_seq.fetch_add(1, Ordering::SeqCst);

    let sources: Vec<u64> = groups.iter().map(|g| g.primary.source).collect();
    let ks: Vec<u32> = groups.iter().map(|g| g.primary.k).collect();

    if let Some(o) = &core.obs {
        o.batch_lanes.observe(groups.len() as f64);
        o.tracer.instant("batch_dispatch", o.ctx(job, 0), groups.len() as u64);
    }

    // Legacy seam: an installed fault hook runs the old single-shot,
    // non-recoverable path with its original semantics.
    #[allow(deprecated)]
    if let Some(hook) = core.config.fault_hook.as_ref() {
        let dispatched = Instant::now();
        let hook = Some(&**hook as &(dyn Fn(usize) + Sync));
        match ctx.engine.run_traversal_batch_on_hooked(&ctx.cluster, &sources, &ks, hook) {
            Ok(br) => {
                lock(&core.metrics).batches += 1;
                if let Some(o) = &core.obs {
                    o.batches_dispatched.inc();
                }
                let engine = Arc::clone(&ctx.engine);
                commit_batch(core, replica, groups, &br, dispatched, job, 0, exec_epoch, &engine);
            }
            Err(e) => fail_groups(core, replica, groups, &e),
        }
        return;
    }

    // Index pruning: lanes whose source the current-epoch index
    // sketches carry per-partition level-set masks into the engine,
    // suppressing provably no-op cross-machine deliveries. Computed
    // once — retries re-run the same (sound) plan. Note degradation
    // changes the partition count, so the plan is recomputed below
    // whenever the engine generation moves.
    let mut plan =
        core.current_index(ctx.engine.graph_epoch()).and_then(|ix| ix.prune_plan(&sources));

    // Recoverable path: in-batch checkpoint/replay first (inside the
    // engine), then whole-batch retries with backoff, then degradation
    // once the same machine keeps dying.
    let mut retry = 0u32;
    loop {
        let fault = core.config.fault_plan.as_ref().map(|plan| FaultInjection {
            plan,
            job,
            // Salt retries past the engine's own recovery attempts so a
            // healing plan sees monotone attempt numbers.
            first_attempt: retry * (core.config.recovery.max_recoveries + 1),
        });
        let dispatched = Instant::now();
        let run = ctx.engine.run_traversal_batch_recoverable_pruned(
            &ctx.cluster,
            &sources,
            &ks,
            &core.config.recovery,
            fault,
            plan.as_ref(),
        );
        match run {
            Ok((br, report)) => {
                let mut m = lock(&core.metrics);
                m.batches += 1;
                m.retries += u64::from(retry);
                m.recoveries += u64::from(report.recoveries);
                m.checkpoints_taken += report.checkpoints_taken;
                m.checkpoints_restored += report.checkpoints_restored;
                m.partitions_replayed += report.partitions_replayed;
                m.full_rollbacks += u64::from(report.full_rollbacks);
                m.index_pruned_sends += br.pruned_sends;
                m.index_pruned_partitions += br.pruned_partitions;
                drop(m);
                if let Some(o) = &core.obs {
                    // The engine folded the same `report` into the
                    // `cgraph_recovery_*` counters on this Ok return.
                    o.batches_dispatched.inc();
                    o.retries.add(u64::from(retry));
                    o.index_pruned_sends.add(br.pruned_sends);
                    o.index_pruned_partitions.add(br.pruned_partitions);
                    o.tracer.instant("batch_done", o.ctx(job, retry), br.supersteps as u64);
                }
                let engine = Arc::clone(&ctx.engine);
                commit_batch(
                    core, replica, groups, &br, dispatched, job, retry, exec_epoch, &engine,
                );
                return;
            }
            Err(e) => {
                if let EngineError::Cluster(ClusterError::MachinePanicked { machine, .. }) = &e {
                    if let Some(b) = ctx.blame.get_mut(*machine) {
                        *b += 1;
                        let threshold = core.config.degrade_after;
                        if threshold.is_some_and(|th| *b >= th) && ctx.engine.num_machines() > 1 {
                            degrade(core, ctx);
                            // The partition count changed: the old plan's
                            // per-partition masks no longer apply. Degrade
                            // rebuilt the index, so recompute.
                            plan = core
                                .current_index(ctx.engine.graph_epoch())
                                .and_then(|ix| ix.prune_plan(&sources));
                            continue; // degrading does not consume a retry
                        }
                    }
                }
                if e.is_recoverable() && retry < core.config.max_retries {
                    std::thread::sleep(backoff_delay(core.config.retry_backoff, retry, job));
                    retry += 1;
                    if let Some(o) = &core.obs {
                        o.tracer.instant("batch_retry", o.ctx(job, retry), 0);
                    }
                    continue;
                }
                lock(&core.metrics).retries += u64::from(retry);
                if let Some(o) = &core.obs {
                    o.retries.add(u64::from(retry));
                    o.tracer.instant("batch_failed", o.ctx(job, retry), 0);
                }
                fail_groups(core, replica, groups, &e);
                return;
            }
        }
    }
}

/// Commits a successful batch: populates this replica's result cache
/// (this is the *only* insertion point — the engine returned `Ok`, so
/// the result is the committed, bit-identical answer; crashed, retried
/// or degraded attempts never reach here with partial state), drains
/// coalesced mid-flight waiters, and fans the result out to every
/// member of every lane group. Runs under the exec lock (the caller
/// holds it), so `exec_epoch` is *the* current epoch for the whole
/// body — results enter the cache keyed to the snapshot they actually
/// ran against, and no commit can fence the cache mid-insert.
#[allow(clippy::too_many_arguments)]
fn commit_batch(
    core: &SharedCore,
    replica: &Replica,
    mut groups: Vec<LaneGroup>,
    br: &BatchResult,
    dispatched: Instant,
    job: u64,
    retry: u32,
    exec_epoch: u64,
    engine: &crate::engine::DistributedEngine,
) {
    if let Some(cm) = &replica.plane.cache {
        // The stats fence: insertion counters and cache occupancy move
        // together, so a stats snapshot never sees one without the
        // other.
        let _gate = lock(&core.stats_gate);
        let mut inserted = 0u64;
        let mut evicted = 0u64;
        let (entries, bytes) = {
            let mut c = lock(cm);
            for (lane, g) in groups.iter().enumerate() {
                let key = CacheKey { source: g.key.source, k: g.key.k, epoch: exec_epoch };
                let mut per_level: Vec<u64> = br.per_level.iter().map(|row| row[lane]).collect();
                while per_level.last() == Some(&0) {
                    per_level.pop();
                }
                evicted += c
                    .insert(key, CachedTraversal { visited: br.per_lane_visited[lane], per_level });
                inserted += 1;
                if let Some(h) = &core.heat {
                    h.bump(replica.id, engine.partition().owner(g.key.source));
                }
            }
            (c.len() as i64, c.used_bytes() as i64)
        };
        let mut m = lock(&core.metrics);
        m.cache_insertions += inserted;
        m.cache_evictions += evicted;
        drop(m);
        if let Some(o) = &core.obs {
            o.cache_insertions.add(inserted);
            o.cache_evictions.add(evicted);
            // Delta publication: each replica adds its change to the
            // group-wide gauges (updates happen under the exec lock,
            // so the swap/add pair is never interleaved).
            o.cache_entries.add(entries - replica.pub_entries.swap(entries, Ordering::SeqCst));
            o.cache_bytes.add(bytes - replica.pub_bytes.swap(bytes, Ordering::SeqCst));
            if inserted > 0 {
                o.tracer.instant("cache_insert", o.ctx(job, retry), inserted);
            }
            if evicted > 0 {
                o.tracer.instant("cache_evict", o.ctx(job, retry), evicted);
            }
        }
    }
    if let Some(co) = &replica.plane.coalescer {
        // Completion uses the *formed* key — the one in-flight waiters
        // attached under. When a commit moved the epoch mid-flight,
        // late attachers formed at the new epoch simply miss and
        // re-queue for a fresh execution; nothing leaks across epochs.
        let mut co = lock(co);
        for g in &mut groups {
            g.followers.extend(co.complete(&g.key));
        }
    }
    fan_out(core, groups, br, dispatched, exec_epoch);
}

/// Fans a successful batch result back out to its lane groups'
/// tickets — the primary and every follower of a lane share the same
/// per-lane counts and execution share; waits stay per-traversal.
fn fan_out(
    core: &SharedCore,
    groups: Vec<LaneGroup>,
    br: &BatchResult,
    dispatched: Instant,
    exec_epoch: u64,
) {
    let batch_dur = br.exec_time;
    for (lane, g) in groups.into_iter().enumerate() {
        // A lane finishes after its completion point within the
        // batch — the same accounting as the closed-batch
        // scheduler's per-lane fraction.
        let done = br.lane_completion[lane].min(br.exec_time);
        let frac = if br.exec_time.is_zero() {
            1.0
        } else {
            done.as_secs_f64() / br.exec_time.as_secs_f64()
        };
        let exec = batch_dur.mul_f64(frac);
        let levels: Vec<u64> = br.per_level.iter().map(|row| row[lane]).collect();
        let visited = br.per_lane_visited[lane];
        for t in std::iter::once(g.primary).chain(g.followers) {
            // A follower that attached mid-flight has `submitted`
            // after `dispatched`; its wait saturates to zero.
            let wait = dispatched.duration_since(t.submitted);
            complete_traversal(
                core,
                &t.ticket,
                Ok((visited, levels.clone(), wait, exec, exec_epoch)),
            );
        }
    }
}

/// Fails every member of every lane group of a batch whose retries
/// are exhausted — including coalesced waiters that attached while it
/// ran (their keys leave the in-flight table, so resubmission gets a
/// fresh execution). Isolation means *only* these traversals fail;
/// the replica — and every sibling — keeps serving. Nothing enters
/// the result cache.
fn fail_groups(core: &SharedCore, replica: &Replica, mut groups: Vec<LaneGroup>, e: &EngineError) {
    if let Some(co) = &replica.plane.coalescer {
        let mut co = lock(co);
        for g in &mut groups {
            g.followers.extend(co.complete(&g.key));
        }
    }
    let err = ServiceError::BatchFailed(e.to_string());
    for g in groups {
        for t in std::iter::once(g.primary).chain(g.followers) {
            complete_traversal(core, &t.ticket, Err(err.clone()));
        }
    }
}

/// `(visited, per_level, wait, exec, epoch)` of one finished traversal.
type TraversalOutcome = (u64, Vec<u64>, Duration, Duration, u64);

/// Folds one traversal's outcome into its query; when the last
/// traversal lands, emits the query result (scheduler fold semantics:
/// visited = sum, per-level = elementwise sum, times = mean) and
/// records latency into the service metrics.
pub(super) fn complete_traversal(
    core: &SharedCore,
    ticket: &TicketState,
    outcome: Result<TraversalOutcome, ServiceError>,
) {
    let mut acc = lock(&ticket.acc);
    acc.done += 1;
    match outcome {
        Ok((visited, levels, wait, exec, epoch)) => {
            acc.visited += visited;
            acc.epoch = acc.epoch.max(epoch);
            if acc.per_level.len() < levels.len() {
                acc.per_level.resize(levels.len(), 0);
            }
            for (h, c) in levels.into_iter().enumerate() {
                acc.per_level[h] += c;
            }
            acc.wait_sum += wait;
            acc.exec_sum += exec;
            acc.resp_sum += wait + exec;
        }
        Err(e) => {
            acc.failed.get_or_insert(e);
        }
    }
    if acc.done < ticket.total {
        return;
    }
    let n = ticket.total as u32;
    let mut metrics = lock(&core.metrics);
    let reply = match acc.failed.take() {
        Some(e) => {
            metrics.failed += 1;
            if let Some(o) = &core.obs {
                o.queries_failed.inc();
            }
            if e == ServiceError::DeadlineExceeded {
                metrics.deadline_exceeded += 1;
                if let Some(o) = &core.obs {
                    o.queries_deadline_exceeded.inc();
                }
            }
            Err(e)
        }
        None => {
            // Canonical level profile: a lane's level vector is padded
            // to its *batch's* depth, which depends on how the stream
            // happened to pack — trim so results are packing-invariant.
            while acc.per_level.last() == Some(&0) {
                acc.per_level.pop();
            }
            let wait = acc.wait_sum / n;
            let exec = acc.exec_sum / n;
            let response = acc.resp_sum / n;
            metrics.completed += 1;
            metrics.wait.push(wait);
            metrics.exec.push(exec);
            metrics.response.push(response);
            if let Some(o) = &core.obs {
                o.queries_completed.inc();
                o.admission_wait.observe_duration(wait);
                o.exec.observe_duration(exec);
                o.response.observe_duration(response);
            }
            Ok(QueryResult {
                id: ticket.id,
                visited: acc.visited,
                per_level: std::mem::take(&mut acc.per_level),
                response_time: response,
                exec_time: exec,
                epoch: acc.epoch,
            })
        }
    };
    // The submitter may have dropped its ticket; that is fine.
    let _ = ticket.reply.send(reply);
}
