//! Cached observability handles of the serving tier.
//!
//! One [`ServiceObs`] is registered per [`SharedCore`](super::shared::SharedCore)
//! — replicas of a [`ServiceGroup`](super::ServiceGroup) share it, so
//! every counter aggregates across the whole group and a registry
//! snapshot always agrees with the group-wide
//! [`stats`](super::QueryService::stats) line. Gauges that describe
//! per-replica state (queue depth, cache occupancy) are published as
//! deltas against each replica's last-published value, so the gauge
//! holds the group-wide sum without replicas clobbering each other.

use crate::durability::DurabilityStats;
use cgraph_obs::{
    log2_edges, Counter, Gauge, Histogram, Obs, TraceCtx, Tracer, COORD, PAPER_LATENCY_EDGES_SECS,
};
use std::sync::Arc;

/// The service's cached observability handles: registered once at
/// start-up, then only atomic operations on the submit/complete paths.
/// Counter increments sit exactly next to the matching `MetricsAcc`
/// field updates, so a registry snapshot always agrees with
/// [`QueryService::stats`](super::QueryService::stats).
pub(super) struct ServiceObs {
    pub(super) tracer: Tracer,
    pub(super) queries_submitted: Arc<Counter>,
    pub(super) queries_completed: Arc<Counter>,
    pub(super) queries_failed: Arc<Counter>,
    pub(super) queries_deadline_exceeded: Arc<Counter>,
    pub(super) batches_dispatched: Arc<Counter>,
    pub(super) retries: Arc<Counter>,
    pub(super) degraded_generations: Arc<Counter>,
    pub(super) queue_depth: Arc<Gauge>,
    pub(super) batch_width: Arc<Gauge>,
    pub(super) batch_lanes: Arc<Histogram>,
    pub(super) admission_wait: Arc<Histogram>,
    pub(super) exec: Arc<Histogram>,
    pub(super) response: Arc<Histogram>,
    pub(super) cache_hits: Arc<Counter>,
    pub(super) cache_misses: Arc<Counter>,
    pub(super) cache_insertions: Arc<Counter>,
    pub(super) cache_evictions: Arc<Counter>,
    pub(super) cache_coalesced: Arc<Counter>,
    pub(super) cache_entries: Arc<Gauge>,
    pub(super) cache_bytes: Arc<Gauge>,
    pub(super) index_builds: Arc<Counter>,
    pub(super) index_build_seconds: Arc<Histogram>,
    pub(super) index_only_answers: Arc<Counter>,
    pub(super) index_pruned_sends: Arc<Counter>,
    pub(super) index_pruned_partitions: Arc<Counter>,
    pub(super) index_sources: Arc<Gauge>,
    pub(super) index_bytes: Arc<Gauge>,
    pub(super) mutation_updates_applied: Arc<Counter>,
    pub(super) mutation_edges_inserted: Arc<Counter>,
    pub(super) mutation_edges_deleted: Arc<Counter>,
    pub(super) mutation_commits: Arc<Counter>,
    pub(super) mutation_folds: Arc<Counter>,
    pub(super) mutation_pending: Arc<Gauge>,
    pub(super) mutation_delta_entries: Arc<Gauge>,
    pub(super) mutation_delta_bytes: Arc<Gauge>,
    pub(super) durability_wal_records: Arc<Counter>,
    pub(super) durability_wal_bytes: Arc<Counter>,
    pub(super) durability_snapshots_written: Arc<Counter>,
    pub(super) durability_snapshot_bytes: Arc<Counter>,
    pub(super) durability_wal_replayed: Arc<Counter>,
    pub(super) durability_snapshots_corrupt: Arc<Counter>,
    pub(super) durability_recoveries: Arc<Counter>,
    pub(super) durability_last_snapshot_epoch: Arc<Gauge>,
    pub(super) router_queries_routed: Arc<Counter>,
    pub(super) router_locality: Arc<Counter>,
    pub(super) router_heat_steered: Arc<Counter>,
    pub(super) router_replicas: Arc<Gauge>,
}

impl ServiceObs {
    pub(super) fn new(obs: &Obs, lanes: usize) -> Self {
        let m = &obs.metrics;
        Self {
            tracer: obs.trace.tracer(COORD),
            queries_submitted: m.counter(
                "cgraph_service_queries_submitted_total",
                "Queries admitted to the service (before batching).",
            ),
            queries_completed: m.counter(
                "cgraph_service_queries_completed_total",
                "Queries answered successfully.",
            ),
            queries_failed: m.counter(
                "cgraph_service_queries_failed_total",
                "Queries failed by a dying batch or an expired deadline.",
            ),
            queries_deadline_exceeded: m.counter(
                "cgraph_service_queries_deadline_exceeded_total",
                "Queries failed because their deadline elapsed (subset of failures).",
            ),
            batches_dispatched: m.counter(
                "cgraph_service_batches_dispatched_total",
                "Batches the dispatcher completed on the persistent cluster.",
            ),
            retries: m.counter(
                "cgraph_service_retries_total",
                "Whole-batch resubmissions by the service retry policy.",
            ),
            degraded_generations: m.counter(
                "cgraph_service_degraded_generations_total",
                "Times the service re-partitioned onto a smaller cluster.",
            ),
            queue_depth: m.gauge(
                "cgraph_service_queue_depth",
                "Traversals currently in the admission queue(s), summed over replicas.",
            ),
            batch_width: m.gauge(
                "cgraph_service_batch_width",
                "Bit width of the packed traversal state (64/128/256/512); \
                 fixed at start-up by the lane count and memory budget.",
            ),
            batch_lanes: m.histogram(
                "cgraph_service_batch_lanes",
                "Lane occupancy of dispatched batches (fill-or-deadline packing).",
                &log2_edges(lanes.next_power_of_two().trailing_zeros() + 1),
            ),
            admission_wait: m.histogram(
                "cgraph_service_admission_wait_seconds",
                "Per-query admission wait: submission to batch dispatch.",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            exec: m.histogram(
                "cgraph_service_exec_seconds",
                "Per-query execution time: the lane-completion share of its batch.",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            response: m.histogram(
                "cgraph_service_response_seconds",
                "Per-query end-to-end response time (admission wait + execution).",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            cache_hits: m.counter(
                "cgraph_cache_hits_total",
                "Traversals answered from the result cache (no lane spent).",
            ),
            cache_misses: m.counter(
                "cgraph_cache_misses_total",
                "Admission-time cache lookups that found nothing.",
            ),
            cache_insertions: m.counter(
                "cgraph_cache_insertions_total",
                "Entries committed into the result cache by successful batches.",
            ),
            cache_evictions: m.counter(
                "cgraph_cache_evictions_total",
                "Entries the CLOCK hand evicted to make room.",
            ),
            cache_coalesced: m.counter(
                "cgraph_cache_coalesced_total",
                "Traversals that shared another traversal's execution \
                 (in-batch duplicates, queued duplicates, mid-flight attaches).",
            ),
            cache_entries: m.gauge(
                "cgraph_cache_entries",
                "Entries currently resident in the result cache(s), summed over replicas.",
            ),
            cache_bytes: m.gauge(
                "cgraph_cache_bytes",
                "Bytes currently charged against the result-cache capacity.",
            ),
            index_builds: m.counter(
                "cgraph_index_builds_total",
                "Reachability-index builds (start-up, epoch commits, degradations).",
            ),
            index_build_seconds: m.histogram(
                "cgraph_index_build_seconds",
                "Wall time of each reachability-index build.",
                &PAPER_LATENCY_EDGES_SECS,
            ),
            index_only_answers: m.counter(
                "cgraph_index_only_answers_total",
                "Traversals answered index-only from a distance sketch (no lane spent).",
            ),
            index_pruned_sends: m.counter(
                "cgraph_index_pruned_sends_total",
                "Cross-machine frontier entries suppressed by index pruning.",
            ),
            index_pruned_partitions: m.counter(
                "cgraph_index_pruned_partitions_total",
                "Whole per-partition frontier messages index pruning emptied.",
            ),
            index_sources: m.gauge(
                "cgraph_index_sources",
                "Boundary sources the live reachability index holds sketches for.",
            ),
            index_bytes: m.gauge(
                "cgraph_index_bytes",
                "Estimated resident bytes of the live reachability index.",
            ),
            mutation_updates_applied: m.counter(
                "cgraph_mutation_updates_applied_total",
                "Edge updates folded into a committed epoch.",
            ),
            mutation_edges_inserted: m.counter(
                "cgraph_mutation_edges_inserted_total",
                "Edge insertions among the committed updates.",
            ),
            mutation_edges_deleted: m.counter(
                "cgraph_mutation_edges_deleted_total",
                "Edge deletions among the committed updates.",
            ),
            mutation_commits: m.counter(
                "cgraph_mutation_commits_total",
                "Epoch commits (explicit, threshold-triggered, and cache invalidations).",
            ),
            mutation_folds: m.counter(
                "cgraph_mutation_folds_total",
                "Commits that folded the delta overlay into fresh base edge-sets.",
            ),
            mutation_pending: m.gauge(
                "cgraph_mutation_pending_updates",
                "Edge updates buffered but not yet committed.",
            ),
            mutation_delta_entries: m.gauge(
                "cgraph_mutation_delta_entries",
                "Delta-overlay adjacency rows live in the serving snapshot.",
            ),
            mutation_delta_bytes: m.gauge(
                "cgraph_mutation_delta_bytes",
                "Estimated bytes of the live delta overlays.",
            ),
            durability_wal_records: m.counter(
                "cgraph_durability_wal_records_total",
                "WAL records appended (update batches plus commit fences).",
            ),
            durability_wal_bytes: m
                .counter("cgraph_durability_wal_bytes_total", "Bytes appended to the update WAL."),
            durability_snapshots_written: m.counter(
                "cgraph_durability_snapshots_total",
                "Epoch snapshots that reached their final name on disk.",
            ),
            durability_snapshot_bytes: m.counter(
                "cgraph_durability_snapshot_bytes_total",
                "Bytes of encoded snapshot data written.",
            ),
            durability_wal_replayed: m.counter(
                "cgraph_durability_wal_replayed_total",
                "WAL records replayed by crash recovery.",
            ),
            durability_snapshots_corrupt: m.counter(
                "cgraph_durability_snapshots_corrupt_total",
                "Snapshot files rejected by checksum/decode during recovery.",
            ),
            durability_recoveries: m.counter(
                "cgraph_durability_recoveries_total",
                "Crash recoveries performed (service rebuilt from durable state).",
            ),
            durability_last_snapshot_epoch: m.gauge(
                "cgraph_durability_last_snapshot_epoch",
                "Epoch of the newest snapshot on disk.",
            ),
            router_queries_routed: m.counter(
                "cgraph_router_queries_routed_total",
                "Queries steered to a replica by the serving-tier router.",
            ),
            router_locality: m.counter(
                "cgraph_router_locality_total",
                "Routed queries that landed on their partition's home replica.",
            ),
            router_heat_steered: m.counter(
                "cgraph_router_heat_steered_total",
                "Routed queries steered off-home by the cache-heat tiebreak.",
            ),
            router_replicas: {
                let g = m.gauge(
                    "cgraph_router_replicas",
                    "Live query front-end replicas behind the router.",
                );
                g.set(1);
                g
            },
        }
    }

    /// Folds a durability-stats snapshot into the counters — used once
    /// at start-up to seed recovery-time and initial-snapshot counts
    /// accumulated before the metric handles existed.
    pub(super) fn seed_durability(&self, d: &DurabilityStats) {
        self.durability_wal_records.add(d.wal_records);
        self.durability_wal_bytes.add(d.wal_bytes);
        self.durability_snapshots_written.add(d.snapshots_written);
        self.durability_snapshot_bytes.add(d.snapshot_bytes);
        self.durability_wal_replayed.add(d.wal_replayed);
        self.durability_snapshots_corrupt.add(d.snapshots_corrupt);
        self.durability_recoveries.add(d.recoveries);
        self.durability_last_snapshot_epoch.set(d.last_snapshot_epoch as i64);
    }

    /// Trace context for dispatcher events of batch `job`, attempt
    /// `retry` (service retry ordinal, not the chaos attempt salt).
    pub(super) fn ctx(&self, job: u64, retry: u32) -> TraceCtx {
        TraceCtx { job, attempt: retry, superstep: 0, machine: COORD }
    }
}
