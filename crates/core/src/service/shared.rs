//! State shared by every front-end replica of a service (group).
//!
//! A [`SharedCore`] is the singleton half of the serving tier: one
//! engine snapshot chain + persistent cluster (inside [`ExecCtx`]),
//! one mutation pending buffer, one durability plane, one graph epoch,
//! one metrics accumulator, and one [`ServiceObs`](super::obs). Every
//! [`Replica`](super::replica::Replica) — whether the single replica
//! behind a plain [`QueryService`](super::QueryService) or the N
//! replicas of a [`ServiceGroup`](super::ServiceGroup) — holds only
//! per-replica state (admission queue, result cache, coalescer) and
//! funnels execution and commits through here.
//!
//! Lock order (outermost first): `exec` → `stats_gate` → per-replica
//! cache/coalescer → `pending` → `durability` → `index` → `metrics`.
//! Replica `state` locks are taken without any of these held except on
//! the submit path (state → cache/metrics), which never takes `exec`,
//! `stats_gate` or `pending`.

use super::obs::ServiceObs;
use super::replica::Replica;
use super::{disk_faults, lock, ServiceConfig, ServiceError, ServiceStats};
use crate::config::EngineConfig;
use crate::durability::{recover, DurabilityPlane, DurabilityStats, RecoveryOutcome};
use crate::engine::DistributedEngine;
use crate::index_api::{IndexBuilder, ReachIndex};
use crate::metrics::ResponseStats;
use crate::scheduler::QueryScheduler;
use cgraph_cache::HeatTable;
use cgraph_comm::PersistentCluster;
use cgraph_graph::delta::EdgeUpdate;
use cgraph_graph::{EdgeList, LaneWidth};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Buffered edge updates awaiting the next epoch commit, plus the
/// commit-request handshake between mutators and the dispatchers.
#[derive(Default)]
pub(super) struct PendingUpdates {
    pub(super) updates: Vec<EdgeUpdate>,
    /// Waiters blocked in [`QueryService::commit_epoch`]
    /// (super::QueryService::commit_epoch); each receives the new
    /// epoch once a dispatcher performs the commit.
    pub(super) waiters: Vec<crossbeam_channel::Sender<u64>>,
    /// A commit is due — an explicit request or a crossed
    /// [`MutationConfig::commit_threshold`](super::MutationConfig::commit_threshold).
    /// Cleared when a dispatcher takes the batch.
    pub(super) requested: bool,
    /// Set — under the pending lock — by the last dispatcher to exit.
    /// From then on `commit_epoch` refuses instead of registering a
    /// waiter no thread would ever answer.
    pub(super) serving_done: bool,
}

#[derive(Default)]
pub(super) struct MetricsAcc {
    pub(super) completed: u64,
    pub(super) failed: u64,
    pub(super) deadline_exceeded: u64,
    pub(super) batches: u64,
    pub(super) retries: u64,
    pub(super) recoveries: u64,
    pub(super) checkpoints_taken: u64,
    pub(super) checkpoints_restored: u64,
    pub(super) partitions_replayed: u64,
    pub(super) full_rollbacks: u64,
    pub(super) degraded_generations: u64,
    pub(super) cache_hits: u64,
    pub(super) cache_misses: u64,
    pub(super) cache_insertions: u64,
    pub(super) cache_evictions: u64,
    pub(super) coalesced: u64,
    pub(super) index_builds: u64,
    pub(super) index_only: u64,
    pub(super) index_pruned_sends: u64,
    pub(super) index_pruned_partitions: u64,
    pub(super) updates_applied: u64,
    pub(super) updates_inserted: u64,
    pub(super) updates_deleted: u64,
    pub(super) epoch_commits: u64,
    pub(super) epoch_folds: u64,
    /// Mirrored from the live engine at each commit — the exec lock
    /// owns the live engine, so [`SharedCore::stats`] reads the last
    /// committed value here.
    pub(super) delta_entries: u64,
    pub(super) delta_bytes: u64,
    pub(super) wait: Vec<Duration>,
    pub(super) exec: Vec<Duration>,
    pub(super) response: Vec<Duration>,
}

/// The execution context every replica dispatches through: the live
/// engine snapshot, the one persistent cluster, panic blame, and the
/// global batch sequence (the chaos *job* space). Holding this lock
/// IS the group-wide quiesce — a commit or degradation that owns it
/// is guaranteed no batch is in flight on any replica.
pub(super) struct ExecCtx {
    pub(super) engine: Arc<DistributedEngine>,
    pub(super) cluster: PersistentCluster,
    /// Per-machine panic blame since the last degradation.
    pub(super) blame: Vec<u32>,
}

/// State shared by every replica of one service (group). See the
/// module doc for the lock order.
pub(super) struct SharedCore {
    pub(super) config: ServiceConfig,
    pub(super) lanes: usize,
    /// Monotone graph epoch baked into every cache key; bumping it
    /// makes every existing entry unreachable and blocks stale
    /// in-flight batches from committing results.
    pub(super) epoch: AtomicU64,
    /// The dispatch path: engine + cluster + blame.
    pub(super) exec: Mutex<ExecCtx>,
    /// Monotone batch sequence number — the chaos *job* identity, so a
    /// [`FaultPlan`](cgraph_comm::chaos::FaultPlan) armed for a job
    /// window poisons specific batches, group-wide. Incremented under
    /// the exec lock (so job order equals execution order); read
    /// lock-free for trace labels.
    pub(super) batch_seq: AtomicU64,
    /// Mirror of [`ExecCtx::engine`] readable without blocking behind
    /// a running batch — the submit path and batch formation use it
    /// for vertex-range checks and partition lookups.
    pub(super) live_engine: Mutex<Arc<DistributedEngine>>,
    /// Buffered mutations + commit handshake. [`SharedCore::durability`]
    /// nests inside it on the write-ahead path.
    pub(super) pending: Mutex<PendingUpdates>,
    /// The durability plane (WAL + snapshots); `None` runs in memory
    /// only. Strict leaf under `pending`: acquired *inside* it on the
    /// write-ahead path, so WAL order always equals buffer order.
    pub(super) durability: Option<Mutex<DurabilityPlane>>,
    pub(super) metrics: Mutex<MetricsAcc>,
    /// The stats fence: [`SharedCore::stats`] and every cross-plane
    /// mutation (commit drain+apply, batch cache-commit) hold it, so a
    /// stats snapshot can never observe half a commit — the fix for
    /// the torn five-lock read the old `QueryService::stats` did.
    pub(super) stats_gate: Mutex<()>,
    /// Cached metric handles + coordinator tracer; `None` when
    /// [`ServiceConfig::obs`] is unset. Shared by all replicas —
    /// counters aggregate group-wide by construction.
    pub(super) obs: Option<ServiceObs>,
    /// The live reachability index (leaf lock): rebuilt inside every
    /// epoch commit and degradation, group-wide.
    pub(super) index: Mutex<Option<Arc<dyn ReachIndex>>>,
    /// Every replica ever attached (weak: a dropped service frees its
    /// replica). Commits walk this list to fence all caches.
    pub(super) replicas: Mutex<Vec<Weak<Replica>>>,
    /// Replicas still accepting queries (shutdown not yet called).
    pub(super) open_replicas: AtomicUsize,
    /// Dispatcher threads still running. The one that decrements this
    /// to zero is last-out: it syncs the WAL, parks the cluster and
    /// marks `serving_done` — exactly once, however many replicas the
    /// group ran.
    pub(super) live_replicas: AtomicUsize,
    /// Cache-heat grid feeding the group router; `None` for a solo
    /// service (no router reads it).
    pub(super) heat: Option<Arc<HeatTable>>,
}

impl SharedCore {
    /// Wires the shared half of a service: persistent cluster, obs
    /// registration, initial index build. `restored_pending` updates
    /// are already in the WAL (recovery restored them) — they enter
    /// the buffer without being re-appended. No replica is attached
    /// yet; [`QueryService::attach`](super::QueryService) adds them.
    pub(super) fn new(
        engine: Arc<DistributedEngine>,
        config: ServiceConfig,
        durability: Option<DurabilityPlane>,
        restored_pending: Vec<EdgeUpdate>,
        recovery: Option<&RecoveryOutcome>,
        heat: Option<Arc<HeatTable>>,
    ) -> Arc<Self> {
        let lanes = QueryScheduler::new(&engine, config.scheduler).effective_lanes();
        let cluster =
            PersistentCluster::with_model(engine.num_machines(), engine.config().net_model);
        let obs = config.obs.as_ref().map(|o| {
            cluster.set_obs(Arc::clone(o));
            let so = ServiceObs::new(o, lanes);
            so.batch_width.set(LaneWidth::for_lanes(lanes).bits() as i64);
            if let Some(p) = &durability {
                so.seed_durability(&p.stats());
            }
            so.mutation_pending.set(restored_pending.len() as i64);
            if let Some(rec) = recovery.filter(|r| r.recovered) {
                // Emitted before any dispatcher exists, so its position
                // in the coordinator trace is deterministic.
                so.tracer.instant("durable_recover", so.ctx(0, 0), rec.epoch);
            }
            so
        });
        let metrics = Mutex::new(MetricsAcc::default());
        // Initial index build, before the first query can be admitted.
        let index = match &config.index {
            Some(b) => build_index(&**b, &engine, &metrics, obs.as_ref()),
            None => None,
        };
        let epoch = engine.graph_epoch();
        Arc::new(Self {
            lanes,
            epoch: AtomicU64::new(epoch),
            exec: Mutex::new(ExecCtx {
                engine: Arc::clone(&engine),
                cluster,
                blame: vec![0; engine.num_machines()],
            }),
            batch_seq: AtomicU64::new(0),
            live_engine: Mutex::new(engine),
            pending: Mutex::new(PendingUpdates {
                updates: restored_pending,
                ..PendingUpdates::default()
            }),
            durability: durability.map(Mutex::new),
            metrics,
            stats_gate: Mutex::new(()),
            obs,
            index: Mutex::new(index),
            replicas: Mutex::new(Vec::new()),
            open_replicas: AtomicUsize::new(0),
            live_replicas: AtomicUsize::new(0),
            heat,
            config,
        })
    }

    /// Every replica still alive, strongly held for the duration of a
    /// fence or stats sweep.
    pub(super) fn replica_list(&self) -> Vec<Arc<Replica>> {
        lock(&self.replicas).iter().filter_map(Weak::upgrade).collect()
    }

    /// The live index iff it matches `epoch` — the fence that keeps a
    /// stale index (pre-commit, or mid-rebuild) out of the query path.
    pub(super) fn current_index(&self, epoch: u64) -> Option<Arc<dyn ReachIndex>> {
        lock(&self.index).as_ref().filter(|ix| ix.epoch() == epoch).cloned()
    }

    /// Wakes every replica's dispatcher (a commit became due). The
    /// per-replica state lock is taken around each notify so a
    /// dispatcher that just checked `requested` and is about to wait
    /// cannot miss the wake-up.
    pub(super) fn notify_dispatchers(&self) {
        for r in self.replica_list() {
            let _st = lock(&r.state);
            r.work.notify_all();
        }
    }

    /// Group-wide stats snapshot under the stats fence: no commit can
    /// be half-applied while the planes are read, so cross-plane sums
    /// (e.g. `updates_applied + pending_updates`) are exact at every
    /// sample. Per-replica cache occupancy is summed over the group.
    pub(super) fn stats(&self) -> ServiceStats {
        let _gate = lock(&self.stats_gate);
        let (mut cache_entries, mut cache_bytes) = (0u64, 0u64);
        for r in self.replica_list() {
            if let Some(cm) = &r.plane.cache {
                let c = lock(cm);
                cache_entries += c.len() as u64;
                cache_bytes += c.used_bytes() as u64;
            }
        }
        let pending_updates = lock(&self.pending).updates.len() as u64;
        let (index_sources, index_bytes) = lock(&self.index)
            .as_ref()
            .map(|ix| (ix.num_sources() as u64, ix.size_bytes() as u64))
            .unwrap_or((0, 0));
        let dur: DurabilityStats =
            self.durability.as_ref().map(|dm| lock(dm).stats()).unwrap_or_default();
        let m = lock(&self.metrics);
        ServiceStats {
            queries_completed: m.completed,
            queries_failed: m.failed,
            queries_deadline_exceeded: m.deadline_exceeded,
            batches_dispatched: m.batches,
            retries: m.retries,
            recoveries: m.recoveries,
            checkpoints_taken: m.checkpoints_taken,
            checkpoints_restored: m.checkpoints_restored,
            partitions_replayed: m.partitions_replayed,
            full_rollbacks: m.full_rollbacks,
            degraded_generations: m.degraded_generations,
            cache_hits: m.cache_hits,
            cache_misses: m.cache_misses,
            cache_insertions: m.cache_insertions,
            cache_evictions: m.cache_evictions,
            cache_entries,
            cache_bytes,
            coalesced_traversals: m.coalesced,
            index_builds: m.index_builds,
            index_only_answers: m.index_only,
            index_pruned_sends: m.index_pruned_sends,
            index_pruned_partitions: m.index_pruned_partitions,
            index_sources,
            index_bytes,
            updates_applied: m.updates_applied,
            updates_inserted: m.updates_inserted,
            updates_deleted: m.updates_deleted,
            epoch_commits: m.epoch_commits,
            epoch_folds: m.epoch_folds,
            pending_updates,
            delta_entries: m.delta_entries,
            delta_bytes: m.delta_bytes,
            wal_records: dur.wal_records,
            wal_bytes: dur.wal_bytes,
            snapshots_written: dur.snapshots_written,
            snapshot_bytes: dur.snapshot_bytes,
            wal_replayed: dur.wal_replayed,
            snapshots_corrupt: dur.snapshots_corrupt,
            durable_recoveries: dur.recoveries,
            last_snapshot_epoch: dur.last_snapshot_epoch,
            admission_wait: ResponseStats::new(m.wait.clone()),
            exec: ResponseStats::new(m.exec.clone()),
            response: ResponseStats::new(m.response.clone()),
        }
    }
}

/// Opens the durability plane for a *fresh* durable run (refusing a
/// directory that already holds state) and writes the initial epoch
/// snapshot. `None` durability config returns `None`.
pub(super) fn open_fresh_plane(
    engine: &DistributedEngine,
    config: &ServiceConfig,
) -> Result<Option<DurabilityPlane>, ServiceError> {
    match &config.durability {
        Some(dcfg) => {
            let scan = crate::durability::scan_for_start(&dcfg.dir)
                .map_err(|e| ServiceError::Durability(e.to_string()))?;
            if scan.has_state() {
                return Err(ServiceError::Durability(format!(
                    "data directory {} already holds durable state; \
                     use open_or_recover to resume from it",
                    dcfg.dir.display()
                )));
            }
            let mut plane = DurabilityPlane::open(dcfg.clone(), &scan, disk_faults(config), false)
                .map_err(|e| ServiceError::Durability(e.to_string()))?;
            plane.write_snapshot(engine).map_err(|e| ServiceError::Durability(e.to_string()))?;
            Ok(Some(plane))
        }
        None => Ok(None),
    }
}

/// Opens (or creates) the durable data directory and recovers whatever
/// committed state survives there — the shared construction half of
/// `open_or_recover`, used by both the solo service and the group.
pub(super) type Recovered =
    (Arc<DistributedEngine>, DurabilityPlane, Vec<EdgeUpdate>, RecoveryOutcome);

pub(super) fn open_recovered(
    edges: &EdgeList,
    engine_config: EngineConfig,
    config: &ServiceConfig,
) -> Result<Recovered, ServiceError> {
    let dcfg = config.durability.clone().ok_or_else(|| {
        ServiceError::InvalidConfig("open_or_recover needs ServiceConfig::durability set".into())
    })?;
    std::fs::create_dir_all(&dcfg.dir).map_err(|e| ServiceError::Durability(e.to_string()))?;
    let (state, scan) = recover(&dcfg.dir, engine_config, config.mutation.fold_threshold, || {
        DistributedEngine::new(edges, engine_config)
    })
    .map_err(|e| ServiceError::Durability(e.to_string()))?;
    let mut plane =
        DurabilityPlane::open(dcfg, &scan, disk_faults(config), state.outcome.recovered)
            .map_err(|e| ServiceError::Durability(e.to_string()))?;
    plane.note_recovery(&state.outcome);
    // Checkpoint the recovered (or fresh) state right away: the next
    // restart resumes from here instead of replaying the whole WAL,
    // and a fresh directory gets its base snapshot.
    plane.write_snapshot(&state.engine).map_err(|e| ServiceError::Durability(e.to_string()))?;
    let outcome = state.outcome.clone();
    Ok((Arc::new(state.engine), plane, state.pending, outcome))
}

/// Runs the configured index builder against `engine`'s current
/// snapshot, recording build count, duration and size. A failed build
/// logs and returns `None`: the service keeps serving unindexed.
pub(super) fn build_index(
    builder: &dyn IndexBuilder,
    engine: &DistributedEngine,
    metrics: &Mutex<MetricsAcc>,
    obs: Option<&ServiceObs>,
) -> Option<Arc<dyn ReachIndex>> {
    let started = Instant::now();
    let built = builder.build(engine);
    let dur = started.elapsed();
    lock(metrics).index_builds += 1;
    if let Some(o) = obs {
        o.index_builds.inc();
        o.index_build_seconds.observe_duration(dur);
    }
    match built {
        Ok(ix) => {
            if let Some(o) = obs {
                o.index_sources.set(ix.num_sources() as i64);
                o.index_bytes.set(ix.size_bytes() as i64);
            }
            Some(ix)
        }
        Err(e) => {
            eprintln!("cgraph index: build failed, serving unindexed: {e}");
            if let Some(o) = obs {
                o.index_sources.set(0);
                o.index_bytes.set(0);
            }
            None
        }
    }
}

/// Rebuilds the live index for `engine`'s (new) epoch — called inside
/// epoch commits and degradations, under the exec lock, strictly
/// between batches. Without a configured builder this is a no-op and
/// the epoch fence alone retires the old index.
pub(super) fn rebuild_index(core: &SharedCore, engine: &DistributedEngine) {
    if let Some(b) = &core.config.index {
        let ix = build_index(&**b, engine, &core.metrics, core.obs.as_ref());
        *lock(&core.index) = ix;
    }
}

/// What [`take_commit_request`] hands the committing dispatcher: the
/// drained update buffer, the commit waiters to reply to, and — with
/// durability on — the sequence number of the fence appended to the
/// WAL.
pub(super) type CommitRequest = (Vec<EdgeUpdate>, Vec<crossbeam_channel::Sender<u64>>, Option<u64>);

/// Takes the pending commit request, if one is due: the buffered
/// updates, the waiters to reply to, and — with durability on — the
/// sequence number of the commit fence appended (and synced) to the
/// WAL. Clears the request flag so a request enqueued *during* the
/// commit is seen as a fresh one. The fence is written under the
/// pending lock, in the same critical section that drains the buffer:
/// every update record logged before it is exactly the drained batch,
/// so replay reconstructs this commit bit-identically. Idempotent
/// across racing dispatchers — the first taker gets the batch, the
/// rest see `requested == false` and back off.
pub(super) fn take_commit_request(core: &SharedCore, next_epoch: u64) -> Option<CommitRequest> {
    let mut p = lock(&core.pending);
    if !p.requested {
        return None;
    }
    p.requested = false;
    let updates = std::mem::take(&mut p.updates);
    let waiters = std::mem::take(&mut p.waiters);
    let mut wal_seq = None;
    if let Some(dm) = &core.durability {
        match lock(dm).append_commit(next_epoch) {
            Ok((seq, bytes)) => {
                wal_seq = Some(seq);
                if let Some(o) = &core.obs {
                    o.durability_wal_records.inc();
                    o.durability_wal_bytes.add(bytes);
                }
            }
            // The in-memory commit still proceeds: durability degrades
            // (this epoch may replay short after a crash) but serving
            // must not stall on a sick disk.
            Err(e) => eprintln!("cgraph durability: commit fence append failed: {e}"),
        }
    }
    Some((updates, waiters, wal_seq))
}

/// Performs one epoch commit under the exec lock (the group-wide
/// quiesce — no batch is in flight on any replica): folds `updates`
/// into a new engine snapshot, swaps it in, publishes the new epoch,
/// fences **every** replica's cache, cools the heat grid, rebuilds the
/// index, and replies the new epoch to every commit waiter. The caller
/// holds the stats gate, so no stats snapshot can observe the drained
/// buffer without the matching applied counters.
pub(super) fn perform_commit(
    core: &SharedCore,
    ctx: &mut ExecCtx,
    updates: Vec<EdgeUpdate>,
    waiters: Vec<crossbeam_channel::Sender<u64>>,
    wal_seq: Option<u64>,
) {
    let (engine, folded) = ctx.engine.with_updates(&updates, core.config.mutation.fold_threshold);
    let new_epoch = engine.graph_epoch();
    ctx.engine = Arc::new(engine);
    *lock(&core.live_engine) = Arc::clone(&ctx.engine);
    core.epoch.store(new_epoch, Ordering::SeqCst);
    // Fence every replica's cache: entries of epochs before
    // `new_epoch` are unreachable anyway (keys embed the epoch) —
    // dropping them frees their bytes immediately. Gauges publish the
    // per-replica delta so the group-wide sum stays exact.
    for r in core.replica_list() {
        if let Some(cm) = &r.plane.cache {
            let (entries, bytes) = {
                let mut c = lock(cm);
                c.invalidate_before(new_epoch);
                (c.len() as i64, c.used_bytes() as i64)
            };
            if let Some(o) = &core.obs {
                o.cache_entries.add(entries - r.pub_entries.swap(entries, Ordering::SeqCst));
                o.cache_bytes.add(bytes - r.pub_bytes.swap(bytes, Ordering::SeqCst));
            }
        }
    }
    // The fenced caches no longer hold what the heat described.
    if let Some(h) = &core.heat {
        h.halve();
    }
    // The old index is already fenced (its epoch no longer matches);
    // rebuild for the new snapshot before the next batch forms.
    rebuild_index(core, &ctx.engine);
    let inserted = updates.iter().filter(|u| u.is_insert()).count() as u64;
    let deleted = updates.len() as u64 - inserted;
    let delta_entries = ctx.engine.delta_entries() as u64;
    let delta_bytes = ctx.engine.delta_bytes() as u64;
    {
        let mut m = lock(&core.metrics);
        m.updates_applied += updates.len() as u64;
        m.updates_inserted += inserted;
        m.updates_deleted += deleted;
        m.epoch_commits += 1;
        m.epoch_folds += u64::from(folded);
        m.delta_entries = delta_entries;
        m.delta_bytes = delta_bytes;
    }
    if let Some(o) = &core.obs {
        o.mutation_updates_applied.add(updates.len() as u64);
        o.mutation_edges_inserted.add(inserted);
        o.mutation_edges_deleted.add(deleted);
        o.mutation_commits.inc();
        if folded {
            o.mutation_folds.inc();
        }
        o.mutation_pending.set(lock(&core.pending).updates.len() as i64);
        o.mutation_delta_entries.set(delta_entries as i64);
        o.mutation_delta_bytes.set(delta_bytes as i64);
        let seq_now = core.batch_seq.load(Ordering::SeqCst);
        o.tracer.instant("epoch_commit", o.ctx(seq_now, 0), new_epoch);
        if let Some(seq) = wal_seq {
            o.tracer.instant("wal_commit", o.ctx(seq_now, 0), seq);
        }
    }
    // Snapshot cadence: every `snapshot_every`-th commit persists the
    // whole new engine value, bounding how much WAL a restart replays.
    // A failed or rename-lost write is survivable — the WAL alone
    // recovers this epoch; the cadence counter stays primed so the
    // next commit retries.
    if let Some(dm) = &core.durability {
        let mut d = lock(dm);
        if d.snapshot_due() {
            match d.write_snapshot(&ctx.engine) {
                Ok((bytes, renamed)) => {
                    if let Some(o) = &core.obs {
                        o.durability_snapshot_bytes.add(bytes);
                        if renamed {
                            o.durability_snapshots_written.inc();
                            o.durability_last_snapshot_epoch.set(new_epoch as i64);
                            let seq_now = core.batch_seq.load(Ordering::SeqCst);
                            o.tracer.instant("snapshot_write", o.ctx(seq_now, 0), new_epoch);
                        }
                    }
                }
                Err(e) => eprintln!("cgraph durability: snapshot write failed: {e}"),
            }
        }
    }
    for w in waiters {
        let _ = w.send(new_epoch);
    }
}

/// Re-partitions onto one fewer machine and swaps in a fresh
/// persistent cluster; the old cluster (which may hold a poisoned or
/// repeatedly-failing machine) is parked and shut down. Runs under the
/// exec lock, so every replica observes the swap atomically.
pub(super) fn degrade(core: &SharedCore, ctx: &mut ExecCtx) {
    let p = ctx.engine.num_machines() - 1;
    let engine = Arc::new(ctx.engine.repartitioned(p));
    let cluster = PersistentCluster::with_model(p, engine.config().net_model);
    if let Some(o) = &core.config.obs {
        // The replacement cluster must keep feeding the same registry.
        cluster.set_obs(Arc::clone(o));
    }
    let old = std::mem::replace(&mut ctx.cluster, cluster);
    old.shutdown();
    ctx.engine = Arc::clone(&engine);
    *lock(&core.live_engine) = engine;
    ctx.blame = vec![0; p];
    // The partition count changed: the index's per-partition masks are
    // meaningless on the new layout. Rebuild (or drop) before any
    // further batch can consult it.
    rebuild_index(core, &ctx.engine);
    lock(&core.metrics).degraded_generations += 1;
    if let Some(o) = &core.obs {
        o.degraded_generations.inc();
        let seq_now = core.batch_seq.load(Ordering::SeqCst);
        o.tracer.instant("degrade", o.ctx(seq_now.saturating_sub(1), 0), p as u64);
    }
}

/// Core-level [`QueryService::apply_updates`](super::QueryService::apply_updates):
/// validates, WAL-logs and buffers `updates` for the next commit.
pub(super) fn apply_updates_core(
    core: &SharedCore,
    updates: Vec<EdgeUpdate>,
) -> Result<(), ServiceError> {
    let n = lock(&core.live_engine).num_vertices();
    if let Some(bad) = updates.iter().find(|u| u.src() >= n || u.dst() >= n) {
        return Err(ServiceError::InvalidQuery(format!(
            "edge update {bad:?} out of range for a graph of {n} vertices"
        )));
    }
    let mut p = lock(&core.pending);
    if p.serving_done || core.open_replicas.load(Ordering::SeqCst) == 0 {
        return Err(ServiceError::ShutDown);
    }
    // Write-ahead: the batch is in the WAL before it is buffered
    // anywhere. Appending under the pending lock keeps WAL order
    // identical to buffer order, so replay reconstructs the exact
    // commit contents. A failed append refuses the batch whole —
    // accepting updates a crash would lose is the one thing a durable
    // service must never do.
    if !updates.is_empty() {
        if let Some(dm) = &core.durability {
            match lock(dm).append_updates(&updates) {
                Ok((_seq, bytes)) => {
                    if let Some(o) = &core.obs {
                        o.durability_wal_records.inc();
                        o.durability_wal_bytes.add(bytes);
                    }
                }
                Err(e) => return Err(ServiceError::Durability(e.to_string())),
            }
        }
    }
    p.updates.extend(updates);
    let depth = p.updates.len();
    let threshold_hit =
        core.config.mutation.commit_threshold.is_some_and(|t| depth >= t) && !p.requested;
    if threshold_hit {
        p.requested = true;
    }
    // Published under the pending lock so concurrent mutators cannot
    // clobber each other with stale depths.
    if let Some(o) = &core.obs {
        o.mutation_pending.set(depth as i64);
    }
    drop(p);
    if threshold_hit {
        core.notify_dispatchers();
    }
    Ok(())
}

/// Core-level [`QueryService::commit_epoch`](super::QueryService::commit_epoch):
/// registers a commit request + waiter and wakes every dispatcher; any
/// replica's dispatcher may perform the commit.
pub(super) fn commit_epoch_core(core: &SharedCore) -> Result<u64, ServiceError> {
    let rx = {
        let mut p = lock(&core.pending);
        if p.serving_done || core.open_replicas.load(Ordering::SeqCst) == 0 {
            return Err(ServiceError::ShutDown);
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        p.waiters.push(tx);
        p.requested = true;
        drop(p);
        core.notify_dispatchers();
        rx
    };
    rx.recv().map_err(|_| ServiceError::ShutDown)
}
