//! Replicated query front-ends over one shared engine + cluster.
//!
//! A [`ServiceGroup`] runs N [`QueryService`] replicas attached to a
//! single [`SharedCore`](super::shared::SharedCore): one engine
//! snapshot chain, one persistent cluster, one mutation buffer, one
//! durability plane, one epoch — and N independent admission queues,
//! result caches, coalescers and dispatcher threads. The [`Router`]
//! steers each query by its first source's partition (locality), with
//! a cache-heat tiebreak fed by the group's
//! [`HeatTable`](cgraph_cache::HeatTable): a replica that has been
//! serving a partition's sources holds that partition's results in
//! its cache, so the next query for the partition becomes a hit
//! instead of a traversal. Routing is seeded and wall-clock-free —
//! identical streams route identically, run after run.
//!
//! The decoupled shape follows smart query routing for distributed
//! graph querying (Khan et al., PAPERS.md): many near-stateless query
//! processors over shared storage, with the router keeping each
//! processor's cache hot.

use super::replica::submit;
use super::shared::{
    apply_updates_core, commit_epoch_core, open_fresh_plane, open_recovered, SharedCore,
};
use super::{
    lock, validate_config, QueryService, QueryTicket, ServiceConfig, ServiceError, ServiceStats,
};
use crate::config::EngineConfig;
use crate::durability::RecoveryOutcome;
use crate::engine::DistributedEngine;
use crate::query::{KhopQuery, QueryResult};
use cgraph_cache::HeatTable;
use cgraph_graph::delta::UpdateBatch;
use cgraph_graph::EdgeList;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs of the deterministic query [`Router`]. All scoring is
/// integer arithmetic over seeded, wall-clock-free inputs, so two
/// runs with the same stream route identically.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Seed of the partition→home-replica assignment. Different seeds
    /// rotate which replica is "home" for which partition; the same
    /// seed reproduces the assignment exactly.
    pub seed: u64,
    /// Score weight of a query landing on its partition's home
    /// replica. Dominant by default: locality decides unless heat
    /// differences are enormous.
    pub locality_weight: i64,
    /// Score weight per unit of cache heat the candidate replica holds
    /// for the query's partition — the tiebreak that follows results
    /// already cached away from home (e.g. after a replica was down).
    pub heat_weight: i64,
    /// Score penalty per query already routed to the candidate — 0 by
    /// default (pure locality/heat); raise it to shed load toward
    /// less-used replicas.
    pub balance_weight: i64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { seed: 0, locality_weight: 1 << 20, heat_weight: 1, balance_weight: 0 }
    }
}

/// Why the router picked the replica it picked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteKind {
    /// The query went to its partition's home replica.
    Locality,
    /// A non-home replica won on cache heat for the partition.
    Heat,
    /// Neither locality nor heat decided (home down, or a balance
    /// penalty shifted the pick).
    Balance,
}

/// One routing decision: where a query went, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteDecision {
    /// Index of the chosen replica.
    pub replica: usize,
    /// What decided the pick.
    pub kind: RouteKind,
}

/// Lifetime routing counters, per replica and per decision kind.
#[derive(Clone, Debug, Default)]
pub struct RouterStats {
    /// Queries routed to each replica, by replica index.
    pub routed: Vec<u64>,
    /// Queries that landed on their partition's home replica.
    pub locality: u64,
    /// Queries steered off home by cache heat.
    pub heat_steered: u64,
    /// Queries placed by neither locality nor heat.
    pub balance: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic partition-locality router with a cache-heat tiebreak.
///
/// Every partition has a *home* replica — a seeded rotation of the
/// partition id — and candidates are scored
/// `locality_weight·[r == home] + heat_weight·heat(r, p) −
/// balance_weight·routed(r)` in ring order from home (ties keep the
/// earliest candidate, i.e. home itself). Replicas marked down are
/// skipped, so a single failed front-end degrades routing, never
/// availability.
pub struct Router {
    cfg: RouterConfig,
    heat: Arc<HeatTable>,
    /// Seeded rotation added to the partition id (mod replicas).
    offset: usize,
    routed: Vec<AtomicU64>,
    down: Vec<AtomicBool>,
    locality: AtomicU64,
    heat_steered: AtomicU64,
    balance: AtomicU64,
}

impl Router {
    /// A router over `replicas` front-ends sharing `heat`.
    pub fn new(cfg: RouterConfig, replicas: usize, heat: Arc<HeatTable>) -> Self {
        let replicas = replicas.max(1);
        Self {
            offset: (splitmix64(cfg.seed) % replicas as u64) as usize,
            routed: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
            down: (0..replicas).map(|_| AtomicBool::new(false)).collect(),
            locality: AtomicU64::new(0),
            heat_steered: AtomicU64::new(0),
            balance: AtomicU64::new(0),
            cfg,
            heat,
        }
    }

    /// The home replica of `partition` under this router's seed.
    pub fn home(&self, partition: usize) -> usize {
        (partition + self.offset) % self.routed.len()
    }

    /// Picks the replica for a query whose first source lives in
    /// `partition`, and records the decision in the routing counters.
    pub fn route(&self, partition: usize) -> RouteDecision {
        let n = self.routed.len();
        let home = self.home(partition);
        let mut best: Option<(usize, i128)> = None;
        for step in 0..n {
            let r = (home + step) % n;
            if self.down[r].load(Ordering::SeqCst) {
                continue;
            }
            let score = i128::from(self.cfg.locality_weight) * i128::from(r == home)
                + i128::from(self.cfg.heat_weight) * i128::from(self.heat.get(r, partition))
                - i128::from(self.cfg.balance_weight)
                    * i128::from(self.routed[r].load(Ordering::SeqCst));
            // Strict greater: ties keep the earliest ring candidate.
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((r, score));
            }
        }
        // Every replica marked down: fall back to home — the caller's
        // submit will surface the shutdown, which is the truth.
        let (chosen, _) = best.unwrap_or((home, 0));
        self.routed[chosen].fetch_add(1, Ordering::SeqCst);
        let kind = if chosen == home {
            RouteKind::Locality
        } else if self.heat.get(chosen, partition) > self.heat.get(home, partition) {
            RouteKind::Heat
        } else {
            RouteKind::Balance
        };
        match kind {
            RouteKind::Locality => self.locality.fetch_add(1, Ordering::SeqCst),
            RouteKind::Heat => self.heat_steered.fetch_add(1, Ordering::SeqCst),
            RouteKind::Balance => self.balance.fetch_add(1, Ordering::SeqCst),
        };
        RouteDecision { replica: chosen, kind }
    }

    /// Takes `replica` out of the candidate set (e.g. it was shut
    /// down); its partitions re-home to the next ring candidate.
    pub fn mark_down(&self, replica: usize) {
        if let Some(d) = self.down.get(replica) {
            d.store(true, Ordering::SeqCst);
        }
    }

    /// Snapshot of the lifetime routing counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            routed: self.routed.iter().map(|c| c.load(Ordering::SeqCst)).collect(),
            locality: self.locality.load(Ordering::SeqCst),
            heat_steered: self.heat_steered.load(Ordering::SeqCst),
            balance: self.balance.load(Ordering::SeqCst),
        }
    }
}

/// Configuration of a [`ServiceGroup`]: how many front-end replicas,
/// how to route, and the per-service knobs every replica shares.
#[derive(Clone)]
pub struct GroupConfig {
    /// Number of front-end replicas (clamped to at least 1). Each gets
    /// its own admission queue, result cache, coalescer and dispatcher
    /// thread; `service.query_plane.cache_capacity_bytes` is
    /// *per replica*, so the group's aggregate cache scales with N.
    pub replicas: usize,
    /// Router knobs (seed, locality/heat/balance weights).
    pub router: RouterConfig,
    /// The service configuration every replica runs under.
    pub service: ServiceConfig,
}

impl Default for GroupConfig {
    fn default() -> Self {
        Self { replicas: 1, router: RouterConfig::default(), service: ServiceConfig::default() }
    }
}

/// N replicated query front-ends over one shared engine, cluster,
/// mutation buffer and durability plane, behind a deterministic
/// locality/heat [`Router`].
///
/// Every replica is a full [`QueryService`] — the solo service *is* a
/// group of one — so everything a service guarantees holds per
/// replica, plus the group-wide guarantees: epoch commits and
/// degradations fence **all** replicas (any dispatcher commits, under
/// the shared exec lock, strictly between batches group-wide), and
/// results never leak across epochs or replicas uncommitted.
pub struct ServiceGroup {
    core: Arc<SharedCore>,
    members: Vec<QueryService>,
    router: Arc<Router>,
}

impl ServiceGroup {
    /// Starts a group serving `engine`, panicking on invalid
    /// configuration (the [`ServiceGroup::try_start`] failure modes).
    pub fn start(engine: Arc<DistributedEngine>, config: GroupConfig) -> Self {
        Self::try_start(engine, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ServiceGroup::start`] with the failure modes surfaced — the
    /// same contract as [`QueryService::try_start`], applied once to
    /// the shared state (one data directory, one initial snapshot).
    pub fn try_start(
        engine: Arc<DistributedEngine>,
        config: GroupConfig,
    ) -> Result<Self, ServiceError> {
        validate_config(&config.service)?;
        let durability = open_fresh_plane(&engine, &config.service)?;
        Ok(Self::assemble(engine, config, durability, Vec::new(), None))
    }

    /// Starts a group over the durable state in
    /// `config.service.durability.dir`, recovering whatever committed
    /// state survives there — [`QueryService::open_or_recover`], group
    /// sized. Exactly one recovery runs however many replicas serve.
    pub fn open_or_recover(
        edges: &EdgeList,
        engine_config: EngineConfig,
        config: GroupConfig,
    ) -> Result<(Self, RecoveryOutcome), ServiceError> {
        validate_config(&config.service)?;
        let (engine, plane, pending, outcome) =
            open_recovered(edges, engine_config, &config.service)?;
        let group = Self::assemble(engine, config, Some(plane), pending, Some(&outcome));
        Ok((group, outcome))
    }

    fn assemble(
        engine: Arc<DistributedEngine>,
        config: GroupConfig,
        durability: Option<crate::durability::DurabilityPlane>,
        restored_pending: Vec<cgraph_graph::delta::EdgeUpdate>,
        recovery: Option<&RecoveryOutcome>,
    ) -> Self {
        let n = config.replicas.max(1);
        let heat = Arc::new(HeatTable::new(n, engine.partition().num_partitions()));
        let core = SharedCore::new(
            engine,
            config.service,
            durability,
            restored_pending,
            recovery,
            Some(Arc::clone(&heat)),
        );
        if let Some(o) = &core.obs {
            o.router_replicas.set(n as i64);
        }
        let members = (0..n).map(|i| QueryService::attach(&core, i)).collect();
        let router = Arc::new(Router::new(config.router, n, heat));
        Self { core, members, router }
    }

    /// Number of front-end replicas in the group.
    pub fn replicas(&self) -> usize {
        self.members.len()
    }

    /// Direct handle to replica `i` — for targeting a specific
    /// front-end (tests, per-replica drains).
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.replicas()`.
    pub fn replica(&self, i: usize) -> &QueryService {
        &self.members[i]
    }

    /// Lanes per batch after the memory budget (fixed at start-up,
    /// identical across replicas).
    pub fn effective_lanes(&self) -> usize {
        self.core.lanes
    }

    /// Routes `query` by its first source's partition (locality, with
    /// the cache-heat tiebreak) and admits it on the chosen replica.
    /// Empty or out-of-range queries go to replica 0, whose admission
    /// path produces the exact single-service behaviour (immediate
    /// completion / [`ServiceError::InvalidQuery`]).
    pub fn submit(&self, query: KhopQuery) -> Result<QueryTicket, ServiceError> {
        let idx = match query.sources.first() {
            Some(&s) => {
                let engine = Arc::clone(&lock(&self.core.live_engine));
                if s < engine.num_vertices() {
                    let d = self.router.route(engine.partition().owner(s));
                    if let Some(o) = &self.core.obs {
                        o.router_queries_routed.inc();
                        match d.kind {
                            RouteKind::Locality => o.router_locality.inc(),
                            RouteKind::Heat => o.router_heat_steered.inc(),
                            RouteKind::Balance => {}
                        }
                    }
                    d.replica
                } else {
                    0
                }
            }
            None => 0,
        };
        submit(&self.core, &self.members[idx].replica, query)
    }

    /// Submits `query` and blocks for its result (submit + wait).
    pub fn query(&self, query: KhopQuery) -> Result<QueryResult, ServiceError> {
        self.submit(query)?.wait()
    }

    /// Buffers `batch`'s edge updates for the next epoch commit —
    /// shared across the group; see [`QueryService::apply_updates`].
    pub fn apply_updates(&self, batch: UpdateBatch) -> Result<(), ServiceError> {
        apply_updates_core(&self.core, batch.into_updates())
    }

    /// Runs the full group-wide commit protocol and returns the new
    /// epoch; see [`QueryService::commit_epoch`]. Any replica's
    /// dispatcher may perform the commit — all of them are fenced.
    pub fn commit_epoch(&self) -> Result<u64, ServiceError> {
        commit_epoch_core(&self.core)
    }

    /// Current graph epoch (shared by every replica).
    pub fn graph_epoch(&self) -> u64 {
        self.core.epoch.load(Ordering::SeqCst)
    }

    /// Commits the (possibly empty) update buffer, fencing **every**
    /// replica's cache; see [`QueryService::invalidate_cache`].
    pub fn invalidate_cache(&self) -> u64 {
        self.commit_epoch().unwrap_or_else(|_| self.graph_epoch())
    }

    /// Group-wide stats snapshot: shared planes once, per-replica
    /// cache occupancy summed. Taken under the stats fence, so no
    /// commit can be half-visible across planes.
    pub fn stats(&self) -> ServiceStats {
        self.core.stats()
    }

    /// Snapshot of the router's lifetime decision counters.
    pub fn router_stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// Shuts down replica `i` alone: it drains its own queue and
    /// leaves the candidate set, while the shared cluster, WAL and
    /// every sibling keep serving. The *last* replica shut down runs
    /// the group-wide barrier (WAL sync + cluster park) exactly once.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.replicas()`.
    pub fn shutdown_replica(&self, i: usize) {
        self.router.mark_down(i);
        self.members[i].shutdown();
    }

    /// Stops admission on every replica, drains every already-admitted
    /// query, then (from the last replica out) syncs the WAL and parks
    /// the shared cluster. Idempotent; also runs on drop (each member
    /// shuts down when dropped).
    pub fn shutdown(&self) {
        for (i, m) in self.members.iter().enumerate() {
            self.router.mark_down(i);
            m.shutdown();
        }
    }
}
