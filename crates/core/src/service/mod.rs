//! The persistent streaming query service — the serving-path
//! extension of §3.3.
//!
//! [`crate::scheduler::QueryScheduler`] answers one *closed* batch of
//! queries handed over all at once. A serving deployment instead sees
//! an **open stream**: queries arrive at arbitrary times from many
//! client threads and each wants an answer as soon as possible.
//! [`QueryService`] bridges the two worlds:
//!
//! * an **admission queue** collects incoming [`KhopQuery`]s from any
//!   number of submitter threads, applying queue-depth backpressure
//!   ([`ServiceConfig::max_queue_depth`]): submitters block while the
//!   queue is full, so an overloaded service slows producers instead
//!   of growing without bound;
//! * a **dispatcher thread** packs queued traversals into bit-frontier
//!   batches with a *fill-or-deadline* policy — a batch goes out as
//!   soon as [`QueryService::effective_lanes`] traversals are waiting,
//!   or when the oldest admitted traversal has waited
//!   [`ServiceConfig::max_batch_delay`], whichever comes first. The
//!   lane width honours [`SchedulerConfig::memory_budget_bytes`]
//!   exactly like the closed-batch scheduler;
//! * batches execute on a long-lived
//!   [`cgraph_comm::PersistentCluster`] via
//!   [`DistributedEngine::run_traversal_batch_on`], so no machine
//!   threads are spawned per batch — the serving path amortises thread
//!   start-up across the whole stream;
//! * per-query latency — admission wait plus batch execution — flows
//!   into [`ResponseStats`], the same distributions every figure of §4
//!   reports.
//!
//! # Query plane
//!
//! Between admission and the engine sits an optional **query plane**
//! ([`QueryPlaneConfig`]) exploiting the redundancy of real request
//! streams (the paper's "heavy traffic from millions of users" is
//! Zipf-skewed — the same hot sources are queried over and over):
//!
//! * a **result cache** ([`cgraph_cache::ResultCache`]) answers
//!   repeated `(source, k)` queries without burning a lane: bounded in
//!   bytes, CLOCK-evicted on a logical clock (no wall time — runs are
//!   reproducible), keyed by `(source, k, graph_epoch)` and
//!   invalidated wholesale by [`QueryService::invalidate_cache`].
//!   Only *committed* batches populate it: insertion happens exactly
//!   once, on the engine's `Ok` return, after every in-batch recovery
//!   and retry has resolved — a crashed or degraded attempt can never
//!   leak partial state into the cache;
//! * an **in-flight coalescer** ([`cgraph_cache::Coalescer`])
//!   single-flights identical traversals: while one executes, every
//!   duplicate — queued behind it or arriving mid-batch — attaches to
//!   that execution and shares its result (or its failure);
//! * a **locality-aware packer** ([`cgraph_cache::pack_locality`])
//!   fills batches with queries whose sources share partition ranges,
//!   under a strict fairness bound so cold-partition queries are
//!   delayed at most [`QueryPlaneConfig::locality_fairness`] batches;
//! * independent of all knobs, batch formation **never spends two
//!   lanes on identical `(source, k)` traversals**: duplicates inside
//!   one batch window always collapse into a single lane.
//!
//! # Index tier
//!
//! With [`ServiceConfig::index`] set, the service keeps a
//! [`ReachIndex`](crate::index_api::ReachIndex) built for the
//! engine's current epoch (see
//! `INDEXING.md` for the design contract):
//!
//! * traversals whose `(source, k)` the index covers exactly are
//!   answered **index-only** — at admission or during batch
//!   formation, without spending a lane, bit-identical to what the
//!   traversal would have returned;
//! * traversals that do execute carry the index's per-partition
//!   level-set masks into the engine, which suppresses cross-machine
//!   frontier deliveries that are provably no-ops (sound pruning:
//!   answers are untouched, wire traffic and absorb work shrink);
//! * the index is versioned by graph epoch and consulted **only**
//!   while its epoch matches the serving snapshot's — every epoch
//!   commit (and every degradation) rebuilds it before the next batch
//!   forms, so a stale index can never answer or prune.
//!
//! # Mutation plane
//!
//! [`QueryService::apply_updates`] buffers edge insertions/deletions
//! ([`cgraph_graph::UpdateBatch`]) without touching the serving
//! snapshot; [`QueryService::commit_epoch`] — or crossing
//! [`MutationConfig::commit_threshold`] — asks the dispatcher to fold
//! them in **between batches**: batch formation is naturally quiesced
//! (the dispatcher is single-threaded), the buffered updates become a
//! new engine snapshot via [`DistributedEngine::with_updates`]
//! (delta-overlay publish, or a full CSR/CSC fold past
//! [`MutationConfig::fold_threshold`]), the graph epoch advances, and
//! stale cache entries are fenced with
//! [`cgraph_cache::ResultCache::invalidate_before`]. Batches already
//! dispatched finish against their admission-epoch snapshot — every
//! [`QueryResult::epoch`] names the snapshot that produced it. There
//! is exactly one epoch-advancement path:
//! [`QueryService::invalidate_cache`] is a commit with no pending
//! updates.
//!
//! # Fault-tolerance policy
//!
//! The service layers *policy* over the engine's recovery *mechanism*
//! ([`DistributedEngine::run_traversal_batch_recoverable`]):
//!
//! * **chaos plane** — [`ServiceConfig::fault_plan`] installs a
//!   deterministic [`FaultPlan`]; each dispatched batch becomes one
//!   chaos *job* (`job = batch sequence number`), so a plan armed for
//!   a job window poisons exactly those batches and no others;
//! * **retry with backoff** — a batch that still fails after the
//!   engine's in-batch recoveries is retried up to
//!   [`ServiceConfig::max_retries`] times with exponential backoff
//!   plus deterministic jitter; retry attempts are salted
//!   (`first_attempt = retry × (max_recoveries + 1)`) so a healing
//!   plan sees monotone attempt numbers across the whole batch life;
//! * **failure isolation** — a batch that exhausts its retries fails
//!   only its own lanes ([`ServiceError::BatchFailed`]); queued and
//!   future queries keep flowing on the surviving cluster;
//! * **per-query deadlines** — [`ServiceConfig::query_deadline`]
//!   bounds each query's end-to-end latency: expired traversals are
//!   failed with [`ServiceError::DeadlineExceeded`] before dispatch,
//!   and [`QueryTicket::wait`] enforces the same bound client-side;
//! * **graceful degradation** — when the same machine is blamed for
//!   [`ServiceConfig::degrade_after`] panics, the dispatcher
//!   re-partitions the graph onto `p - 1` machines
//!   ([`DistributedEngine::repartitioned`]) and replaces the cluster;
//!   degrading does not consume a retry.
//!
//! # Example
//!
//! ```
//! use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryService, ServiceConfig};
//! use std::sync::Arc;
//!
//! let ring: cgraph_graph::EdgeList = (0..12u64).map(|v| (v, (v + 1) % 12)).collect();
//! let engine = Arc::new(DistributedEngine::new(&ring, EngineConfig::new(2)));
//! let service = QueryService::start(engine, ServiceConfig::default());
//! // `query` = submit + wait; any number of threads may call it.
//! let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
//! assert_eq!(r.visited, 4); // vertices 0..=3 on the ring
//! assert_eq!(service.stats().queries_completed, 1);
//! service.shutdown();
//! ```

use crate::config::EngineConfig;
use crate::durability::{DurabilityConfig, RecoveryOutcome};
use crate::engine::DistributedEngine;
use crate::index_api::IndexBuilder;
use crate::metrics::ResponseStats;
use crate::query::{KhopQuery, QueryResult};
use crate::recovery::RecoveryConfig;
use crate::scheduler::SchedulerConfig;
use cgraph_comm::chaos::FaultPlan;
use cgraph_graph::delta::UpdateBatch;
use cgraph_graph::snapshot::DiskFaults;
use cgraph_graph::EdgeList;
use cgraph_obs::Obs;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a submitted query could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has been shut down (or its dispatcher is gone); no
    /// further queries are accepted.
    ShutDown,
    /// The batch carrying this query failed — a machine of the
    /// persistent cluster panicked mid-execution and every recovery
    /// and retry was exhausted. The message is the underlying cluster
    /// error; the service itself keeps serving.
    BatchFailed(String),
    /// The query's [`ServiceConfig::query_deadline`] elapsed before a
    /// result was produced.
    DeadlineExceeded,
    /// The query was rejected at admission: a source vertex lies
    /// outside the graph's vertex range. Caught before batching so a
    /// malformed query can never take down the batch it would have
    /// shared lanes with.
    InvalidQuery(String),
    /// The service configuration is invalid — a knob holds a value the
    /// service cannot run with (zero checkpoint interval, zero commit
    /// threshold, zero snapshot cadence). Caught at construction by
    /// [`QueryService::try_start`] / [`QueryService::open_or_recover`],
    /// before any thread is spawned or file is touched.
    InvalidConfig(String),
    /// The durability plane failed: the data directory could not be
    /// opened, the WAL could not be appended, or recovery found
    /// internally inconsistent durable state.
    Durability(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShutDown => write!(f, "query service is shut down"),
            ServiceError::BatchFailed(msg) => {
                write!(f, "batch execution failed: {msg}")
            }
            ServiceError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ServiceError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            ServiceError::InvalidConfig(msg) => {
                write!(f, "invalid service configuration: {msg}")
            }
            ServiceError::Durability(msg) => write!(f, "durability failure: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Knobs of the query plane sitting between admission and the engine:
/// result caching, in-flight coalescing and locality-aware packing.
/// Everything defaults to *off*, in which case batch formation is
/// byte-identical to the plain FIFO fill-or-deadline service (except
/// that identical traversals never occupy two lanes of one batch —
/// that de-duplication is unconditional).
#[derive(Clone, Debug)]
pub struct QueryPlaneConfig {
    /// Result-cache capacity in bytes (`None` — the default — disables
    /// the cache). Entries are charged their real payload size plus a
    /// fixed overhead; eviction is deterministic CLOCK on a logical
    /// clock, so a given admission order always evicts the same keys.
    pub cache_capacity_bytes: Option<usize>,
    /// Coalesce identical `(source, k)` traversals onto executions
    /// already in flight, and let one lane answer every queued
    /// duplicate of its key.
    pub coalesce: bool,
    /// Pack batches by source partition locality instead of plain
    /// FIFO when the queue overflows one batch.
    pub pack_locality: bool,
    /// Fairness bound for locality packing: a traversal passed over
    /// this many batches is promoted to mandatory, so cold-partition
    /// queries are delayed at most this many batches, never starved.
    /// `0` degenerates locality packing to FIFO.
    pub locality_fairness: u32,
}

impl Default for QueryPlaneConfig {
    fn default() -> Self {
        Self {
            cache_capacity_bytes: None,
            coalesce: false,
            pack_locality: false,
            locality_fairness: 4,
        }
    }
}

/// Knobs of the mutation plane: when buffered edge updates are folded
/// into a new serving snapshot.
#[derive(Clone, Copy, Debug)]
pub struct MutationConfig {
    /// Buffered-update count at which the dispatcher commits a new
    /// epoch on its own, without waiting for an explicit
    /// [`QueryService::commit_epoch`]. `None` (the default) commits
    /// only on explicit request.
    pub commit_threshold: Option<usize>,
    /// Delta-overlay entry count above which a commit folds the
    /// overlay into fresh base CSR/CSC edge-sets instead of publishing
    /// the overlay next to the base (see
    /// [`DistributedEngine::with_updates`]).
    pub fold_threshold: usize,
}

impl Default for MutationConfig {
    fn default() -> Self {
        Self { commit_threshold: None, fold_threshold: 1 << 16 }
    }
}

/// Tuning knobs for a [`QueryService`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Batch shaping shared with the closed-batch scheduler: lane
    /// width, subgraph sharing, and the memory budget that narrows the
    /// effective lane count. (`use_sim_time` is ignored — a serving
    /// latency is inherently wall clock.)
    pub scheduler: SchedulerConfig,
    /// How long the oldest admitted traversal may wait before a
    /// partially-filled batch is flushed anyway. Trades per-query
    /// latency against batch fill (throughput).
    pub max_batch_delay: Duration,
    /// Admission-queue depth, in traversals, above which submitters
    /// block. A query's traversals are always admitted together, so
    /// the queue may transiently overshoot by one query's source count.
    pub max_queue_depth: usize,
    /// Deterministic chaos plan injected into every dispatched batch
    /// (the batch sequence number is the chaos *job*, so
    /// [`FaultPlan::arm_jobs`] selects which batches are poisoned).
    /// `None` (the default) runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// End-to-end deadline applied to every query from its submission
    /// instant. Expired traversals fail with
    /// [`ServiceError::DeadlineExceeded`] instead of being dispatched,
    /// and [`QueryTicket::wait`] stops waiting at the same instant.
    /// `None` (the default) means queries wait indefinitely.
    pub query_deadline: Option<Duration>,
    /// Query-plane knobs: result cache, in-flight coalescing and
    /// locality-aware packing. All off by default.
    pub query_plane: QueryPlaneConfig,
    /// Reachability-index builder (see `INDEXING.md`). `None` — the
    /// default — serves without an index. When set, the builder runs
    /// once at start-up and again inside every epoch commit and
    /// degradation, so the live index always matches the serving
    /// snapshot; covered queries are answered index-only and executed
    /// batches are pruned. A failed build logs and serves unindexed —
    /// the index is an accelerator, never a correctness dependency.
    pub index: Option<Arc<dyn IndexBuilder>>,
    /// Mutation-plane knobs: commit trigger and delta fold threshold.
    pub mutation: MutationConfig,
    /// Durability-plane knobs: data directory, snapshot cadence and
    /// retention. `None` (the default) serves purely in memory; set it
    /// and start with [`QueryService::open_or_recover`] to survive
    /// `kill -9` — every update batch is WAL-logged before it is
    /// buffered and every epoch commit is fenced on disk.
    pub durability: Option<DurabilityConfig>,
    /// Whole-batch resubmissions after the engine's in-batch
    /// recoveries are exhausted on a recoverable error.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per retry, plus a
    /// deterministic jitter in `[0, retry_backoff)`.
    pub retry_backoff: Duration,
    /// Checkpointing/in-batch recovery knobs handed to
    /// [`DistributedEngine::run_traversal_batch_recoverable`].
    pub recovery: RecoveryConfig,
    /// Degrade to `p - 1` machines once the same machine has been
    /// blamed for this many panics (`None` — the default — never
    /// degrades). Degrading re-partitions the graph, replaces the
    /// persistent cluster, resets blame, and does not consume a retry.
    pub degrade_after: Option<u32>,
    /// Observability bundle shared across the whole stack. When set,
    /// the service registers its own metrics (queue depth, lane
    /// occupancy, latency histograms, query/batch counters), installs
    /// the bundle on the persistent cluster (comm-layer link/chaos
    /// counters and per-machine tracers, re-installed across
    /// degradations), and emits dispatcher trace events on the
    /// coordinator ring. `None` (the default) runs unobserved at zero
    /// cost.
    pub obs: Option<Arc<Obs>>,
    /// Fault-injection seam predating the chaos plane: called with the
    /// machine id at the start of every machine's share of every
    /// batch. When set, batches run on the legacy non-recoverable path
    /// (no checkpoints, no retries).
    #[deprecated(since = "0.2.0", note = "use `fault_plan` (a deterministic FaultPlan) instead")]
    pub fault_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl Default for ServiceConfig {
    #[allow(deprecated)]
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            max_batch_delay: Duration::from_millis(2),
            max_queue_depth: 1024,
            fault_plan: None,
            query_deadline: None,
            query_plane: QueryPlaneConfig::default(),
            index: None,
            mutation: MutationConfig::default(),
            durability: None,
            max_retries: 2,
            retry_backoff: Duration::from_micros(200),
            recovery: RecoveryConfig::default(),
            degrade_after: None,
            obs: None,
            fault_hook: None,
        }
    }
}

impl fmt::Debug for ServiceConfig {
    #[allow(deprecated)]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("scheduler", &self.scheduler)
            .field("max_batch_delay", &self.max_batch_delay)
            .field("max_queue_depth", &self.max_queue_depth)
            .field("fault_plan", &self.fault_plan)
            .field("query_deadline", &self.query_deadline)
            .field("query_plane", &self.query_plane)
            .field("index", &self.index.is_some())
            .field("mutation", &self.mutation)
            .field("durability", &self.durability)
            .field("max_retries", &self.max_retries)
            .field("retry_backoff", &self.retry_backoff)
            .field("recovery", &self.recovery)
            .field("degrade_after", &self.degrade_after)
            .field("obs", &self.obs.is_some())
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

/// Handle to one in-flight query: redeem it with
/// [`QueryTicket::wait`] for the result.
pub struct QueryTicket {
    rx: crossbeam_channel::Receiver<Result<QueryResult, ServiceError>>,
    /// The query's absolute deadline (admission instant plus
    /// [`ServiceConfig::query_deadline`]), enforced by `wait`.
    deadline: Option<Instant>,
}

impl fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryTicket").field("deadline", &self.deadline).finish_non_exhaustive()
    }
}

impl QueryTicket {
    /// Blocks until the query's batch (or batches) completed and
    /// returns its result. With a [`ServiceConfig::query_deadline`]
    /// configured, waits at most until the query's deadline and then
    /// returns [`ServiceError::DeadlineExceeded`].
    pub fn wait(self) -> Result<QueryResult, ServiceError> {
        match self.deadline {
            None => self.rx.recv().unwrap_or(Err(ServiceError::ShutDown)),
            Some(d) => match self.rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                Ok(reply) => reply,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    Err(ServiceError::DeadlineExceeded)
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    Err(ServiceError::ShutDown)
                }
            },
        }
    }

    /// Non-blocking poll; `None` while the query is still in flight.
    /// A dead dispatcher (result channel disconnected before a reply
    /// arrived) yields `Some(Err(ServiceError::ShutDown))`, so pollers
    /// never spin on a query that can no longer complete; likewise an
    /// expired deadline yields `Some(Err(ServiceError::DeadlineExceeded))`.
    pub fn try_wait(&self) -> Option<Result<QueryResult, ServiceError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(crossbeam_channel::TryRecvError::Empty) => {
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    Some(Err(ServiceError::DeadlineExceeded))
                } else {
                    None
                }
            }
            Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Err(ServiceError::ShutDown)),
        }
    }
}

/// Latency and volume counters accumulated over the service lifetime.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries_completed: u64,
    /// Queries failed by a dying batch.
    pub queries_failed: u64,
    /// Queries failed because their deadline elapsed (included in
    /// `queries_failed`).
    pub queries_deadline_exceeded: u64,
    /// Batches dispatched to the persistent cluster (successful ones).
    pub batches_dispatched: u64,
    /// Whole-batch resubmissions by the service retry policy.
    pub retries: u64,
    /// In-batch recoveries performed by the engine (confined replays
    /// plus global rollbacks).
    pub recoveries: u64,
    /// Superstep checkpoints committed across all batches.
    pub checkpoints_taken: u64,
    /// Checkpoint restores (confined replays and global rollbacks that
    /// resumed from a committed checkpoint).
    pub checkpoints_restored: u64,
    /// Failed partitions replayed confined, without re-executing
    /// healthy partitions.
    pub partitions_replayed: u64,
    /// Whole-batch rollbacks (the fallback when confined recovery's
    /// preconditions fail, and the only recovery mode in async).
    pub full_rollbacks: u64,
    /// Times the service degraded onto a smaller cluster after
    /// repeated same-machine failures.
    pub degraded_generations: u64,
    /// Traversals answered from the result cache (no lane spent).
    /// Each admitted traversal records at most one hit over its life.
    pub cache_hits: u64,
    /// Admission-time cache lookups that found nothing (zero while the
    /// cache is disabled). A traversal that misses at admission may
    /// still hit at pack time if an earlier batch committed its key.
    pub cache_misses: u64,
    /// Entries committed into the result cache (one per lane of each
    /// successfully committed batch, minus epoch-stale lanes).
    pub cache_insertions: u64,
    /// Entries the CLOCK hand evicted to make room.
    pub cache_evictions: u64,
    /// Entries currently resident in the result cache.
    pub cache_entries: u64,
    /// Bytes currently charged against the cache capacity.
    pub cache_bytes: u64,
    /// Traversals that shared another traversal's execution instead of
    /// occupying a lane: in-batch duplicates (always collapsed),
    /// queued duplicates and mid-flight attaches (with coalescing on).
    pub coalesced_traversals: u64,
    /// Reachability-index builds: the start-up build plus one rebuild
    /// per epoch commit and per degradation (zero without
    /// [`ServiceConfig::index`], like every index counter below).
    pub index_builds: u64,
    /// Traversals answered index-only — straight from a distance
    /// sketch, bit-identical to a traversal, no lane spent.
    pub index_only_answers: u64,
    /// Cross-machine frontier entries suppressed by index pruning
    /// (provably no-op deliveries dropped before the wire).
    pub index_pruned_sends: u64,
    /// Whole per-partition frontier messages index pruning emptied —
    /// `(superstep, partition)` deliveries that never left the sender.
    pub index_pruned_partitions: u64,
    /// Boundary sources the live index holds sketches for.
    pub index_sources: u64,
    /// Estimated resident bytes of the live index.
    pub index_bytes: u64,
    /// Edge updates folded into a committed epoch (accepted by
    /// [`QueryService::apply_updates`] and since committed).
    pub updates_applied: u64,
    /// Edge insertions among the committed updates.
    pub updates_inserted: u64,
    /// Edge deletions among the committed updates.
    pub updates_deleted: u64,
    /// Epoch commits performed: explicit [`QueryService::commit_epoch`]
    /// calls, threshold-triggered commits, and
    /// [`QueryService::invalidate_cache`] bumps.
    pub epoch_commits: u64,
    /// Commits that folded the delta overlay into fresh base CSR/CSC
    /// edge-sets (subset of `epoch_commits`).
    pub epoch_folds: u64,
    /// Edge updates buffered but not yet committed.
    pub pending_updates: u64,
    /// Delta-overlay adjacency rows live in the serving snapshot
    /// (committed updates not yet folded into the base).
    pub delta_entries: u64,
    /// Estimated bytes of the live delta overlays.
    pub delta_bytes: u64,
    /// WAL records appended — update batches plus commit fences (zero
    /// with durability off, like every durability counter below).
    pub wal_records: u64,
    /// Bytes appended to the update WAL.
    pub wal_bytes: u64,
    /// Epoch snapshots that reached their final name on disk.
    pub snapshots_written: u64,
    /// Bytes of encoded snapshot data written (including writes whose
    /// rename was lost to fault injection).
    pub snapshot_bytes: u64,
    /// WAL records replayed by recovery when this service opened.
    pub wal_replayed: u64,
    /// Snapshot files rejected by checksum/decode during recovery.
    pub snapshots_corrupt: u64,
    /// Crash recoveries performed (1 when this service was rebuilt
    /// from durable state by [`QueryService::open_or_recover`]).
    pub durable_recoveries: u64,
    /// Epoch of the newest snapshot on disk.
    pub last_snapshot_epoch: u64,
    /// Per-query admission wait: submission → batch dispatch (mean
    /// over the query's traversals).
    pub admission_wait: ResponseStats,
    /// Per-query execution time: the lane-completion share of its
    /// batch, exactly as the closed-batch scheduler accounts it.
    pub exec: ResponseStats,
    /// Per-query end-to-end response: admission wait + execution —
    /// what a client of the service observes.
    pub response: ResponseStats,
}
mod group;
mod obs;
mod replica;
mod shared;

pub use group::{
    GroupConfig, RouteDecision, RouteKind, Router, RouterConfig, RouterStats, ServiceGroup,
};

use replica::Replica;
use shared::{apply_updates_core, commit_epoch_core, open_fresh_plane, open_recovered, SharedCore};

/// A long-running query-serving front end over a
/// [`DistributedEngine`] and a [`cgraph_comm::PersistentCluster`].
///
/// Internally a `QueryService` is a *group of one*: it owns one
/// replica (admission queue, result cache, coalescer, dispatcher
/// thread) attached to a shared core (engine, cluster, mutation
/// buffer, durability, epoch). [`ServiceGroup`] attaches N replicas
/// to one core — everything documented here holds per replica there.
///
/// ```
/// use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery,
///                   QueryService, ServiceConfig};
/// use std::sync::Arc;
/// let edges: cgraph_graph::EdgeList = (0..20u64).map(|v| (v, (v + 1) % 20)).collect();
/// let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(2)));
/// let service = QueryService::start(engine, ServiceConfig::default());
/// let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
/// assert_eq!(r.visited, 4); // ring: k hops reach k + 1 vertices
/// service.shutdown();
/// ```
pub struct QueryService {
    core: Arc<SharedCore>,
    replica: Arc<Replica>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl QueryService {
    /// Spawns the persistent cluster (one parked thread per engine
    /// machine) and the dispatcher, then starts accepting queries.
    ///
    /// # Panics
    ///
    /// On an invalid configuration or a durability failure — this is
    /// the infallible-signature convenience over
    /// [`QueryService::try_start`], which returns the error instead.
    pub fn start(engine: Arc<DistributedEngine>, config: ServiceConfig) -> Self {
        Self::try_start(engine, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`QueryService::start`] with the failure modes surfaced:
    /// rejects invalid knob values ([`ServiceError::InvalidConfig`])
    /// before any thread is spawned, and — with
    /// [`ServiceConfig::durability`] set — opens the data directory
    /// for a *fresh* durable run, writing the initial epoch snapshot.
    /// A directory already holding durable state is refused
    /// ([`ServiceError::Durability`]): restarting over existing state
    /// is what [`QueryService::open_or_recover`] is for, and silently
    /// overwriting it would discard committed updates.
    pub fn try_start(
        engine: Arc<DistributedEngine>,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        validate_config(&config)?;
        let plane = open_fresh_plane(&engine, &config)?;
        let core = SharedCore::new(engine, config, plane, Vec::new(), None, None);
        Ok(Self::attach(&core, 0))
    }

    /// Opens (or creates) the durable data directory and resumes from
    /// whatever committed state survives there: the newest snapshot
    /// whose every frame checksums, plus the WAL tail replayed past
    /// its sequence number. Logged-but-uncommitted updates return to
    /// the pending buffer; a torn WAL tail is truncated; the recovered
    /// epoch fences the result cache, so no answer from a pre-crash
    /// epoch can ever be served. On a directory with no usable state
    /// this *is* the fresh durable start, ingesting `edges` at epoch
    /// 0 — so one call site handles first boot and every restart:
    ///
    /// `edges` must be the same base graph the original run started
    /// from (recovery replays the WAL from sequence 0 onto it when no
    /// snapshot survived).
    pub fn open_or_recover(
        edges: &EdgeList,
        engine_config: EngineConfig,
        config: ServiceConfig,
    ) -> Result<(Self, RecoveryOutcome), ServiceError> {
        validate_config(&config)?;
        let (engine, plane, pending, outcome) = open_recovered(edges, engine_config, &config)?;
        let core = SharedCore::new(engine, config, Some(plane), pending, Some(&outcome), None);
        Ok((Self::attach(&core, 0), outcome))
    }

    /// Attaches one front-end replica to `core` and spawns its
    /// dispatcher — the one construction path for both the solo
    /// service and every [`ServiceGroup`] member.
    fn attach(core: &Arc<SharedCore>, id: usize) -> Self {
        let replica = Replica::new(id, &core.config.query_plane);
        lock(&core.replicas).push(Arc::downgrade(&replica));
        core.open_replicas.fetch_add(1, Ordering::SeqCst);
        core.live_replicas.fetch_add(1, Ordering::SeqCst);
        let dispatcher = {
            let core = Arc::clone(core);
            let replica = Arc::clone(&replica);
            std::thread::Builder::new()
                .name(format!("cgraph-dispatcher-{id}"))
                .spawn(move || replica::dispatch_loop(&core, &replica))
                .expect("spawn dispatcher thread")
        };
        Self { core: Arc::clone(core), replica, dispatcher: Mutex::new(Some(dispatcher)) }
    }

    /// Lanes per batch after the memory budget (fixed at start-up).
    pub fn effective_lanes(&self) -> usize {
        self.core.lanes
    }

    /// Admits `query`, blocking while the admission queue is full.
    /// Returns a ticket redeemable for the result, or
    /// [`ServiceError::ShutDown`] once the service is closed.
    pub fn submit(&self, query: KhopQuery) -> Result<QueryTicket, ServiceError> {
        replica::submit(&self.core, &self.replica, query)
    }

    /// Submits `query` and blocks for its result (submit + wait).
    pub fn query(&self, query: KhopQuery) -> Result<QueryResult, ServiceError> {
        self.submit(query)?.wait()
    }

    /// Buffers `batch`'s edge updates for the next epoch commit. The
    /// serving snapshot is untouched until [`QueryService::commit_epoch`]
    /// runs (explicitly, or automatically once the buffer crosses
    /// [`MutationConfig::commit_threshold`]) — queries keep answering
    /// against the current epoch meanwhile. Out-of-range endpoints are
    /// rejected whole-batch with [`ServiceError::InvalidQuery`], so a
    /// malformed update can never poison a commit.
    pub fn apply_updates(&self, batch: UpdateBatch) -> Result<(), ServiceError> {
        apply_updates_core(&self.core, batch.into_updates())
    }

    /// Asks a dispatcher to fold every buffered update into a new
    /// serving snapshot and blocks until it has: batch formation is
    /// quiesced — group-wide, under the shared execution lock — the
    /// buffered updates become a new engine snapshot, the graph epoch
    /// advances by one, and cached results of older epochs are fenced
    /// on **every** attached replica. Returns the new epoch. An empty
    /// buffer still commits — the epoch bump alone invalidates the
    /// caches, which is exactly what [`QueryService::invalidate_cache`]
    /// does.
    pub fn commit_epoch(&self) -> Result<u64, ServiceError> {
        commit_epoch_core(&self.core)
    }

    /// Current graph epoch (bumped by [`QueryService::commit_epoch`]).
    pub fn graph_epoch(&self) -> u64 {
        self.core.epoch.load(Ordering::SeqCst)
    }

    /// Runs the **full commit protocol** with whatever updates happen
    /// to be buffered (usually none) and returns the new epoch. This
    /// *is* [`QueryService::commit_epoch`] — there is exactly one
    /// epoch-advancement path, and it performs every fence step, not
    /// just the cache drop the name suggests:
    ///
    /// 1. a dispatcher quiesces batch formation group-wide (commits
    ///    run under the shared execution lock, strictly between
    ///    batches on every replica), and — with durability on — a
    ///    commit fence is appended and synced to the WAL *before* the
    ///    in-memory commit;
    /// 2. buffered updates (if any) become a new engine snapshot and
    ///    the graph epoch advances by one;
    /// 3. every replica's result cache is fenced: entries keyed to
    ///    older epochs are dropped, new queries key against the new
    ///    epoch, and a batch still in flight for an old epoch is
    ///    barred from committing its results;
    /// 4. the reachability index is **rebuilt** for the new snapshot
    ///    (with [`ServiceConfig::index`] set) — until the rebuild
    ///    lands, the epoch fence keeps the old index from answering
    ///    or pruning anything.
    ///
    /// Batches already dispatched finish against their admission-epoch
    /// snapshot and carry that epoch in their results. On a shut-down
    /// service the epoch is frozen and returned unchanged.
    pub fn invalidate_cache(&self) -> u64 {
        self.commit_epoch().unwrap_or_else(|_| self.graph_epoch())
    }

    /// Snapshot of the lifetime latency/volume counters, taken under
    /// the stats fence: no epoch commit can be half-visible across the
    /// cache/mutation/durability planes of one snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.core.stats()
    }

    /// Stops admission, drains every already-admitted query, then
    /// parks the cluster and joins all service threads. Idempotent;
    /// also runs on drop. In a [`ServiceGroup`] this closes **this
    /// replica only** — the shared cluster, WAL and sibling replicas
    /// keep serving, and the group-wide barrier (WAL sync + cluster
    /// park) runs exactly once, from the last replica out.
    pub fn shutdown(&self) {
        let newly_closed = {
            let mut st = lock(&self.replica.state);
            let newly = !st.closed;
            st.closed = true;
            self.replica.work.notify_all();
            self.replica.space.notify_all();
            newly
        };
        if newly_closed {
            // One decrement per replica, however many times shutdown
            // is called: admission-refusal accounting for
            // `commit_epoch`/`apply_updates` after the group closes.
            self.core.open_replicas.fetch_sub(1, Ordering::SeqCst);
        }
        if let Some(h) = lock(&self.dispatcher).take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Rejects configuration values the service cannot run with — caught
/// here, at construction, instead of surfacing later as a stuck
/// dispatcher (a zero commit threshold would commit on every update)
/// or a batch-time engine error (a zero checkpoint interval).
fn validate_config(config: &ServiceConfig) -> Result<(), ServiceError> {
    if config.recovery.checkpoint_interval == 0 {
        return Err(ServiceError::InvalidConfig(
            "recovery.checkpoint_interval must be non-zero (a zero interval can never \
             commit a checkpoint)"
                .into(),
        ));
    }
    if config.mutation.commit_threshold == Some(0) {
        return Err(ServiceError::InvalidConfig(
            "mutation.commit_threshold must be non-zero; use None for explicit-only commits".into(),
        ));
    }
    if let Some(d) = &config.durability {
        if d.snapshot_every == 0 {
            return Err(ServiceError::InvalidConfig(
                "durability.snapshot_every must be non-zero (the cadence counts commits \
                 between snapshots)"
                    .into(),
            ));
        }
        if d.keep_snapshots == 0 {
            return Err(ServiceError::InvalidConfig(
                "durability.keep_snapshots must be at least 1 (retaining zero snapshots \
                 would prune the recovery point itself)"
                    .into(),
            ));
        }
    }
    Ok(())
}

/// The disk-fault injector selected by the service's chaos plan, if
/// any of its disk probabilities are armed. Disk faults are seeded by
/// the plan but scoped by operation count, not by chaos job — WAL
/// appends and snapshot writes are not batches.
fn disk_faults(config: &ServiceConfig) -> Option<DiskFaults> {
    config.fault_plan.as_ref().filter(|p| p.disk_faulty()).map(|p| {
        DiskFaults::new(
            p.seed,
            p.torn_write_prob,
            p.short_write_prob,
            p.bit_flip_prob,
            p.rename_lost_prob,
        )
    })
}

/// Lock helper that survives a poisoned mutex (a dispatcher panic must
/// not cascade into every submitter).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineError;
    use crate::scheduler::QueryScheduler;
    use std::sync::atomic::AtomicBool;

    fn ring_engine(n: u64, p: usize) -> Arc<DistributedEngine> {
        let g: EdgeList = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Arc::new(DistributedEngine::new(&g, EngineConfig::new(p)))
    }

    #[test]
    fn service_matches_scheduler_counts() {
        let engine = ring_engine(60, 2);
        let queries: Vec<KhopQuery> =
            (0..12).map(|i| KhopQuery::single(i, (i * 5) as u64, 4)).collect();
        let expected = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);

        let service = QueryService::start(Arc::clone(&engine), ServiceConfig::default());
        let tickets: Vec<QueryTicket> =
            queries.iter().map(|q| service.submit(q.clone()).unwrap()).collect();
        for (ticket, exp) in tickets.into_iter().zip(&expected) {
            let got = ticket.wait().unwrap();
            assert_eq!(got.id, exp.id);
            assert_eq!(got.visited, exp.visited);
            assert_eq!(got.per_level, exp.per_level);
        }
        let stats = service.stats();
        assert_eq!(stats.queries_completed, 12);
        assert_eq!(stats.queries_failed, 0);
        assert!(stats.batches_dispatched >= 1);
        assert_eq!(stats.response.len(), 12);
        service.shutdown();
    }

    #[test]
    fn multi_source_query_folds_traversals() {
        let engine = ring_engine(40, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let r = service.query(KhopQuery::multi(3, vec![0, 20], 2)).unwrap();
        assert_eq!(r.visited, 6); // two independent 3-vertex traversals
        assert_eq!(r.per_level, vec![2, 2, 2]);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let engine = ring_engine(30, 1);
        let config =
            ServiceConfig { max_batch_delay: Duration::from_millis(1), ..Default::default() };
        let service = QueryService::start(engine, config);
        // One traversal nowhere near 64 lanes: only the deadline can
        // flush it.
        let r = service.query(KhopQuery::single(0, 0, 3)).unwrap();
        assert_eq!(r.visited, 4);
        assert!(r.response_time >= r.exec_time);
    }

    #[test]
    fn backpressure_blocks_but_everything_completes() {
        let engine = ring_engine(50, 2);
        let config = ServiceConfig {
            max_queue_depth: 2,
            max_batch_delay: Duration::from_micros(200),
            ..Default::default()
        };
        let service = Arc::new(QueryService::start(engine, config));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    (0..8)
                        .map(|i| {
                            let q = KhopQuery::single(t * 8 + i, ((t * 8 + i) % 50) as u64, 2);
                            service.query(q).unwrap().visited
                        })
                        .sum::<u64>()
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 4 * 8 * 3); // every 2-hop ring query reaches 3
        assert_eq!(service.stats().queries_completed, 32);
    }

    #[test]
    fn empty_source_query_completes_immediately() {
        let engine = ring_engine(20, 1);
        // `KhopQuery::multi` rejects empty sources, but the fields are
        // public, so the service must still handle the case.
        let empty = KhopQuery { id: 9, sources: Vec::new(), k: 3 };
        // Scheduler semantics for zero sources: an all-zero result.
        let expected = QueryScheduler::new(&engine, SchedulerConfig::default())
            .execute(std::slice::from_ref(&empty));
        let service = QueryService::start(engine, ServiceConfig::default());
        let ticket = service.submit(empty).unwrap();
        let got = ticket.wait().unwrap();
        assert_eq!(got.id, expected[0].id);
        assert_eq!(got.visited, expected[0].visited);
        assert_eq!(got.per_level, expected[0].per_level);
        assert_eq!(got.response_time, Duration::ZERO);
        assert_eq!(service.stats().queries_completed, 1);
        service.shutdown();
    }

    /// A deterministic index for fence/fast-path plumbing tests: it
    /// answers exactly `(source 5, k 3)` with a sentinel value no ring
    /// traversal could produce, so a sentinel in a result *proves* the
    /// index-only path served it.
    struct SentinelIndex {
        epoch: u64,
    }
    impl crate::index_api::ReachIndex for SentinelIndex {
        fn epoch(&self) -> u64 {
            self.epoch
        }
        fn answer(&self, source: u64, k: u32) -> Option<crate::index_api::IndexAnswer> {
            (source == 5 && k == 3)
                .then(|| crate::index_api::IndexAnswer { visited: 42, per_level: vec![42] })
        }
        fn prune_plan(&self, _: &[u64]) -> Option<crate::index_api::PrunePlan> {
            None
        }
        fn reaches(&self, _: u64, _: u64) -> Option<bool> {
            None
        }
        fn size_bytes(&self) -> usize {
            64
        }
        fn num_sources(&self) -> usize {
            1
        }
    }

    /// Builds a [`SentinelIndex`] at the engine's current epoch (so
    /// rebuilds track commits) or, with `stale` set, at an epoch no
    /// engine will ever reach (so the fence must reject it).
    struct SentinelBuilder {
        stale: bool,
    }
    impl crate::index_api::IndexBuilder for SentinelBuilder {
        fn build(
            &self,
            engine: &DistributedEngine,
        ) -> Result<Arc<dyn crate::index_api::ReachIndex>, EngineError> {
            let epoch = if self.stale { u64::MAX } else { engine.graph_epoch() };
            Ok(Arc::new(SentinelIndex { epoch }))
        }
    }

    #[test]
    fn index_fast_path_answers_covered_queries_only() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            index: Some(Arc::new(SentinelBuilder { stale: false })),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        // Covered: the sentinel proves the index answered, not a lane.
        let covered = service.query(KhopQuery::single(0, 5, 3)).unwrap();
        assert_eq!(covered.visited, 42);
        assert_eq!(covered.per_level, vec![42]);
        // Uncovered: traverses as usual.
        let uncovered = service.query(KhopQuery::single(1, 6, 3)).unwrap();
        assert_eq!(uncovered.visited, 4);
        let stats = service.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_only_answers, 1);
        assert_eq!(stats.index_sources, 1);
        assert_eq!(stats.index_bytes, 64);
        assert_eq!(stats.queries_completed, 2);
        service.shutdown();
    }

    #[test]
    fn index_rebuilds_inside_commit_fence() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            index: Some(Arc::new(SentinelBuilder { stale: false })),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        assert_eq!(service.query(KhopQuery::single(0, 5, 3)).unwrap().visited, 42);
        let e1 = service.commit_epoch().unwrap();
        assert_eq!(e1, 1);
        // The rebuilt index carries the new epoch, so it still answers.
        assert_eq!(service.query(KhopQuery::single(1, 5, 3)).unwrap().visited, 42);
        let stats = service.stats();
        assert_eq!(stats.index_builds, 2, "start-up build + commit rebuild");
        assert_eq!(stats.index_only_answers, 2);
        service.shutdown();
    }

    #[test]
    fn stale_index_never_answers() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            index: Some(Arc::new(SentinelBuilder { stale: true })),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        // The epoch fence rejects the stale index: the covered query
        // traverses and gets the *real* answer, not the sentinel.
        let r = service.query(KhopQuery::single(0, 5, 3)).unwrap();
        assert_eq!(r.visited, 4);
        let stats = service.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_only_answers, 0);
        service.shutdown();
    }

    #[test]
    fn try_wait_polls_to_completion() {
        let engine = ring_engine(20, 1);
        let config =
            ServiceConfig { max_batch_delay: Duration::from_micros(100), ..Default::default() };
        let service = QueryService::start(engine, config);
        let ticket = service.submit(KhopQuery::single(0, 0, 3)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let got = loop {
            match ticket.try_wait() {
                Some(reply) => break reply.unwrap(),
                None => {
                    assert!(Instant::now() < deadline, "query never completed");
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(got.visited, 4);
        service.shutdown();
    }

    #[test]
    fn try_wait_reports_shutdown_on_disconnect() {
        // A ticket whose reply channel died without a reply must not
        // read as "still in flight" — pollers would spin forever.
        let (tx, rx) = crossbeam_channel::unbounded();
        drop(tx);
        let ticket = QueryTicket { rx, deadline: None };
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::ShutDown)));
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let engine = ring_engine(20, 1);
        let service = QueryService::start(engine, ServiceConfig::default());
        service.shutdown();
        let err = service.submit(KhopQuery::single(0, 0, 2)).unwrap_err();
        assert_eq!(err, ServiceError::ShutDown);
        service.shutdown(); // idempotent
    }

    #[test]
    fn out_of_range_source_rejected_at_admission() {
        let engine = ring_engine(20, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let err = service.submit(KhopQuery::single(0, 99, 2)).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidQuery(_)), "{err:?}");
        // Rejection is per-query: the service keeps serving.
        let ok = service.query(KhopQuery::single(1, 3, 2)).unwrap();
        assert_eq!(ok.visited, 3);
        service.shutdown();
    }

    #[test]
    fn chaos_crash_recovers_with_zero_failed_queries() {
        // The acceptance scenario: a machine crash mid-batch in sync
        // mode recovers via confined partition replay from a
        // checkpoint — no query fails, no full rollback happens.
        let engine = ring_engine(64, 4);
        let plan = FaultPlan::new(11).crash(2, 7).heal_after(1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            recovery: RecoveryConfig { checkpoint_interval: 3, max_recoveries: 2 },
            ..Default::default()
        };
        let expected = ring_engine(64, 4).run_traversal_batch(&[0, 16], &[20, 20]).unwrap();
        let service = QueryService::start(engine, config);
        // One multi-source query: both traversals are admitted under a
        // single lock, so they land in exactly one batch (one chaos job).
        let r = service.query(KhopQuery::multi(7, vec![0, 16], 20)).unwrap();
        assert_eq!(r.visited, expected.per_lane_visited.iter().sum::<u64>());
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.queries_completed, 1);
        assert!(stats.recoveries >= 1, "the crash must trigger a recovery");
        assert!(stats.checkpoints_restored >= 1, "recovery must restore from a checkpoint");
        assert_eq!(stats.partitions_replayed, 1, "only the crashed partition replays");
        assert_eq!(stats.full_rollbacks, 0, "confined replay must not roll back globally");
        assert_eq!(stats.retries, 0, "in-batch recovery must not consume service retries");
        service.shutdown();
    }

    #[test]
    fn unrecoverable_plan_fails_only_poisoned_batch() {
        // A never-healing crash armed for job 0 only: the first batch's
        // lanes fail after retries are exhausted, while later queries
        // complete on the same service.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(3).crash(1, 1).arm_jobs(0..1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 1,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let err = service.query(KhopQuery::single(0, 0, 5)).unwrap_err();
        assert!(matches!(err, ServiceError::BatchFailed(_)), "{err:?}");
        // Batch 1 is outside the armed window: it must succeed.
        let ok = service.query(KhopQuery::single(1, 0, 5)).unwrap();
        assert_eq!(ok.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 1);
        assert_eq!(stats.queries_completed, 1);
        assert_eq!(stats.retries, 1, "the poisoned batch consumed its retry");
        service.shutdown();
    }

    #[test]
    fn retry_rescues_batch_that_heals_on_resubmission() {
        // The plan heals only after the engine's own recoveries are
        // exhausted (first_attempt of retry 1 = 1 × (0 + 1) = 1), so
        // success requires a service-level retry.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(8).crash(0, 1).heal_after(1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 2,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 5)).unwrap();
        assert_eq!(r.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recoveries, 0, "max_recoveries = 0 leaves recovery to the retry");
        service.shutdown();
    }

    #[test]
    fn repeated_machine_failures_degrade_to_smaller_cluster() {
        // Machine 1 dies on every attempt, forever. With degrade_after
        // = 2 the service re-partitions onto one machine — where the
        // plan's machine-1 crash can no longer fire — and the query
        // completes without ever failing.
        let engine = ring_engine(40, 2);
        let plan = FaultPlan::new(5).crash(1, 1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(plan),
            max_retries: 4,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
            degrade_after: Some(2),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 5)).unwrap();
        assert_eq!(r.visited, 6);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.degraded_generations, 1);
        service.shutdown();
    }

    #[test]
    fn expired_queries_fail_with_deadline_exceeded() {
        let engine = ring_engine(30, 1);
        let config = ServiceConfig {
            // The dispatcher flushes only after 50 ms, far past the
            // 1 ms query deadline — every query expires pre-dispatch.
            max_batch_delay: Duration::from_millis(50),
            query_deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let ticket = service.submit(KhopQuery::single(0, 0, 3)).unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        // The dispatcher eventually drains the expired traversal and
        // records it.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = service.stats();
            if stats.queries_deadline_exceeded == 1 {
                assert_eq!(stats.queries_failed, 1);
                break;
            }
            assert!(Instant::now() < deadline, "expiry never recorded");
            std::thread::yield_now();
        }
        service.shutdown();
    }

    #[test]
    fn generous_deadline_does_not_affect_results() {
        let engine = ring_engine(30, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_deadline: Some(Duration::from_secs(60)),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let r = service.query(KhopQuery::single(0, 0, 4)).unwrap();
        assert_eq!(r.visited, 5);
        assert_eq!(service.stats().queries_deadline_exceeded, 0);
        service.shutdown();
    }

    #[test]
    fn try_wait_reports_expired_deadline() {
        let (_tx, rx) = crossbeam_channel::unbounded();
        let ticket = QueryTicket { rx, deadline: Some(Instant::now() - Duration::from_millis(1)) };
        assert_eq!(ticket.try_wait(), Some(Err(ServiceError::DeadlineExceeded)));
    }

    fn plane(cache_mb: Option<usize>, coalesce: bool, locality: bool) -> QueryPlaneConfig {
        QueryPlaneConfig {
            cache_capacity_bytes: cache_mb.map(|mb| mb << 20),
            coalesce,
            pack_locality: locality,
            ..Default::default()
        }
    }

    #[test]
    fn cache_hit_serves_repeat_query_without_a_lane() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_plane: plane(Some(1), false, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let a = service.query(KhopQuery::single(0, 4, 3)).unwrap();
        let b = service.query(KhopQuery::single(1, 4, 3)).unwrap();
        assert_eq!((a.visited, &a.per_level), (b.visited, &b.per_level));
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1, "second identical query must hit");
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_insertions, 1);
        assert_eq!(stats.cache_entries, 1);
        assert!(stats.cache_bytes > 0);
        assert_eq!(stats.batches_dispatched, 1, "the hit must not dispatch a batch");
        assert_eq!(stats.queries_completed, 2);
        // A cache hit costs zero execution time by definition.
        assert_eq!(b.exec_time, Duration::ZERO);
        service.shutdown();
    }

    #[test]
    fn in_batch_duplicates_never_take_two_lanes() {
        // Regression: even with the whole query plane OFF, identical
        // (source, k) traversals inside one batch window must collapse
        // into a single lane — while still folding per scheduler
        // semantics (each duplicate contributes its own counts).
        let engine = ring_engine(40, 2);
        let service = QueryService::start(engine, ServiceConfig::default());
        let r = service.query(KhopQuery::multi(0, vec![5, 5, 5, 7], 3)).unwrap();
        assert_eq!(r.visited, 16); // 4 traversals × 4 vertices each
        assert_eq!(r.per_level, vec![4, 4, 4, 4]); // levels 0..=3, all 4 folded

        let stats = service.stats();
        assert_eq!(stats.coalesced_traversals, 2, "both duplicate 5s must share the first lane");
        assert_eq!(stats.queries_completed, 1);
        service.shutdown();
    }

    #[test]
    fn coalescing_single_flights_a_queued_burst() {
        let engine = ring_engine(60, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_millis(2),
            query_plane: plane(None, true, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        // A burst of identical queries admitted together: exactly one
        // lane executes, everyone shares its result.
        let tickets: Vec<_> =
            (0..16).map(|i| service.submit(KhopQuery::single(i, 30, 4)).unwrap()).collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap().visited, 5);
        }
        let stats = service.stats();
        assert_eq!(stats.queries_completed, 16);
        assert_eq!(stats.coalesced_traversals, 15, "15 of 16 must share the one execution");
        service.shutdown();
    }

    #[test]
    fn epoch_invalidation_blocks_stale_hits() {
        let engine = ring_engine(40, 2);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            query_plane: plane(Some(1), false, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        service.query(KhopQuery::single(0, 2, 3)).unwrap();
        assert_eq!(service.stats().cache_entries, 1);
        assert_eq!(service.graph_epoch(), 0);
        assert_eq!(service.invalidate_cache(), 1);
        assert_eq!(service.graph_epoch(), 1);
        assert_eq!(service.stats().cache_entries, 0, "invalidation must drop old-epoch entries");
        // The repeat query is a miss under the new epoch and re-executes.
        service.query(KhopQuery::single(1, 2, 3)).unwrap();
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.batches_dispatched, 2);
        // ... and is cached again under the new epoch.
        service.query(KhopQuery::single(2, 2, 3)).unwrap();
        assert_eq!(service.stats().cache_hits, 1);
        service.shutdown();
    }

    #[test]
    fn failed_batches_never_populate_the_cache() {
        // A never-healing crash armed for job 0: the poisoned batch
        // must leave the cache untouched; the retried identical query
        // then executes cleanly and commits.
        let engine = ring_engine(40, 2);
        let fault = FaultPlan::new(3).crash(1, 1).arm_jobs(0..1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_plan: Some(fault),
            max_retries: 1,
            retry_backoff: Duration::from_micros(50),
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 1 },
            query_plane: plane(Some(1), false, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let err = service.query(KhopQuery::single(0, 0, 5)).unwrap_err();
        assert!(matches!(err, ServiceError::BatchFailed(_)), "{err:?}");
        let stats = service.stats();
        assert_eq!(stats.cache_insertions, 0, "a failed batch must not commit results");
        assert_eq!(stats.cache_entries, 0);
        // Job 1 is clean: the same query succeeds and only now commits.
        let ok = service.query(KhopQuery::single(1, 0, 5)).unwrap();
        assert_eq!(ok.visited, 6);
        assert_eq!(service.stats().cache_insertions, 1);
        service.shutdown();
    }

    #[test]
    fn coalesced_waiters_share_a_batch_failure() {
        // Identical queries coalesced onto a poisoned execution must
        // all observe its failure (and none may hang).
        let engine = ring_engine(40, 2);
        let fault = FaultPlan::new(3).crash(1, 1).arm_jobs(0..1);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_millis(2),
            fault_plan: Some(fault),
            max_retries: 0,
            recovery: RecoveryConfig { checkpoint_interval: 2, max_recoveries: 0 },
            query_plane: plane(None, true, false),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);
        let tickets: Vec<_> =
            (0..4).map(|i| service.submit(KhopQuery::single(i, 9, 4)).unwrap()).collect();
        for t in tickets {
            let err = t.wait().unwrap_err();
            assert!(matches!(err, ServiceError::BatchFailed(_)), "{err:?}");
        }
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 4);
        // After the failure the key left the in-flight table: a fresh
        // identical query gets a fresh (clean, job 1) execution.
        assert_eq!(service.query(KhopQuery::single(9, 9, 4)).unwrap().visited, 5);
        service.shutdown();
    }

    #[test]
    fn locality_packing_preserves_results() {
        let engine = ring_engine(120, 4);
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(200),
            query_plane: plane(None, false, true),
            ..Default::default()
        };
        let service = Arc::new(QueryService::start(engine, config));
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    for i in 0..20u64 {
                        let src = (t * 40 + i * 7) % 120;
                        let r = service.query(KhopQuery::single(0, src, 3)).unwrap();
                        assert_eq!(r.visited, 4, "ring 3-hop from {src}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(service.stats().queries_completed, 60);
        service.shutdown();
    }

    #[test]
    #[allow(deprecated)]
    fn fault_hook_fails_batch_but_service_survives() {
        let engine = ring_engine(40, 2);
        let blow_once = Arc::new(AtomicBool::new(true));
        let hook = {
            let blow_once = Arc::clone(&blow_once);
            Arc::new(move |machine: usize| {
                if machine == 1 && blow_once.swap(false, Ordering::SeqCst) {
                    panic!("injected machine fault");
                }
            })
        };
        let config = ServiceConfig {
            max_batch_delay: Duration::from_micros(100),
            fault_hook: Some(hook),
            ..Default::default()
        };
        let service = QueryService::start(engine, config);

        let err = service.query(KhopQuery::single(0, 0, 3)).unwrap_err();
        match err {
            ServiceError::BatchFailed(msg) => {
                assert!(msg.contains("injected machine fault"), "{msg}")
            }
            other => panic!("expected BatchFailed, got {other:?}"),
        }
        // The hook disarmed itself: the very next query succeeds on the
        // same (surviving) persistent cluster.
        let ok = service.query(KhopQuery::single(1, 0, 3)).unwrap();
        assert_eq!(ok.visited, 4);
        let stats = service.stats();
        assert_eq!(stats.queries_failed, 1);
        assert_eq!(stats.queries_completed, 1);
        service.shutdown();
    }

    #[test]
    fn backoff_saturates_instead_of_panicking_at_extremes() {
        // Regression: the old arithmetic computed the jitter modulus as
        // `base.as_nanos().max(1) as u64` (silently truncating a
        // >64-bit nanosecond count) and then `exp + jitter`, which
        // panics once the exponential part has saturated. A service
        // configured with a huge retry_backoff and enough faults to
        // reach deep retries would crash its dispatcher instead of
        // retrying.
        let huge = Duration::new(u64::MAX, 0);
        for retry in [0u32, 1, 31, 32, 63, 200] {
            for job in [0u64, 1, 7, u64::MAX] {
                let d = replica::backoff_delay_for_test(huge, retry, job);
                assert!(d >= huge, "backoff must never shrink below the saturated base");
            }
        }
        assert_eq!(replica::backoff_delay_for_test(huge, 32, 7), Duration::MAX);

        // Moderate bases stay within [exp, 2*exp) and never panic.
        let base = Duration::from_millis(3);
        for retry in 0..40 {
            for job in 0..8 {
                let d = replica::backoff_delay_for_test(base, retry, job);
                let exp = base.saturating_mul(1u32 << retry.min(16));
                assert!(d >= exp && d <= exp.saturating_add(base));
            }
        }
    }

    #[test]
    fn stats_snapshot_is_cross_plane_consistent_under_mutation() {
        // Regression: stats() used to take five independent locks, so
        // a commit in flight could be half-visible — updates already
        // drained from the pending buffer but not yet counted as
        // applied, making `updates_applied + pending_updates` dip
        // below the number of accepted updates. Under the stats fence
        // every snapshot must reconcile.
        const TOTAL: u64 = 200;
        let engine = ring_engine(64, 2);
        let service = Arc::new(QueryService::start(engine, ServiceConfig::default()));
        let svc = Arc::clone(&service);
        let mutator = std::thread::spawn(move || {
            for i in 0..TOTAL {
                let mut batch = UpdateBatch::new();
                batch.insert(i % 64, (i * 7 + 3) % 64);
                svc.apply_updates(batch).unwrap();
                if i % 10 == 9 {
                    svc.commit_epoch().unwrap();
                }
            }
            svc.commit_epoch().unwrap();
        });
        let mut last_accounted = 0u64;
        while !mutator.is_finished() {
            let st = service.stats();
            let accounted = st.updates_applied + st.pending_updates;
            assert!(
                accounted <= TOTAL,
                "snapshot invented updates: applied={} pending={}",
                st.updates_applied,
                st.pending_updates
            );
            assert!(
                accounted >= last_accounted,
                "snapshot lost accepted updates: {accounted} < {last_accounted}"
            );
            last_accounted = accounted;
        }
        mutator.join().unwrap();
        let st = service.stats();
        assert_eq!(st.updates_applied, TOTAL);
        assert_eq!(st.pending_updates, 0);
        service.shutdown();
    }
}
