//! Engine configuration.

use cgraph_comm::NetModel;
use cgraph_graph::ConsolidationPolicy;

/// Synchronous (superstep/barrier) or asynchronous (free-running with
/// termination detection) update model — §3.3 supports both.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UpdateMode {
    /// Bulk-synchronous supersteps; visited state synchronised after
    /// each iteration (Fig. 5).
    #[default]
    Sync,
    /// Asynchronous delivery: boundary-vertex updates applied on
    /// arrival, termination by quiescence detection.
    Async,
}

/// Configuration of a [`crate::DistributedEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of simulated machines (= partitions).
    pub num_machines: usize,
    /// Update model.
    pub mode: UpdateMode,
    /// Edge-set tiling policy for shard construction.
    pub edge_set_policy: ConsolidationPolicy,
    /// Interconnect cost model for traffic accounting.
    pub net_model: NetModel,
    /// Build the CSC (in-edge) view in every shard. Required for GAS
    /// programs (PageRank); traversal-only deployments can skip it to
    /// halve shard memory (§3.1).
    pub build_in_edges: bool,
}

impl EngineConfig {
    /// A sensible default for `p` machines: sync mode, default tiling,
    /// 10 GbE-like accounting, in-edges built.
    pub fn new(num_machines: usize) -> Self {
        Self {
            num_machines,
            mode: UpdateMode::Sync,
            edge_set_policy: ConsolidationPolicy::default(),
            net_model: NetModel::TEN_GBE,
            build_in_edges: true,
        }
    }

    /// Switches to async mode.
    pub fn asynchronous(mut self) -> Self {
        self.mode = UpdateMode::Async;
        self
    }

    /// Overrides the edge-set policy.
    pub fn with_edge_set_policy(mut self, policy: ConsolidationPolicy) -> Self {
        self.edge_set_policy = policy;
        self
    }

    /// Skips CSC construction.
    pub fn traversal_only(mut self) -> Self {
        self.build_in_edges = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = EngineConfig::new(4).asynchronous().traversal_only();
        assert_eq!(c.num_machines, 4);
        assert_eq!(c.mode, UpdateMode::Async);
        assert!(!c.build_in_edges);
    }
}
