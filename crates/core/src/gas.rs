//! The Gather-Apply-Scatter interface of Listing 3 (§3.4).
//!
//! "The Update function is an implementation of the Gather-Apply-
//! Scatter (GAS) model by providing a vertex-programming interface."
//! The engine evaluates GAS programs over the CSC in-edge view so the
//! gather phase reads only local edges ("our implementation does not
//! generate additional traffic in the gather phase since all edges of
//! a vertex are local"); the scatter values of local vertices are then
//! broadcast to the other partitions once per iteration — the *local
//! read* synchronisation of §3.3.

use cgraph_graph::VertexId;

/// A vertex program in the GAS model over `f64` vertex values.
pub trait Gas: Sync {
    /// Initial vertex value.
    fn init(&self, v: VertexId, num_vertices: u64) -> f64;

    /// Gather: folds one in-neighbour's scattered value into the
    /// running sum (Listing 3: `sum += v.val`).
    fn gather(&self, sum: f64, neighbor_scatter: f64, edge_weight: f32) -> f64;

    /// Apply: consumes the final gathered sum and produces the new
    /// vertex value (Listing 3: `v.val = 0.15 + 0.85 * sum`).
    fn apply(&self, v: VertexId, sum: f64) -> f64;

    /// Scatter: the value this vertex contributes along each out-edge
    /// (Listing 3: `v.val / v.outdegree`).
    fn scatter(&self, v: VertexId, value: f64, out_degree: u32) -> f64;
}

/// PageRank exactly as Listing 3 writes it.
///
/// ```text
/// def Gather(v, sum)  sum += v.val
/// def Apply(v, sum)   v.val = 0.15 + 0.85 * sum
/// def Scatter(v)      v.val / v.outdegree
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 in the paper).
    pub damping: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        Self { damping: 0.85 }
    }
}

impl Gas for PageRank {
    fn init(&self, _v: VertexId, _n: u64) -> f64 {
        1.0
    }

    fn gather(&self, sum: f64, neighbor_scatter: f64, _w: f32) -> f64 {
        sum + neighbor_scatter
    }

    fn apply(&self, _v: VertexId, sum: f64) -> f64 {
        (1.0 - self.damping) + self.damping * sum
    }

    fn scatter(&self, _v: VertexId, value: f64, out_degree: u32) -> f64 {
        if out_degree == 0 {
            0.0
        } else {
            value / out_degree as f64
        }
    }
}

/// Weighted label/heat diffusion: value spreads along edge weights.
/// A second GAS program exercising the `edge_weight` path (SDN-style
/// distance-weighted influence of the paper's introduction).
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedDiffusion;

impl Gas for WeightedDiffusion {
    fn init(&self, v: VertexId, _n: u64) -> f64 {
        // Unit heat at vertex 0, cold elsewhere.
        if v == 0 {
            1.0
        } else {
            0.0
        }
    }

    fn gather(&self, sum: f64, neighbor_scatter: f64, w: f32) -> f64 {
        sum + neighbor_scatter * w as f64
    }

    fn apply(&self, _v: VertexId, sum: f64) -> f64 {
        sum
    }

    fn scatter(&self, _v: VertexId, value: f64, out_degree: u32) -> f64 {
        if out_degree == 0 {
            0.0
        } else {
            value / out_degree as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_matches_listing3() {
        let pr = PageRank::default();
        assert_eq!(pr.init(3, 100), 1.0);
        assert_eq!(pr.gather(1.0, 0.5, 1.0), 1.5);
        assert!((pr.apply(0, 1.0) - 1.0).abs() < 1e-12);
        assert!((pr.apply(0, 0.0) - 0.15).abs() < 1e-12);
        assert_eq!(pr.scatter(0, 2.0, 4), 0.5);
        assert_eq!(pr.scatter(0, 2.0, 0), 0.0, "dangling vertex scatters nothing");
    }

    #[test]
    fn diffusion_weights_edges() {
        let d = WeightedDiffusion;
        assert_eq!(d.init(0, 10), 1.0);
        assert_eq!(d.init(5, 10), 0.0);
        assert_eq!(d.gather(0.0, 2.0, 0.5), 1.0);
    }
}
