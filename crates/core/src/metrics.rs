//! Response-time distributions — the measurement machinery behind
//! every figure of §4.
//!
//! Figures 7/9 plot per-query response times sorted ascending; Fig. 8
//! shows distribution summaries (box plots); Figs. 11/12 show
//! cumulative histograms with fixed bucket edges (0.2 s … 2.0 s).
//! [`ResponseStats`] computes all three views from one sample vector.

use std::time::Duration;

/// Summary statistics over a set of response-time samples.
#[derive(Clone, Debug)]
pub struct ResponseStats {
    samples_sorted: Vec<Duration>,
}

impl ResponseStats {
    /// Builds stats from raw samples (any order).
    pub fn new(mut samples: Vec<Duration>) -> Self {
        samples.sort_unstable();
        Self { samples_sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_sorted.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_sorted.is_empty()
    }

    /// Samples sorted ascending (the series Figs. 7 and 9 plot).
    pub fn sorted(&self) -> &[Duration] {
        &self.samples_sorted
    }

    /// Minimum sample.
    pub fn min(&self) -> Duration {
        self.samples_sorted.first().copied().unwrap_or_default()
    }

    /// Maximum sample (the "upper bound of query response time").
    pub fn max(&self) -> Duration {
        self.samples_sorted.last().copied().unwrap_or_default()
    }

    /// Arithmetic mean, rounded to the nearest nanosecond.
    ///
    /// Computed as `round(total_nanos / n)` in integer arithmetic —
    /// *not* via `Duration / u32`, which truncates toward zero and
    /// loses up to a full nanosecond per call (visible when averaging
    /// averages, as the service's per-query fold does). Returns
    /// [`Duration::ZERO`] for an empty sample set.
    pub fn mean(&self) -> Duration {
        let n = self.samples_sorted.len() as u128;
        if n == 0 {
            return Duration::ZERO;
        }
        let total: u128 = self.samples_sorted.iter().map(Duration::as_nanos).sum();
        // The mean is bounded by the max sample, so it fits in u64
        // nanoseconds whenever the samples themselves do.
        Duration::from_nanos(((total + n / 2) / n) as u64)
    }

    /// Quantile `q` in `[0, 1]` by the **nearest-rank** rule: the
    /// returned value is always an actual sample, at sorted index
    /// `round((n - 1) · q)` (ties round half away from zero, per
    /// [`f64::round`]). No interpolation is performed, so `q = 0.0`
    /// is exactly [`ResponseStats::min`], `q = 1.0` is exactly
    /// [`ResponseStats::max`], and a single-sample distribution
    /// returns that sample for every `q`. Out-of-range `q` is clamped
    /// into `[0, 1]`; a NaN `q` is treated as `0.0`. Returns
    /// [`Duration::ZERO`] for an empty sample set.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.samples_sorted.is_empty() {
            return Duration::ZERO;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let idx = ((self.samples_sorted.len() as f64 - 1.0) * q).round() as usize;
        self.samples_sorted[idx]
    }

    /// Median (p50).
    pub fn median(&self) -> Duration {
        self.quantile(0.5)
    }

    /// Fraction of samples at or below `threshold` — e.g. "85% queries
    /// return within 0.4 second".
    pub fn fraction_within(&self, threshold: Duration) -> f64 {
        if self.samples_sorted.is_empty() {
            return 0.0;
        }
        let n = self.samples_sorted.partition_point(|&d| d <= threshold);
        n as f64 / self.samples_sorted.len() as f64
    }

    /// Cumulative histogram over the given bucket edges: `result[i]` is
    /// the percentage (0–100) of samples ≤ `edges[i]` (Figs. 11/12's
    /// presentation).
    pub fn cumulative_histogram(&self, edges: &[Duration]) -> Vec<f64> {
        edges.iter().map(|&e| self.fraction_within(e) * 100.0).collect()
    }

    /// Five-number summary (min, q1, median, q3, max) — the box plot of
    /// Fig. 8.
    pub fn five_number(&self) -> [Duration; 5] {
        [self.min(), self.quantile(0.25), self.median(), self.quantile(0.75), self.max()]
    }
}

/// Speedup of `baseline` over `ours` per sorted-rank position, as the
/// paper reports "21x-74x speedup over Titan" (rank-wise on the sorted
/// curves of Fig. 7).
pub fn rankwise_speedup(ours: &ResponseStats, baseline: &ResponseStats) -> Vec<f64> {
    ours.sorted()
        .iter()
        .zip(baseline.sorted())
        .map(|(a, b)| b.as_secs_f64() / a.as_secs_f64().max(1e-12))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: &[u64]) -> ResponseStats {
        ResponseStats::new(v.iter().map(|&x| Duration::from_millis(x)).collect())
    }

    #[test]
    fn order_statistics() {
        let s = ms(&[50, 10, 30, 20, 40]);
        assert_eq!(s.min(), Duration::from_millis(10));
        assert_eq!(s.max(), Duration::from_millis(50));
        assert_eq!(s.median(), Duration::from_millis(30));
        assert_eq!(s.mean(), Duration::from_millis(30));
    }

    #[test]
    fn quantiles() {
        let s = ms(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(s.quantile(0.0), Duration::from_millis(1));
        assert_eq!(s.quantile(1.0), Duration::from_millis(10));
        assert_eq!(s.quantile(0.25), Duration::from_millis(3));
    }

    #[test]
    fn fraction_within_threshold() {
        let s = ms(&[100, 200, 300, 400]);
        assert_eq!(s.fraction_within(Duration::from_millis(250)), 0.5);
        assert_eq!(s.fraction_within(Duration::from_millis(400)), 1.0);
        assert_eq!(s.fraction_within(Duration::from_millis(50)), 0.0);
    }

    #[test]
    fn cumulative_histogram_percentages() {
        let s = ms(&[100, 300, 500, 700]);
        let edges: Vec<Duration> =
            [200u64, 400, 600, 800].iter().map(|&x| Duration::from_millis(x)).collect();
        assert_eq!(s.cumulative_histogram(&edges), vec![25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = ResponseStats::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.quantile(0.5), Duration::ZERO);
        assert_eq!(s.fraction_within(Duration::from_secs(1)), 0.0);
    }

    #[test]
    fn mean_rounds_to_nearest_nanosecond() {
        // 1 ns + 2 ns over 2 samples: the true mean is 1.5 ns, which
        // must round up, not truncate to 1 ns.
        let s = ResponseStats::new(vec![Duration::from_nanos(1), Duration::from_nanos(2)]);
        assert_eq!(s.mean(), Duration::from_nanos(2));
        // 1 + 1 + 2 over 3: mean 4/3 ns rounds down to 1 ns.
        let s = ResponseStats::new(vec![
            Duration::from_nanos(1),
            Duration::from_nanos(1),
            Duration::from_nanos(2),
        ]);
        assert_eq!(s.mean(), Duration::from_nanos(1));
    }

    #[test]
    fn single_sample_distribution() {
        let s = ms(&[7]);
        assert_eq!(s.mean(), Duration::from_millis(7));
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Duration::from_millis(7), "q = {q}");
        }
    }

    #[test]
    fn quantile_extremes_hit_min_and_max() {
        let s = ms(&[5, 1, 9, 3, 7, 2, 8]);
        assert_eq!(s.quantile(0.0), s.min());
        assert_eq!(s.quantile(1.0), s.max());
        // Out-of-range and NaN inputs are clamped, never panic.
        assert_eq!(s.quantile(-3.0), s.min());
        assert_eq!(s.quantile(42.0), s.max());
        assert_eq!(s.quantile(f64::NAN), s.min());
    }

    #[test]
    fn quantile_nearest_rank_is_always_a_sample() {
        let s = ms(&[10, 20, 30, 40]);
        // (n - 1) · q = 3 × 0.5 = 1.5 → rounds half away from zero to
        // index 2: the nearest-rank contract, not an interpolation.
        assert_eq!(s.quantile(0.5), Duration::from_millis(30));
        for q in [0.1, 0.33, 0.66, 0.9] {
            assert!(s.sorted().contains(&s.quantile(q)), "q = {q} must return a sample");
        }
    }

    #[test]
    fn zero_latency_samples_are_first_class() {
        // Cache hits complete with a literal Duration::ZERO exec (and
        // near-zero response) sample; every statistic must treat zeros
        // as ordinary points, not drop or blow up on them.
        let s = ResponseStats::new(vec![Duration::ZERO, Duration::ZERO, Duration::from_millis(10)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Duration::ZERO);
        assert_eq!(s.quantile(0.0), Duration::ZERO);
        assert_eq!(s.median(), Duration::ZERO);
        // round(10 ms / 3) to the nearest nanosecond.
        assert_eq!(s.mean(), Duration::from_nanos(3_333_333));
        // A zero threshold counts the zero samples (<=, not <).
        assert!((s.fraction_within(Duration::ZERO) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.five_number()[0], Duration::ZERO);
        // A rank served in zero time must not produce an infinite or
        // NaN rankwise speedup.
        let sp = rankwise_speedup(&s, &ms(&[1, 2, 3]));
        assert!(sp.iter().all(|v| v.is_finite()), "{sp:?}");
    }

    #[test]
    fn all_zero_distribution_is_safe() {
        // Every query answered from the cache: the entire distribution
        // collapses to zero and all views must stay well-defined.
        let s = ResponseStats::new(vec![Duration::ZERO; 4]);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.fraction_within(Duration::ZERO), 1.0);
        assert_eq!(
            s.cumulative_histogram(&[Duration::ZERO, Duration::from_millis(1)]),
            vec![100.0, 100.0]
        );
        let sp = rankwise_speedup(&s, &s);
        assert!(sp.iter().all(|v| v.is_finite() && *v >= 0.0), "{sp:?}");
    }

    #[test]
    fn speedup_rankwise() {
        let ours = ms(&[10, 20]);
        let base = ms(&[100, 400]);
        let sp = rankwise_speedup(&ours, &base);
        assert_eq!(sp.len(), 2);
        assert!((sp[0] - 10.0).abs() < 1e-9);
        assert!((sp[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn five_number_summary() {
        let s = ms(&[1, 2, 3, 4, 5]);
        let f = s.five_number();
        assert_eq!(f[0], Duration::from_millis(1));
        assert_eq!(f[2], Duration::from_millis(3));
        assert_eq!(f[4], Duration::from_millis(5));
    }
}
